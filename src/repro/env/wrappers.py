"""Environment wrappers: composable transforms around CrowdsensingEnv.

Standard RL-library conveniences adapted to this simulator's interface
(``reset() -> state``, ``step(action) -> (state, reward, done, info)``):

* :class:`NormalizeReward` — divide rewards by a running estimate of the
  return's standard deviation (PPO stabilizer for reward scales that vary
  across scenarios);
* :class:`FrameStack` — concatenate the last ``k`` state matrices along
  the channel axis, giving the CNN short-term temporal context (e.g. PoI
  depletion rates) without recurrence;
* :class:`EpisodeStats` — accumulate per-episode reward/length/metric
  summaries into ``.history`` for quick inspection.

Wrappers forward unknown attributes to the wrapped environment, so agent
code that queries ``valid_moves()`` / ``charge_possible()`` / ``workers``
keeps working through any stack of wrappers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .actions import Action
from .env import CrowdsensingEnv

__all__ = ["EnvWrapper", "NormalizeReward", "FrameStack", "EpisodeStats"]


class EnvWrapper:
    """Base wrapper: forwards everything to the inner environment."""

    def __init__(self, env):
        self.env = env

    def reset(self) -> np.ndarray:
        """Reset the inner environment."""
        return self.env.reset()

    def step(self, action: Action) -> Tuple[np.ndarray, float, bool, Dict]:
        """Step the inner environment."""
        return self.env.step(action)

    def __getattr__(self, name):
        # Only called for attributes not found on the wrapper itself.
        return getattr(self.env, name)

    @property
    def unwrapped(self) -> CrowdsensingEnv:
        """The innermost environment under any wrapper stack."""
        inner = self.env
        while isinstance(inner, EnvWrapper):
            inner = inner.env
        return inner


class _RunningMeanStd:
    """Welford-style running mean/variance over scalars."""

    def __init__(self, epsilon: float = 1e-4):
        self.mean = 0.0
        self.var = 1.0
        self.count = epsilon

    def update(self, value: float) -> None:
        self.count += 1.0
        delta = value - self.mean
        self.mean += delta / self.count
        self.var += (delta * (value - self.mean) - self.var) / self.count

    @property
    def std(self) -> float:
        return float(np.sqrt(max(self.var, 1e-12)))


class NormalizeReward(EnvWrapper):
    """Scale rewards by the running std of the discounted return.

    The estimator follows the common PPO implementation: a per-step
    discounted return accumulator feeds a running variance, and each raw
    reward is divided by that std (mean is *not* subtracted — sign
    matters for sparse rewards).  ``info['raw_reward']`` keeps the
    original value.
    """

    def __init__(self, env, gamma: float = 0.99):
        super().__init__(env)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma
        self._stats = _RunningMeanStd()
        self._running_return = 0.0

    def reset(self) -> np.ndarray:
        self._running_return = 0.0
        return self.env.reset()

    def step(self, action: Action):
        state, reward, done, info = self.env.step(action)
        self._running_return = self._running_return * self.gamma + reward
        self._stats.update(self._running_return)
        info = dict(info)
        info["raw_reward"] = reward
        normalized = reward / self._stats.std
        if done:
            self._running_return = 0.0
        return state, normalized, done, info


class FrameStack(EnvWrapper):
    """Stack the last ``k`` states along the channel axis.

    The output state has ``k * C`` channels, oldest first; the first
    observation of an episode is repeated to fill the stack.
    """

    def __init__(self, env, k: int = 2):
        super().__init__(env)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._frames: List[np.ndarray] = []

    @property
    def state_shape(self) -> Tuple[int, int, int]:
        channels, height, width = self.env.state_shape
        return (self.k * channels, height, width)

    def _stacked(self) -> np.ndarray:
        return np.concatenate(self._frames, axis=0)

    def reset(self) -> np.ndarray:
        state = self.env.reset()
        self._frames = [state] * self.k
        return self._stacked()

    def step(self, action: Action):
        state, reward, done, info = self.env.step(action)
        self._frames = self._frames[1:] + [state]
        return self._stacked(), reward, done, info


class EpisodeStats(EnvWrapper):
    """Record per-episode totals into ``.history``.

    Each completed episode appends a dict with ``reward`` (sum),
    ``length``, and the final κ / ξ / ρ metrics.
    """

    def __init__(self, env):
        super().__init__(env)
        self.history: List[Dict[str, float]] = []
        self._reward = 0.0
        self._length = 0

    def reset(self) -> np.ndarray:
        self._reward = 0.0
        self._length = 0
        return self.env.reset()

    def step(self, action: Action):
        state, reward, done, info = self.env.step(action)
        self._reward += reward
        self._length += 1
        if done:
            metrics = self.unwrapped.metrics()
            self.history.append(
                {
                    "reward": self._reward,
                    "length": self._length,
                    "kappa": metrics.kappa,
                    "xi": metrics.xi,
                    "rho": metrics.rho,
                }
            )
        return state, reward, done, info
