"""The crowdsensing simulator: the OLDC MDP of the paper.

Public surface: :class:`ScenarioConfig` / :func:`generate_scenario` build a
world, :class:`CrowdsensingEnv` runs episodes over it, and
:mod:`repro.env.metrics` evaluates κ / ξ / ρ.
"""

from .actions import MOVE_NAMES, MOVE_OFFSETS, NUM_MOVES, STAY, Action
from .config import ScenarioConfig, paper_config, smoke_config
from .entities import ChargingStations, PoiField, WorkerFleet
from .env import CrowdsensingEnv
from .generator import Scenario, build_obstacle_mask, corner_room_bounds, generate_scenario
from .metrics import Metrics, compute_metrics, jain_fairness
from .rewards import DenseReward, SparseRewardTracker, StepOutcome
from .serialization import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from .space import CrowdsensingSpace, euclidean
from .state import (
    OBSTACLE_CODE,
    STATE_CHANNELS,
    STATION_CODE,
    StateEncoder,
    encode_state,
)
from .wrappers import EnvWrapper, EpisodeStats, FrameStack, NormalizeReward

__all__ = [
    "Action",
    "MOVE_NAMES",
    "MOVE_OFFSETS",
    "NUM_MOVES",
    "STAY",
    "ScenarioConfig",
    "paper_config",
    "smoke_config",
    "ChargingStations",
    "PoiField",
    "WorkerFleet",
    "CrowdsensingEnv",
    "Scenario",
    "generate_scenario",
    "build_obstacle_mask",
    "corner_room_bounds",
    "Metrics",
    "compute_metrics",
    "jain_fairness",
    "DenseReward",
    "SparseRewardTracker",
    "StepOutcome",
    "save_scenario",
    "load_scenario",
    "scenario_to_dict",
    "scenario_from_dict",
    "CrowdsensingSpace",
    "euclidean",
    "encode_state",
    "StateEncoder",
    "OBSTACLE_CODE",
    "STATION_CODE",
    "STATE_CHANNELS",
    "EnvWrapper",
    "NormalizeReward",
    "FrameStack",
    "EpisodeStats",
]
