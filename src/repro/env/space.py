"""Geometry of the crowdsensing space (Definition 1 of the paper).

The space is a continuous 2-D square; the state matrix and the obstacle map
discretize it into ``grid x grid`` cells.  This module holds the coordinate
conversions and the obstacle grid with movement-validity queries used by
both the environment and the lookahead baselines (Greedy, D&C).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

__all__ = ["CrowdsensingSpace", "euclidean"]

#: Memoized ``linspace(0, 1, samples + 1)[1:]`` sample fractions used by
#: :meth:`CrowdsensingSpace.segment_blocked`; tiny, but rebuilt on every
#: move-validation call otherwise.
_SEGMENT_TS: dict = {}


def _segment_ts(samples: int) -> np.ndarray:
    ts = _SEGMENT_TS.get(samples)
    if ts is None:
        ts = np.linspace(0.0, 1.0, samples + 1)[1:]
        _SEGMENT_TS[samples] = ts
    return ts


def euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance ``d(i, j)`` between position arrays (...,2)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.sqrt(((a - b) ** 2).sum(axis=-1))


class CrowdsensingSpace:
    """A square 2-D metric space with an obstacle occupancy grid.

    Parameters
    ----------
    size:
        Side length of the space; valid positions satisfy
        ``0 < x < size`` and ``0 < y < size``.
    grid:
        Number of cells per side in the discretization.
    obstacle_mask:
        Optional boolean (grid, grid) array, indexed ``[row, col]`` =
        ``[y-cell, x-cell]``; True marks a blocked cell.
    """

    def __init__(
        self,
        size: float,
        grid: int,
        obstacle_mask: np.ndarray | None = None,
    ):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if grid < 1:
            raise ValueError(f"grid must be positive, got {grid}")
        self.size = float(size)
        self.grid = int(grid)
        self.cell = self.size / self.grid
        if obstacle_mask is None:
            obstacle_mask = np.zeros((grid, grid), dtype=bool)
        obstacle_mask = np.asarray(obstacle_mask, dtype=bool)
        if obstacle_mask.shape != (grid, grid):
            raise ValueError(
                f"obstacle mask shape {obstacle_mask.shape} does not match grid "
                f"({grid}, {grid})"
            )
        self.obstacles = obstacle_mask

    # ------------------------------------------------------------------
    # Coordinate conversions
    # ------------------------------------------------------------------
    def contains(self, position: np.ndarray) -> np.ndarray:
        """Whether position(s) lie strictly inside the space."""
        position = np.asarray(position, dtype=np.float64)
        x, y = position[..., 0], position[..., 1]
        return (x > 0) & (x < self.size) & (y > 0) & (y < self.size)

    def cell_of(self, position: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(row, col) cell indices for position(s), clipped into the grid.

        Uses ``minimum``/``maximum`` instead of :func:`np.clip`: the clip
        wrapper materializes fresh ``finfo``/``iinfo`` objects on every call,
        which dominates this hot path (called per move candidate per step);
        the two-step form is exact for integers, so results are unchanged.
        """
        position = np.asarray(position, dtype=np.float64)
        hi = self.grid - 1
        col = (position[..., 0] / self.cell).astype(np.int64)
        row = (position[..., 1] / self.cell).astype(np.int64)
        col = np.minimum(np.maximum(col, 0), hi)
        row = np.minimum(np.maximum(row, 0), hi)
        return row, col

    def cell_center(self, row: np.ndarray, col: np.ndarray) -> np.ndarray:
        """Continuous position of the center(s) of the given cell(s)."""
        row = np.asarray(row)
        col = np.asarray(col)
        x = (col + 0.5) * self.cell
        y = (row + 0.5) * self.cell
        return np.stack([x, y], axis=-1)

    def flat_index(self, position: np.ndarray) -> np.ndarray:
        """Single integer cell id (row * grid + col) per position."""
        row, col = self.cell_of(position)
        return row * self.grid + col

    # ------------------------------------------------------------------
    # Obstacle queries
    # ------------------------------------------------------------------
    def is_blocked(self, position: np.ndarray) -> np.ndarray:
        """Whether position(s) fall in an obstacle cell or off the map."""
        position = np.asarray(position, dtype=np.float64)
        inside = self.contains(position)
        row, col = self.cell_of(position)
        blocked = self.obstacles[row, col]
        return ~inside | blocked

    def segment_blocked(
        self, start: np.ndarray, end: np.ndarray, samples: int = 8
    ) -> np.ndarray:
        """Whether the straight segment(s) start->end cross any obstacle.

        The segment is sampled at ``samples`` interior points plus the
        endpoint; with single-cell moves this exactly detects diagonal
        corner cutting.

        All sample points are tested in a single vectorized
        :meth:`is_blocked` query (one coordinate conversion and one
        obstacle gather) instead of one query per sample; each point is
        still ``start + t * (end - start)``, so the per-point arithmetic —
        and therefore the result — is unchanged.
        """
        start = np.asarray(start, dtype=np.float64)
        end = np.asarray(end, dtype=np.float64)
        ts = _segment_ts(samples)
        # (samples, ..., 2) stack of every sample point along every segment.
        delta = end - start
        points = start[None, ...] + ts.reshape((samples,) + (1,) * start.ndim) * delta[None, ...]
        return self.is_blocked(points).any(axis=0)

    def free_cells(self) -> np.ndarray:
        """(K, 2) array of (row, col) indices of all non-obstacle cells."""
        rows, cols = np.nonzero(~self.obstacles)
        return np.stack([rows, cols], axis=-1)

    def random_free_positions(
        self, count: int, rng: np.random.Generator, margin: float = 0.0
    ) -> np.ndarray:
        """Sample ``count`` continuous positions in free (non-obstacle) cells."""
        cells = self.free_cells()
        if len(cells) == 0:
            raise RuntimeError("space has no free cells")
        picks = rng.integers(0, len(cells), size=count)
        rows, cols = cells[picks, 0], cells[picks, 1]
        jitter_scale = max(self.cell - 2 * margin, 0.0)
        jitter = rng.random((count, 2)) * jitter_scale + margin
        x = cols * self.cell + jitter[:, 0]
        y = rows * self.cell + jitter[:, 1]
        return np.stack([x, y], axis=-1)

    def obstacle_fraction(self) -> float:
        """Fraction of grid cells that are blocked."""
        return float(self.obstacles.mean())
