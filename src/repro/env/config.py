"""Scenario configuration for the crowdsensing simulator.

:class:`ScenarioConfig` collects every knob of the environment in one
immutable dataclass.  The defaults follow Section VII-A of the paper:

* initial energy budget ``b0 = 40`` units,
* sensing range ``g = 0.8``, charging range ``0.8``,
* data collection rate ``λ = 0.2``,
* energy cost ``α = 1.0`` per data unit, ``β = 0.1`` per distance unit,
* sparse-reward bounds ``ε1 = 0.05`` and ``ε2 = 0.4``,
* PoI initial values uniform in (0, 1), positions from a Gaussian mixture
  plus a uniform component, and a hard-exploration corner room reachable
  only through a narrow passageway.

The paper leaves the space size, horizon and charging rate unspecified; we
choose a 16x16-unit space discretized into 16x16 grid cells, a horizon of
200 slots and a charge of 20 energy units (half a battery) per charging
slot, and document these in DESIGN.md.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class ScenarioConfig:
    """All parameters of one crowdsensing scenario.

    Attributes
    ----------
    size:
        Side length of the square crowdsensing space ``L`` (both ``L_x`` and
        ``L_y``); positions live in ``(0, size)``.
    grid:
        Number of state-matrix cells per side.  Cell side is ``size/grid``.
    num_workers:
        ``W`` — number of intelligent workers (drones / driverless cars).
    num_pois:
        ``P`` — number of PoIs.
    num_stations:
        Number of charging stations.
    horizon:
        ``T`` — number of time slots per episode.
    energy_budget:
        ``b0`` — initial (and maximum) energy of every worker.
    sensing_range:
        ``g`` — maximum PoI-coverage distance of a worker (the default for
        every worker).
    worker_sensing_ranges:
        Optional per-worker overrides of ``g^w`` (Definition 2 allows each
        worker its own sensing capability, "e.g. shooting range or facing
        direction of a camera").  A tuple of length ``num_workers``; None
        gives every worker ``sensing_range``.
    charging_range:
        Maximum worker-to-station distance at which charging is valid.
    collect_rate:
        ``λ`` — fraction of a PoI's *initial* value collectable per slot.
    alpha:
        Energy consumed per unit of collected data.
    beta:
        Energy consumed per unit of traveled distance.
    charge_per_slot:
        Energy restored by one slot of charging (``σ`` when charging).
    move_step:
        Distance of one cardinal move; diagonal moves travel ``√2`` times
        this.  The worker's per-slot travel maximum.
    epsilon1:
        Sparse-reward bound ``ε1``: a worker earns ``Υ¹ = 1`` each time its
        personal collection ratio crosses another ``ε1`` increment.
    epsilon2:
        Sparse-reward bound ``ε2``: a worker earns ``Υ² = 1`` in a slot
        where its charged energy ``σ_t / b0`` is at least ``ε2``.
    obstacle_penalty:
        ``τ`` — penalty for bumping into an obstacle or the boundary.
    poi_clusters:
        Number of Gaussian clusters for PoI placement (uneven distribution).
    poi_uniform_fraction:
        Fraction of PoIs placed uniformly at random instead of in clusters.
    poi_cluster_std:
        Standard deviation of each Gaussian cluster, in space units.
    corner_room:
        Whether to carve the paper's hard-exploration corner room (a walled
        region at the bottom-right reachable only via a narrow passage) and
        place a share of PoIs inside it.
    corner_room_fraction:
        Fraction of PoIs placed inside the corner room when it is enabled.
    seed:
        Scenario-generation seed; two configs with equal fields produce the
        same map.
    """

    size: float = 16.0
    grid: int = 16
    num_workers: int = 2
    num_pois: int = 300
    num_stations: int = 4
    horizon: int = 200
    energy_budget: float = 40.0
    sensing_range: float = 0.8
    worker_sensing_ranges: Optional[Tuple[float, ...]] = None
    charging_range: float = 0.8
    collect_rate: float = 0.2
    alpha: float = 1.0
    beta: float = 0.1
    charge_per_slot: float = 20.0
    move_step: float = 1.0
    epsilon1: float = 0.05
    epsilon2: float = 0.4
    obstacle_penalty: float = 0.5
    poi_clusters: int = 4
    poi_uniform_fraction: float = 0.25
    poi_cluster_std: float = 1.6
    corner_room: bool = True
    corner_room_fraction: float = 0.12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")
        if self.grid < 4:
            raise ValueError(f"grid must be at least 4, got {self.grid}")
        if self.num_workers < 1:
            raise ValueError(f"need at least one worker, got {self.num_workers}")
        if self.num_pois < 1:
            raise ValueError(f"need at least one PoI, got {self.num_pois}")
        if self.num_stations < 0:
            raise ValueError(f"num_stations cannot be negative, got {self.num_stations}")
        if self.horizon < 1:
            raise ValueError(f"horizon must be at least 1, got {self.horizon}")
        if self.energy_budget <= 0:
            raise ValueError(f"energy_budget must be positive, got {self.energy_budget}")
        if not 0.0 < self.collect_rate <= 1.0:
            raise ValueError(f"collect_rate must be in (0, 1], got {self.collect_rate}")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta cannot be negative")
        if not 0.0 < self.epsilon1 <= 1.0:
            raise ValueError(f"epsilon1 must be in (0, 1], got {self.epsilon1}")
        if not 0.0 < self.epsilon2 <= 1.0:
            raise ValueError(f"epsilon2 must be in (0, 1], got {self.epsilon2}")
        if not 0.0 <= self.poi_uniform_fraction <= 1.0:
            raise ValueError(
                f"poi_uniform_fraction must be in [0, 1], got {self.poi_uniform_fraction}"
            )
        if not 0.0 <= self.corner_room_fraction < 1.0:
            raise ValueError(
                f"corner_room_fraction must be in [0, 1), got {self.corner_room_fraction}"
            )
        if self.worker_sensing_ranges is not None:
            ranges = tuple(float(g) for g in self.worker_sensing_ranges)
            if len(ranges) != self.num_workers:
                raise ValueError(
                    f"worker_sensing_ranges has {len(ranges)} entries for "
                    f"{self.num_workers} workers"
                )
            if any(g <= 0 for g in ranges):
                raise ValueError("every sensing range must be positive")
            object.__setattr__(self, "worker_sensing_ranges", ranges)

    def sensing_ranges(self) -> Tuple[float, ...]:
        """Per-worker ``g^w`` (the global default unless overridden)."""
        if self.worker_sensing_ranges is not None:
            return self.worker_sensing_ranges
        return tuple([self.sensing_range] * self.num_workers)

    @property
    def cell_size(self) -> float:
        """Side length of one grid cell in space units."""
        return self.size / self.grid

    def replace(self, **changes) -> "ScenarioConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)


def paper_config(**overrides) -> ScenarioConfig:
    """The paper's default setup (Section VII-A): W=2, P=300, 4 stations."""
    return ScenarioConfig(**overrides)


def smoke_config(**overrides) -> ScenarioConfig:
    """A small, fast scenario for tests and benchmark shape-checks."""
    base = dict(
        size=8.0,
        grid=8,
        num_workers=2,
        num_pois=40,
        num_stations=2,
        horizon=40,
        energy_budget=12.0,
        poi_clusters=2,
        corner_room=True,
        corner_room_fraction=0.15,
    )
    base.update(overrides)
    return ScenarioConfig(**base)
