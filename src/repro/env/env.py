"""The crowdsensing environment: the OLDC MDP of Sections III and V.

:class:`CrowdsensingEnv` owns a generated :class:`~repro.env.generator.Scenario`
and exposes the familiar ``reset() -> state`` / ``step(action) -> (state,
reward, done, info)`` interface.  One step implements a full time slot:

1. validate each worker's route-planning decision ``v_t^w`` (invalid moves
   bump: the worker stays put and the obstacle penalty ``τ`` applies);
2. workers with a valid charging decision ``u_t^w = 1`` near a station stay
   and recharge instead of moving or collecting (the paper's trade-off:
   "it takes time that workers cannot collect data at the current time
   slots");
3. moving workers travel and collect ``min(λ δ0^p, δ_t^p)`` from every PoI
   within sensing range (Eqn. 1), processed in worker order so simultaneous
   coverage of one PoI is competitive;
4. energy is consumed per Eqn. (3) and clamped at zero — a drained worker
   can only stay until recharged;
5. PoI access times, cumulative counters and the reward trackers update.

The environment emits the configured extrinsic reward ("sparse" for
DRL-CEWS, "dense" for the Edics/DPPO baselines) and always surfaces the raw
:class:`~repro.env.rewards.StepOutcome` in ``info`` so agents can derive
any signal (including intrinsic curiosity rewards) themselves.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .actions import Action, MOVE_OFFSETS, NUM_MOVES, STAY, can_charge, valid_move_mask
from .config import ScenarioConfig
from .entities import ChargingStations, PoiField, WorkerFleet
from .generator import Scenario, generate_scenario
from .metrics import Metrics, compute_metrics
from .rewards import DenseReward, SparseRewardTracker, StepOutcome
from .space import CrowdsensingSpace, euclidean
from .state import STATE_CHANNELS, StateEncoder

__all__ = ["CrowdsensingEnv"]

REWARD_MODES = ("sparse", "dense")


class CrowdsensingEnv:
    """The worker-scheduling MDP over a generated crowdsensing scenario.

    Parameters
    ----------
    config:
        Scenario parameters; the world map is generated deterministically
        from ``config.seed``.
    reward_mode:
        ``"sparse"`` (Eqns. 18-19, DRL-CEWS) or ``"dense"`` (Eqn. 20,
        Edics / DPPO).
    scenario:
        Optionally, a pre-generated scenario to share between environments
        (the employee threads of the chief–employee architecture all train
        on the same map, per the paper's setup).
    """

    def __init__(
        self,
        config: ScenarioConfig,
        reward_mode: str = "sparse",
        scenario: Optional[Scenario] = None,
    ):
        if reward_mode not in REWARD_MODES:
            raise ValueError(
                f"reward_mode must be one of {REWARD_MODES}, got {reward_mode!r}"
            )
        if scenario is not None and scenario.config != config:
            raise ValueError("provided scenario was generated from a different config")
        self.config = config
        self.reward_mode = reward_mode
        self.scenario = scenario if scenario is not None else generate_scenario(config)
        self.space: CrowdsensingSpace = self.scenario.space
        self.stations: ChargingStations = self.scenario.stations

        self._sparse = SparseRewardTracker(
            num_workers=config.num_workers,
            total_initial_data=self.scenario.pois.total_initial,
            energy_budget=config.energy_budget,
            epsilon1=config.epsilon1,
            epsilon2=config.epsilon2,
            obstacle_penalty=config.obstacle_penalty,
        )
        self._dense = DenseReward(
            energy_budget=config.energy_budget,
            obstacle_penalty=config.obstacle_penalty,
        )

        self.workers: WorkerFleet
        self.pois: PoiField
        self._encoder: Optional[StateEncoder] = None
        self.t = 0
        self._needs_reset = True
        self._sensing_ranges = np.asarray(config.sensing_ranges())

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self.config.num_workers

    @property
    def num_moves(self) -> int:
        return NUM_MOVES

    @property
    def state_shape(self) -> Tuple[int, int, int]:
        return (STATE_CHANNELS, self.config.grid, self.config.grid)

    def reset(self) -> np.ndarray:
        """Start a new episode on the same map; returns the initial state."""
        self.pois, self.workers = self.scenario.fresh_world()
        self.t = 0
        self._sparse.reset()
        self._needs_reset = False
        # PoIs and stations are static for the episode: resolve their state
        # cells once here instead of on every step's encode.
        self._encoder = StateEncoder(
            self.space, self.pois, self.stations, self.config.horizon
        )
        return self._state()

    def step(self, action: Action) -> Tuple[np.ndarray, float, bool, Dict]:
        """Advance one time slot; see the module docstring for semantics."""
        if self._needs_reset:
            raise RuntimeError("call reset() before step()")
        if action.move.shape != (self.num_workers,):
            raise ValueError(
                f"action is for {action.move.shape[0]} workers, env has {self.num_workers}"
            )
        config = self.config
        workers = self.workers
        old_positions = workers.positions.copy()

        # --- 1. Move validation -------------------------------------------------
        move_mask = valid_move_mask(
            self.space, workers.positions, workers.energy, config.move_step
        )
        chosen = action.move.copy()
        bumped = ~move_mask[np.arange(self.num_workers), chosen]
        chosen[bumped] = STAY

        # --- 2. Charging decisions ----------------------------------------------
        near_station = can_charge(self.stations, workers.positions, config.charging_range)
        charging = (action.charge == 1) & near_station
        chosen[charging] = STAY  # charging workers wait at the station

        # --- 3. Movement ---------------------------------------------------------
        offsets = MOVE_OFFSETS[chosen] * config.move_step
        new_positions = workers.positions + offsets
        distances = euclidean(workers.positions, new_positions)
        workers.positions = new_positions

        # --- 4. Data collection (sequential, competitive) ------------------------
        # The worker-PoI distance matrix and the per-PoI collection caps are
        # computed once, vectorized over all workers; only the competitive
        # depletion (worker order matters when ranges overlap) stays in the
        # loop.  ``euclidean`` broadcasts to (W, P) with the same per-element
        # arithmetic as the old per-worker calls, so ``in_range`` — and the
        # subset sums below it — are bit-for-bit unchanged.
        collected = np.zeros(self.num_workers)
        sensed_any = np.zeros(len(self.pois), dtype=bool)
        in_range_all = (
            euclidean(self.pois.positions[None, :, :], new_positions[:, None, :])
            <= self._sensing_ranges[:, None]
        )
        collect_caps = config.collect_rate * self.pois.initial_values
        poi_values = self.pois.values
        for w in range(self.num_workers):
            if charging[w] or workers.energy[w] <= 1e-12:
                continue
            in_range = in_range_all[w]
            if not np.any(in_range):
                continue
            take = np.minimum(collect_caps[in_range], poi_values[in_range])
            poi_values[in_range] -= take
            collected[w] = float(take.sum())
            sensed_any |= in_range
        self.pois.access_time[sensed_any] += 1

        # --- 5. Energy accounting (Eqn. 3) ---------------------------------------
        consumed = config.beta * distances + config.alpha * collected
        # A worker cannot consume more than it has; the shortfall is not
        # collected either (clamp keeps b >= 0; overdraw is negligible at
        # one slot's scale and never goes negative).
        overdraw = consumed > workers.energy
        if np.any(overdraw):
            consumed = np.minimum(consumed, workers.energy)
        workers.energy = workers.energy - consumed

        charged = np.zeros(self.num_workers)
        if np.any(charging):
            room = workers.capacity - workers.energy
            charged[charging] = np.minimum(config.charge_per_slot, room[charging])
            workers.energy = workers.energy + charged

        workers.collected += collected
        workers.consumed += consumed
        workers.charged_total += charged

        # --- 6. Rewards and bookkeeping ------------------------------------------
        outcome = StepOutcome(
            collected=collected,
            consumed=consumed,
            charged=charged,
            bumped=bumped,
            collected_cumulative=workers.collected.copy(),
        )
        if self.reward_mode == "sparse":
            reward_per_worker = self._sparse.per_worker(outcome)
        else:
            reward_per_worker = self._dense.per_worker(outcome)
        reward = float(reward_per_worker.mean())

        self.t += 1
        done = self.t >= config.horizon
        if done:
            self._needs_reset = True

        info = {
            "outcome": outcome,
            "reward_per_worker": reward_per_worker,
            "positions": new_positions.copy(),
            "previous_positions": old_positions,
            "moves": chosen.copy(),
            "charging": charging.copy(),
            "bumped": bumped.copy(),
            "t": self.t,
        }
        return self._state(), reward, done, info

    # ------------------------------------------------------------------
    # Queries used by agents
    # ------------------------------------------------------------------
    def valid_moves(self) -> np.ndarray:
        """(W, NUM_MOVES) validity mask at the current positions."""
        return valid_move_mask(
            self.space, self.workers.positions, self.workers.energy, self.config.move_step
        )

    def charge_possible(self) -> np.ndarray:
        """(W,) mask of workers currently within charging range."""
        return can_charge(self.stations, self.workers.positions, self.config.charging_range)

    def sensing_range_of(self, worker: int) -> float:
        """``g^w`` for one worker (Definition 2)."""
        return float(self._sensing_ranges[worker])

    def metrics(self) -> Metrics:
        """Current κ / ξ / ρ snapshot (Definitions 4-6)."""
        return compute_metrics(self.workers, self.pois, self.config.collect_rate)

    def _state(self) -> np.ndarray:
        return self._encoder.encode(self.workers, self.pois)
