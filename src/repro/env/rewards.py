"""Extrinsic reward mechanisms (Sections V-D and VII-B).

Two extrinsic reward definitions appear in the paper:

* the **sparse reward** of DRL-CEWS (Eqns. 18-19): per worker,
  ``Υ¹ + Υ² - τ`` where ``Υ¹ = 1`` whenever the worker's personal data
  collection ratio crosses another ``ε1`` increment, ``Υ² = 1`` whenever
  the energy charged this slot is at least ``ε2`` of the battery, and
  ``τ`` penalizes obstacle bumps; the fleet reward is the worker mean;

* the **dense reward** used to train the Edics and DPPO baselines
  (Eqn. 20): per slot, the mean over workers of
  ``q_t/e_t + σ_t/b0 - τ``.

Both are implemented as small stateful trackers so that an environment can
emit either signal (or both, for the Fig. 5 ablation) from the same
transition data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StepOutcome", "SparseRewardTracker", "DenseReward"]


@dataclass(frozen=True)
class StepOutcome:
    """Per-worker facts about one transition, consumed by reward functions.

    Attributes
    ----------
    collected:
        (W,) data collected this slot, ``q_t^w``.
    consumed:
        (W,) energy consumed this slot, ``e_t^w``.
    charged:
        (W,) energy charged this slot, ``σ_t^w``.
    bumped:
        (W,) bool, True when the worker attempted an invalid move (obstacle
        or boundary) this slot.
    collected_cumulative:
        (W,) cumulative collected data ``Q_t^w`` *after* this slot.
    """

    collected: np.ndarray
    consumed: np.ndarray
    charged: np.ndarray
    bumped: np.ndarray
    collected_cumulative: np.ndarray


class SparseRewardTracker:
    """Stateful sparse extrinsic reward of Eqns. (18)-(19).

    Tracks, per worker, how many ``ε1`` collection milestones have already
    been rewarded, so each increment pays exactly once.
    """

    def __init__(
        self,
        num_workers: int,
        total_initial_data: float,
        energy_budget: float,
        epsilon1: float,
        epsilon2: float,
        obstacle_penalty: float,
    ):
        if total_initial_data <= 0:
            raise ValueError("total_initial_data must be positive")
        self.num_workers = num_workers
        self.total_initial_data = total_initial_data
        self.energy_budget = energy_budget
        self.epsilon1 = epsilon1
        self.epsilon2 = epsilon2
        self.obstacle_penalty = obstacle_penalty
        self._milestones = np.zeros(num_workers, dtype=np.int64)

    def reset(self) -> None:
        """Forget paid milestones (start of a new episode)."""
        self._milestones[:] = 0

    def per_worker(self, outcome: StepOutcome) -> np.ndarray:
        """(W,) sparse rewards ``r_t^{w,ext}`` for this transition."""
        # Υ¹: collection-ratio milestones crossed this slot.
        ratios = outcome.collected_cumulative / self.total_initial_data
        reached = np.floor(ratios / self.epsilon1).astype(np.int64)
        newly = reached - self._milestones
        upsilon1 = (newly > 0).astype(np.float64)
        self._milestones = np.maximum(self._milestones, reached)

        # Υ²: a substantial charge this slot.
        upsilon2 = (
            outcome.charged / self.energy_budget >= self.epsilon2
        ).astype(np.float64)

        tau = self.obstacle_penalty * outcome.bumped.astype(np.float64)
        return upsilon1 + upsilon2 - tau

    def fleet(self, outcome: StepOutcome) -> float:
        """Scalar fleet reward ``r_t^{ext}`` of Eqn. (19) (worker mean)."""
        return float(self.per_worker(outcome).mean())


class DenseReward:
    """Stateless dense reward of Eqn. (20), used by Edics and DPPO."""

    def __init__(self, energy_budget: float, obstacle_penalty: float):
        self.energy_budget = energy_budget
        self.obstacle_penalty = obstacle_penalty

    def per_worker(self, outcome: StepOutcome) -> np.ndarray:
        """(W,) dense rewards ``q/e + σ/b0 - τ``."""
        with np.errstate(divide="ignore", invalid="ignore"):
            data_term = np.where(
                outcome.consumed > 1e-12, outcome.collected / outcome.consumed, 0.0
            )
        charge_term = outcome.charged / self.energy_budget
        tau = self.obstacle_penalty * outcome.bumped.astype(np.float64)
        return data_term + charge_term - tau

    def fleet(self, outcome: StepOutcome) -> float:
        """Scalar fleet reward (worker mean, matching Eqn. 20's 1/W Σ)."""
        return float(self.per_worker(outcome).mean())
