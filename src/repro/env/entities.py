"""Entity state containers: workers, PoIs and charging stations.

The simulator keeps entities in struct-of-arrays form (one numpy array per
field) so that sensing, energy and metric computations vectorize over all
workers / PoIs at once.  These classes are thin, explicit wrappers over
those arrays with the invariants enforced at construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["WorkerFleet", "PoiField", "ChargingStations"]


@dataclass
class WorkerFleet:
    """State of all ``W`` intelligent workers (Definition 2).

    Attributes
    ----------
    positions:
        (W, 2) continuous coordinates.
    energy:
        (W,) current energy budgets ``b_t^w``.
    capacity:
        Scalar battery capacity ``b0`` (all workers share it, per paper).
    collected:
        (W,) cumulative collected data ``Q_t^w``.
    consumed:
        (W,) cumulative energy consumption ``E_t^w``.
    charged_total:
        (W,) cumulative charged energy.
    """

    positions: np.ndarray
    energy: np.ndarray
    capacity: float
    collected: np.ndarray = field(default=None)  # type: ignore[assignment]
    consumed: np.ndarray = field(default=None)  # type: ignore[assignment]
    charged_total: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64).copy()
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ValueError(f"positions must be (W, 2), got {self.positions.shape}")
        count = len(self.positions)
        self.energy = np.asarray(self.energy, dtype=np.float64).copy()
        if self.energy.shape != (count,):
            raise ValueError(f"energy must be ({count},), got {self.energy.shape}")
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if np.any(self.energy < 0) or np.any(self.energy > self.capacity + 1e-9):
            raise ValueError("initial energy must lie in [0, capacity]")
        for name in ("collected", "consumed", "charged_total"):
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(count))
            else:
                arr = np.asarray(getattr(self, name), dtype=np.float64).copy()
                if arr.shape != (count,):
                    raise ValueError(f"{name} must be ({count},), got {arr.shape}")
                setattr(self, name, arr)

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def alive(self) -> np.ndarray:
        """Workers with strictly positive energy (can still move)."""
        return self.energy > 1e-12

    def copy(self) -> "WorkerFleet":
        """Deep copy of all worker state."""
        return WorkerFleet(
            positions=self.positions.copy(),
            energy=self.energy.copy(),
            capacity=self.capacity,
            collected=self.collected.copy(),
            consumed=self.consumed.copy(),
            charged_total=self.charged_total.copy(),
        )


@dataclass
class PoiField:
    """State of all ``P`` PoIs (Definition 3).

    Attributes
    ----------
    positions:
        (P, 2) continuous coordinates.
    initial_values:
        (P,) initial data values ``δ0^p`` in (0, 1].
    values:
        (P,) remaining data values ``δ_t^p``.
    access_time:
        (P,) integer counters ``h_t(p)`` — number of slots in which the PoI
        has been sensed (third state channel, Section V).
    """

    positions: np.ndarray
    initial_values: np.ndarray
    values: np.ndarray = field(default=None)  # type: ignore[assignment]
    access_time: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64).copy()
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ValueError(f"positions must be (P, 2), got {self.positions.shape}")
        count = len(self.positions)
        self.initial_values = np.asarray(self.initial_values, dtype=np.float64).copy()
        if self.initial_values.shape != (count,):
            raise ValueError(
                f"initial_values must be ({count},), got {self.initial_values.shape}"
            )
        if np.any(self.initial_values <= 0):
            raise ValueError("all initial PoI values must be positive")
        if self.values is None:
            self.values = self.initial_values.copy()
        else:
            self.values = np.asarray(self.values, dtype=np.float64).copy()
            if self.values.shape != (count,):
                raise ValueError(f"values must be ({count},), got {self.values.shape}")
        if self.access_time is None:
            self.access_time = np.zeros(count, dtype=np.int64)
        else:
            self.access_time = np.asarray(self.access_time, dtype=np.int64).copy()

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def total_initial(self) -> float:
        """``Σ_p δ0^p`` — denominator of the collection ratio."""
        return float(self.initial_values.sum())

    @property
    def remaining_fraction(self) -> np.ndarray:
        """Per-PoI remaining ratio ``δ_t^p / δ0^p``."""
        return self.values / self.initial_values

    def copy(self) -> "PoiField":
        """Deep copy of all PoI state."""
        return PoiField(
            positions=self.positions.copy(),
            initial_values=self.initial_values.copy(),
            values=self.values.copy(),
            access_time=self.access_time.copy(),
        )


@dataclass
class ChargingStations:
    """Positions of the charging stations."""

    positions: np.ndarray

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64).reshape(-1, 2).copy()

    def __len__(self) -> int:
        return len(self.positions)

    def nearest_distance(self, points: np.ndarray) -> np.ndarray:
        """Distance from each point (..., 2) to its closest station.

        Returns ``+inf`` everywhere when there are no stations.
        """
        points = np.asarray(points, dtype=np.float64)
        if len(self.positions) == 0:
            return np.full(points.shape[:-1], np.inf)
        deltas = points[..., None, :] - self.positions  # (..., S, 2)
        distances = np.sqrt((deltas ** 2).sum(axis=-1))
        return distances.min(axis=-1)

    def copy(self) -> "ChargingStations":
        """Deep copy of the station positions."""
        return ChargingStations(self.positions.copy())
