"""Scenario generation: obstacle maps, PoI placement, stations, workers.

Section VII-A of the paper generates sensor (PoI) positions "through a
mixture of Gaussian distributions and a random distribution", places
collapsed buildings as obstacles, and designs "a hard exploration subarea
at the bottom right corner ... where drones should make efforts to go into
that area through a narrow passageway".  This module reproduces that map
family procedurally and deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .config import ScenarioConfig
from .entities import ChargingStations, PoiField, WorkerFleet
from .space import CrowdsensingSpace

__all__ = ["Scenario", "generate_scenario", "build_obstacle_mask", "corner_room_bounds"]


@dataclass(frozen=True)
class Scenario:
    """A fully generated, immutable initial world."""

    config: ScenarioConfig
    space: CrowdsensingSpace
    pois: PoiField
    stations: ChargingStations
    workers: WorkerFleet

    def fresh_world(self) -> Tuple[PoiField, WorkerFleet]:
        """Copies of the mutable entity state for a new episode."""
        return self.pois.copy(), self.workers.copy()


def corner_room_bounds(config: ScenarioConfig) -> Tuple[int, int, int, int]:
    """Grid bounds (row0, row1, col0, col1) of the corner-room interior.

    The room occupies roughly the bottom-right quarter-of-a-quarter of the
    map: a ``room x room`` cell region whose walls are obstacle cells except
    for a one-cell passage in the middle of the left wall.
    """
    grid = config.grid
    room = max(grid // 4, 3)
    row1, col1 = grid, grid
    row0, col0 = grid - room, grid - room
    return row0, row1, col0, col1


def build_obstacle_mask(config: ScenarioConfig, rng: np.random.Generator) -> np.ndarray:
    """Obstacle occupancy grid: scattered collapsed buildings + corner room."""
    grid = config.grid
    mask = np.zeros((grid, grid), dtype=bool)

    # Scattered rectangular "collapsed buildings": a few 1x1..2x2 blocks in
    # the interior, away from the edges so the map stays connected.
    num_blocks = max(grid // 4, 2)
    for __ in range(num_blocks):
        height = int(rng.integers(1, 3))
        width = int(rng.integers(1, 3))
        row = int(rng.integers(1, max(grid - height - 1, 2)))
        col = int(rng.integers(1, max(grid - width - 1, 2)))
        mask[row : row + height, col : col + width] = True

    if config.corner_room:
        row0, row1, col0, col1 = corner_room_bounds(config)
        # Clear the interior first (a scattered block may overlap).
        mask[row0:row1, col0:col1] = False
        # Walls on the top and left sides (the other two sides are the map
        # boundary), with a one-cell passage in the middle of the left wall.
        mask[row0, col0:col1] = True
        mask[row0:row1, col0] = True
        passage_row = (row0 + row1) // 2
        mask[passage_row, col0] = False

    # The map must remain mostly free; bail out loudly if generation
    # produced an unusable map (can only happen with tiny grids).
    if mask.mean() > 0.5:
        raise RuntimeError(
            f"obstacle generation blocked {mask.mean():.0%} of the map; "
            "increase the grid size"
        )
    return mask


def _cluster_positions(
    count: int,
    config: ScenarioConfig,
    space: CrowdsensingSpace,
    rng: np.random.Generator,
    exclude_region: Tuple[int, int, int, int] | None,
) -> np.ndarray:
    """Positions from a Gaussian mixture + uniform component, on free cells."""
    if count == 0:
        return np.zeros((0, 2))
    num_uniform = int(round(count * config.poi_uniform_fraction))
    num_clustered = count - num_uniform

    centers = space.random_free_positions(max(config.poi_clusters, 1), rng, margin=0.5)
    positions = []
    attempts = 0
    while len(positions) < num_clustered:
        attempts += 1
        if attempts > 200 * count:
            raise RuntimeError("could not place clustered PoIs on free cells")
        center = centers[rng.integers(0, len(centers))]
        candidate = center + rng.normal(0.0, config.poi_cluster_std, size=2)
        if space.is_blocked(candidate):
            continue
        if exclude_region is not None:
            row, col = space.cell_of(candidate)
            row0, row1, col0, col1 = exclude_region
            if row0 <= row < row1 and col0 <= col < col1:
                continue
        positions.append(candidate)

    if num_uniform:
        uniform = space.random_free_positions(num_uniform, rng)
        if exclude_region is not None:
            row0, row1, col0, col1 = exclude_region
            for i in range(len(uniform)):
                row, col = space.cell_of(uniform[i])
                while row0 <= row < row1 and col0 <= col < col1:
                    uniform[i] = space.random_free_positions(1, rng)[0]
                    row, col = space.cell_of(uniform[i])
        positions.extend(uniform)
    return np.asarray(positions)


def _corner_room_positions(
    count: int, config: ScenarioConfig, space: CrowdsensingSpace, rng: np.random.Generator
) -> np.ndarray:
    """Positions strictly inside the corner room's free interior."""
    if count == 0:
        return np.zeros((0, 2))
    row0, row1, col0, col1 = corner_room_bounds(config)
    interior = [
        (row, col)
        for row in range(row0 + 1, row1)
        for col in range(col0 + 1, col1)
        if not space.obstacles[row, col]
    ]
    if not interior:
        raise RuntimeError("corner room has no free interior cells")
    picks = rng.integers(0, len(interior), size=count)
    cells = np.asarray(interior)[picks]
    jitter = rng.random((count, 2)) * space.cell
    x = cells[:, 1] * space.cell + jitter[:, 0]
    y = cells[:, 0] * space.cell + jitter[:, 1]
    return np.stack([x, y], axis=-1)


def generate_scenario(config: ScenarioConfig) -> Scenario:
    """Build the full initial world for ``config`` (deterministic in seed)."""
    rng = np.random.default_rng(config.seed)
    mask = build_obstacle_mask(config, rng)
    space = CrowdsensingSpace(config.size, config.grid, mask)

    exclude = corner_room_bounds(config) if config.corner_room else None
    num_corner = (
        int(round(config.num_pois * config.corner_room_fraction))
        if config.corner_room
        else 0
    )
    outside = _cluster_positions(
        config.num_pois - num_corner, config, space, rng, exclude_region=exclude
    )
    inside = _corner_room_positions(num_corner, config, space, rng)
    poi_positions = np.concatenate([outside, inside], axis=0)

    # δ0^p ~ U(0.05, 1): the paper draws initial values randomly in (0, 1);
    # we bound away from zero so ratios stay well-defined.
    initial_values = rng.uniform(0.05, 1.0, size=config.num_pois)
    pois = PoiField(positions=poi_positions, initial_values=initial_values)

    # Charging stations on free cells outside the corner room.
    station_positions = space.random_free_positions(config.num_stations, rng, margin=0.3)
    if exclude is not None and config.num_stations > 0:
        row0, row1, col0, col1 = exclude
        for i in range(config.num_stations):
            row, col = space.cell_of(station_positions[i])
            while row0 <= row < row1 and col0 <= col < col1:
                station_positions[i] = space.random_free_positions(1, rng, margin=0.3)[0]
                row, col = space.cell_of(station_positions[i])
    stations = ChargingStations(station_positions)

    # Workers start at random free positions (paper: randomly initialized),
    # snapped to cell centers so the discrete move set tiles the space.
    worker_cells = space.random_free_positions(config.num_workers, rng)
    rows, cols = space.cell_of(worker_cells)
    worker_positions = space.cell_center(rows, cols)
    workers = WorkerFleet(
        positions=worker_positions,
        energy=np.full(config.num_workers, config.energy_budget),
        capacity=config.energy_budget,
    )
    return Scenario(config=config, space=space, pois=pois, stations=stations, workers=workers)
