"""Scenario serialization: save and load crowdsensing worlds as JSON.

Generated scenarios are deterministic in their config seed, but users who
hand-edit maps (move a station, carve a wall, reweight PoIs) need to
persist the result.  The JSON layout is deliberately human-editable:

.. code-block:: json

    {
      "config": { ...ScenarioConfig fields... },
      "obstacles": [[0,0,1,...], ...],
      "pois": {"positions": [[x,y],...], "initial_values": [...],
               "values": [...], "access_time": [...]},
      "stations": [[x,y], ...],
      "workers": {"positions": [[x,y],...], "energy": [...]}
    }
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Union

import numpy as np

from .config import ScenarioConfig
from .entities import ChargingStations, PoiField, WorkerFleet
from .generator import Scenario
from .space import CrowdsensingSpace

__all__ = ["scenario_to_dict", "scenario_from_dict", "save_scenario", "load_scenario"]

PathLike = Union[str, os.PathLike]


def scenario_to_dict(scenario: Scenario) -> Dict:
    """Serialize a scenario to plain JSON-compatible structures."""
    config_dict = dataclasses.asdict(scenario.config)
    if config_dict.get("worker_sensing_ranges") is not None:
        config_dict["worker_sensing_ranges"] = list(
            config_dict["worker_sensing_ranges"]
        )
    return {
        "config": config_dict,
        "obstacles": scenario.space.obstacles.astype(int).tolist(),
        "pois": {
            "positions": scenario.pois.positions.tolist(),
            "initial_values": scenario.pois.initial_values.tolist(),
            "values": scenario.pois.values.tolist(),
            "access_time": scenario.pois.access_time.tolist(),
        },
        "stations": scenario.stations.positions.tolist(),
        "workers": {
            "positions": scenario.workers.positions.tolist(),
            "energy": scenario.workers.energy.tolist(),
        },
    }


def scenario_from_dict(payload: Dict) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output.

    Validates cross-references (entity counts against the config) so a
    hand-edited file fails loudly rather than producing a skewed world.
    """
    config_dict = dict(payload["config"])
    if config_dict.get("worker_sensing_ranges") is not None:
        config_dict["worker_sensing_ranges"] = tuple(
            config_dict["worker_sensing_ranges"]
        )
    config = ScenarioConfig(**config_dict)

    obstacles = np.asarray(payload["obstacles"], dtype=bool)
    space = CrowdsensingSpace(config.size, config.grid, obstacles)

    pois_data = payload["pois"]
    pois = PoiField(
        positions=np.asarray(pois_data["positions"], dtype=np.float64),
        initial_values=np.asarray(pois_data["initial_values"], dtype=np.float64),
        values=np.asarray(pois_data.get("values", pois_data["initial_values"]), dtype=np.float64),
        access_time=np.asarray(
            pois_data.get("access_time", [0] * len(pois_data["positions"])),
            dtype=np.int64,
        ),
    )
    if len(pois) != config.num_pois:
        raise ValueError(
            f"file has {len(pois)} PoIs but config.num_pois is {config.num_pois}"
        )

    stations = ChargingStations(np.asarray(payload["stations"], dtype=np.float64))
    if len(stations) != config.num_stations:
        raise ValueError(
            f"file has {len(stations)} stations but config.num_stations is "
            f"{config.num_stations}"
        )

    workers_data = payload["workers"]
    workers = WorkerFleet(
        positions=np.asarray(workers_data["positions"], dtype=np.float64),
        energy=np.asarray(workers_data["energy"], dtype=np.float64),
        capacity=config.energy_budget,
    )
    if len(workers) != config.num_workers:
        raise ValueError(
            f"file has {len(workers)} workers but config.num_workers is "
            f"{config.num_workers}"
        )
    if np.any(space.is_blocked(workers.positions)):
        raise ValueError("a worker starts inside an obstacle or off the map")

    return Scenario(config=config, space=space, pois=pois, stations=stations, workers=workers)


def save_scenario(scenario: Scenario, path: PathLike) -> None:
    """Write a scenario to ``path`` as JSON."""
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(scenario_to_dict(scenario), handle, indent=1)


def load_scenario(path: PathLike) -> Scenario:
    """Read a scenario previously written by :func:`save_scenario`."""
    with open(path) as handle:
        return scenario_from_dict(json.load(handle))
