"""Evaluation metrics of the OLDC problem (Section III-B).

Three metrics summarize a policy's performance up to slot ``t``:

* **average data collection ratio** ``κ_t`` (Definition 4, Eqn. 4): the
  ratio of total collected data to total initial data.  Note the paper's
  ``1/W Σ_w Q_t^w / Σ_p δ0^p`` divides the *fleet total* by W; we report
  the fleet ratio ``Σ_w Q_t^w / Σ_p δ0^p`` (the form all of the paper's
  plots use — κ approaches 1 when all data is collected regardless of W)
  and keep the per-worker mean available as ``kappa_per_worker``.

* **average remaining data ratio** ``ξ_t`` (Definition 5, Eqn. 5): the mean
  over PoIs of the remaining fraction ``δ_t^p / δ0^p`` — the printed
  equation's ``δ0/δ0`` is an obvious typo for this, since the text calls it
  "the average remaining data ratio for all PoIs".  Low ξ means fair
  geographic coverage.

* **energy efficiency** ``ρ_t`` (Definition 6, Eqn. 6): Jain's fairness
  index over per-PoI effective collection counts, multiplied by the mean
  data-per-energy over workers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .entities import PoiField, WorkerFleet

__all__ = ["Metrics", "jain_fairness", "compute_metrics"]


def jain_fairness(values: np.ndarray) -> float:
    """Jain's fairness index ``(Σx)² / (n Σx²)`` in [1/n, 1].

    Returns 0.0 for an all-zero vector (nothing collected yet — maximally
    unfair in the metric's spirit and keeps ρ well-defined).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    total = values.sum()
    square_sum = float((values ** 2).sum())
    if square_sum <= 0.0:
        return 0.0
    return float(total * total / (values.size * square_sum))


@dataclass(frozen=True)
class Metrics:
    """A snapshot of the three OLDC metrics plus supporting detail."""

    kappa: float
    xi: float
    rho: float
    kappa_per_worker: float
    fairness: float
    data_per_energy: float
    total_collected: float
    total_consumed: float

    def as_dict(self) -> dict:
        """All fields as a plain dict (for logging / JSON)."""
        return {
            "kappa": self.kappa,
            "xi": self.xi,
            "rho": self.rho,
            "kappa_per_worker": self.kappa_per_worker,
            "fairness": self.fairness,
            "data_per_energy": self.data_per_energy,
            "total_collected": self.total_collected,
            "total_consumed": self.total_consumed,
        }


def compute_metrics(workers: WorkerFleet, pois: PoiField, collect_rate: float) -> Metrics:
    """Evaluate κ, ξ and ρ for the current world state.

    Parameters
    ----------
    workers:
        Fleet with cumulative ``collected`` (Q) and ``consumed`` (E).
    pois:
        PoI field with remaining and initial values.
    collect_rate:
        ``λ``, needed by the per-PoI collection counts inside ρ.
    """
    total_initial = pois.total_initial
    total_collected = float(workers.collected.sum())
    kappa = total_collected / total_initial if total_initial > 0 else 0.0
    kappa_per_worker = kappa / max(len(workers), 1)

    xi = float(pois.remaining_fraction.mean())

    # Per-PoI effective collection counts (δ0 - δ_t) / (λ δ0).
    counts = (pois.initial_values - pois.values) / (collect_rate * pois.initial_values)
    fairness = jain_fairness(counts)

    # Mean data-per-energy over workers; a worker that has consumed nothing
    # contributes 0 (it has also collected nothing).
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(workers.consumed > 1e-12, workers.collected / workers.consumed, 0.0)
    data_per_energy = float(ratios.mean())
    rho = fairness * data_per_energy

    return Metrics(
        kappa=kappa,
        xi=xi,
        rho=rho,
        kappa_per_worker=kappa_per_worker,
        fairness=fairness,
        data_per_energy=data_per_energy,
        total_collected=total_collected,
        total_consumed=float(workers.consumed.sum()),
    )
