"""Action space of the worker-scheduling MDP (Section V).

The whole action is ``a_t = [u_t, v_t]``: per-worker binary charging
decisions ``u_t`` and per-worker route-planning decisions ``v_t``.  Route
planning is discretized into nine moves — stay plus the eight compass
directions — whose Euclidean length never exceeds the worker's per-slot
travel maximum (``√2 * move_step`` for diagonals).

Validity rules (paper, Section V "Action"):

(a) a move may not enter an obstacle or leave the crowdsensing space,
(b) the worker's energy budget must not be exhausted,
(c) the move length is bounded by the fixed per-slot maximum (guaranteed
    by construction of the move set).

Charging additionally requires the worker to be within ``charging_range``
of some station.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .entities import ChargingStations, WorkerFleet
from .space import CrowdsensingSpace, _segment_ts

__all__ = [
    "MOVE_OFFSETS",
    "MOVE_NAMES",
    "NUM_MOVES",
    "STAY",
    "Action",
    "move_targets",
    "valid_move_mask",
    "can_charge",
]

#: Unit offsets of the nine route-planning moves, order: stay, N, NE, E,
#: SE, S, SW, W, NW.  "North" is +y.
MOVE_OFFSETS = np.array(
    [
        [0.0, 0.0],
        [0.0, 1.0],
        [1.0, 1.0],
        [1.0, 0.0],
        [1.0, -1.0],
        [0.0, -1.0],
        [-1.0, -1.0],
        [-1.0, 0.0],
        [-1.0, 1.0],
    ]
)

MOVE_NAMES = ("stay", "N", "NE", "E", "SE", "S", "SW", "W", "NW")
NUM_MOVES = len(MOVE_OFFSETS)
STAY = 0

#: Indices of the diagonal moves (both offset components non-zero) and the
#: two orthogonal "corner" offsets checked by the no-corner-cutting rule:
#: ``_SIDE_A[k] = [dx, 0]`` and ``_SIDE_B[k] = [0, dy]`` for diagonal k.
_DIAGONAL_MOVES = np.array(
    [m for m in range(NUM_MOVES) if MOVE_OFFSETS[m, 0] != 0.0 and MOVE_OFFSETS[m, 1] != 0.0]
)
_SIDE_A_OFFSETS = np.stack(
    [np.array([MOVE_OFFSETS[m, 0], 0.0]) for m in _DIAGONAL_MOVES]
)
_SIDE_B_OFFSETS = np.stack(
    [np.array([0.0, MOVE_OFFSETS[m, 1]]) for m in _DIAGONAL_MOVES]
)
_SEGMENT_SAMPLES = 4


@dataclass(frozen=True)
class Action:
    """One joint action for all workers.

    Attributes
    ----------
    charge:
        (W,) int array of ``u_t^w`` in {0, 1}.
    move:
        (W,) int array of ``v_t^w`` in [0, NUM_MOVES).
    """

    charge: np.ndarray
    move: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "charge", np.asarray(self.charge, dtype=np.int64))
        object.__setattr__(self, "move", np.asarray(self.move, dtype=np.int64))
        if self.charge.shape != self.move.shape:
            raise ValueError(
                f"charge shape {self.charge.shape} != move shape {self.move.shape}"
            )
        if np.any((self.charge < 0) | (self.charge > 1)):
            raise ValueError("charge decisions must be 0 or 1")
        if np.any((self.move < 0) | (self.move >= NUM_MOVES)):
            raise ValueError(f"move decisions must be in [0, {NUM_MOVES})")

    @staticmethod
    def stay(num_workers: int) -> "Action":
        """The all-stay, no-charge action."""
        zeros = np.zeros(num_workers, dtype=np.int64)
        return Action(charge=zeros, move=zeros.copy())


def move_targets(positions: np.ndarray, move_step: float) -> np.ndarray:
    """Candidate next positions, shape (W, NUM_MOVES, 2)."""
    positions = np.asarray(positions, dtype=np.float64)
    return positions[:, None, :] + MOVE_OFFSETS[None, :, :] * move_step


def valid_move_mask(
    space: CrowdsensingSpace,
    positions: np.ndarray,
    energy: np.ndarray,
    move_step: float,
) -> np.ndarray:
    """(W, NUM_MOVES) boolean mask of moves valid under the paper's rules.

    Workers with exhausted energy can only stay (rule b); other moves are
    masked when the target cell is blocked / outside or the straight path
    crosses an obstacle (rule a).  "Stay" is always valid.

    Every obstacle query — the nine move targets, the four interior path
    samples per move, and the two corner-cut cells per diagonal move — is
    gathered into **one** batched :meth:`CrowdsensingSpace.is_blocked`
    call (a single coordinate conversion and obstacle-grid gather for
    ``(9 + 4·9 + 2·4)·W`` points) instead of the previous fourteen
    round-trips.  Each point's coordinates are computed with the same
    arithmetic as before, so the mask is bit-for-bit unchanged.
    """
    positions = np.asarray(positions, dtype=np.float64)
    num_workers = len(positions)
    targets = move_targets(positions, move_step)  # (W, M, 2)

    # Interior samples of each start->target segment at the same fractions
    # segment_blocked(samples=4) used: t in {0.25, 0.5, 0.75, 1.0}.
    ts = _segment_ts(_SEGMENT_SAMPLES)
    delta = targets - positions[:, None, :]
    path_points = positions[None, :, None, :] + ts[:, None, None, None] * delta[None]

    # Corner-cut cells flanking each diagonal move.
    side_a = positions[:, None, :] + _SIDE_A_OFFSETS[None] * move_step  # (W, D, 2)
    side_b = positions[:, None, :] + _SIDE_B_OFFSETS[None] * move_step

    num_targets = num_workers * NUM_MOVES
    num_sides = num_workers * len(_DIAGONAL_MOVES)
    points = np.concatenate(
        [
            targets.reshape(-1, 2),
            path_points.reshape(-1, 2),
            side_a.reshape(-1, 2),
            side_b.reshape(-1, 2),
        ]
    )
    blocked = space.is_blocked(points)

    target_blocked = blocked[:num_targets].reshape(num_workers, NUM_MOVES)
    path_blocked = (
        blocked[num_targets : num_targets * (1 + _SEGMENT_SAMPLES)]
        .reshape(_SEGMENT_SAMPLES, num_workers, NUM_MOVES)
        .any(axis=0)
    )
    mask = ~(target_blocked | path_blocked)

    # No corner cutting: a diagonal move also requires both orthogonal
    # intermediate cells to be free (a zero-width path grazing the corner
    # between two obstacles is not traversable by a physical worker).
    side_start = num_targets * (1 + _SEGMENT_SAMPLES)
    a_blocked = blocked[side_start : side_start + num_sides].reshape(num_workers, -1)
    b_blocked = blocked[side_start + num_sides :].reshape(num_workers, -1)
    mask[:, _DIAGONAL_MOVES] &= ~a_blocked & ~b_blocked

    mask[:, STAY] = True

    exhausted = np.asarray(energy) <= 1e-12
    if np.any(exhausted):
        mask[exhausted] = False
        mask[exhausted, STAY] = True
    return mask


def can_charge(
    stations: ChargingStations,
    positions: np.ndarray,
    charging_range: float,
) -> np.ndarray:
    """(W,) boolean mask: which workers may wait to be charged here."""
    return stations.nearest_distance(positions) <= charging_range
