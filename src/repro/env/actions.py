"""Action space of the worker-scheduling MDP (Section V).

The whole action is ``a_t = [u_t, v_t]``: per-worker binary charging
decisions ``u_t`` and per-worker route-planning decisions ``v_t``.  Route
planning is discretized into nine moves — stay plus the eight compass
directions — whose Euclidean length never exceeds the worker's per-slot
travel maximum (``√2 * move_step`` for diagonals).

Validity rules (paper, Section V "Action"):

(a) a move may not enter an obstacle or leave the crowdsensing space,
(b) the worker's energy budget must not be exhausted,
(c) the move length is bounded by the fixed per-slot maximum (guaranteed
    by construction of the move set).

Charging additionally requires the worker to be within ``charging_range``
of some station.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .entities import ChargingStations, WorkerFleet
from .space import CrowdsensingSpace

__all__ = [
    "MOVE_OFFSETS",
    "MOVE_NAMES",
    "NUM_MOVES",
    "STAY",
    "Action",
    "move_targets",
    "valid_move_mask",
    "can_charge",
]

#: Unit offsets of the nine route-planning moves, order: stay, N, NE, E,
#: SE, S, SW, W, NW.  "North" is +y.
MOVE_OFFSETS = np.array(
    [
        [0.0, 0.0],
        [0.0, 1.0],
        [1.0, 1.0],
        [1.0, 0.0],
        [1.0, -1.0],
        [0.0, -1.0],
        [-1.0, -1.0],
        [-1.0, 0.0],
        [-1.0, 1.0],
    ]
)

MOVE_NAMES = ("stay", "N", "NE", "E", "SE", "S", "SW", "W", "NW")
NUM_MOVES = len(MOVE_OFFSETS)
STAY = 0


@dataclass(frozen=True)
class Action:
    """One joint action for all workers.

    Attributes
    ----------
    charge:
        (W,) int array of ``u_t^w`` in {0, 1}.
    move:
        (W,) int array of ``v_t^w`` in [0, NUM_MOVES).
    """

    charge: np.ndarray
    move: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "charge", np.asarray(self.charge, dtype=np.int64))
        object.__setattr__(self, "move", np.asarray(self.move, dtype=np.int64))
        if self.charge.shape != self.move.shape:
            raise ValueError(
                f"charge shape {self.charge.shape} != move shape {self.move.shape}"
            )
        if np.any((self.charge < 0) | (self.charge > 1)):
            raise ValueError("charge decisions must be 0 or 1")
        if np.any((self.move < 0) | (self.move >= NUM_MOVES)):
            raise ValueError(f"move decisions must be in [0, {NUM_MOVES})")

    @staticmethod
    def stay(num_workers: int) -> "Action":
        """The all-stay, no-charge action."""
        zeros = np.zeros(num_workers, dtype=np.int64)
        return Action(charge=zeros, move=zeros.copy())


def move_targets(positions: np.ndarray, move_step: float) -> np.ndarray:
    """Candidate next positions, shape (W, NUM_MOVES, 2)."""
    positions = np.asarray(positions, dtype=np.float64)
    return positions[:, None, :] + MOVE_OFFSETS[None, :, :] * move_step


def valid_move_mask(
    space: CrowdsensingSpace,
    positions: np.ndarray,
    energy: np.ndarray,
    move_step: float,
) -> np.ndarray:
    """(W, NUM_MOVES) boolean mask of moves valid under the paper's rules.

    Workers with exhausted energy can only stay (rule b); other moves are
    masked when the target cell is blocked / outside or the straight path
    crosses an obstacle (rule a).  "Stay" is always valid.
    """
    positions = np.asarray(positions, dtype=np.float64)
    num_workers = len(positions)
    targets = move_targets(positions, move_step)

    flat_targets = targets.reshape(-1, 2)
    flat_starts = np.repeat(positions, NUM_MOVES, axis=0)
    blocked = space.is_blocked(flat_targets) | space.segment_blocked(
        flat_starts, flat_targets, samples=4
    )
    mask = ~blocked.reshape(num_workers, NUM_MOVES)

    # No corner cutting: a diagonal move also requires both orthogonal
    # intermediate cells to be free (a zero-width path grazing the corner
    # between two obstacles is not traversable by a physical worker).
    for move in range(NUM_MOVES):
        dx, dy = MOVE_OFFSETS[move]
        if dx == 0.0 or dy == 0.0:
            continue
        side_a = positions + np.array([dx, 0.0]) * move_step
        side_b = positions + np.array([0.0, dy]) * move_step
        mask[:, move] &= ~space.is_blocked(side_a) & ~space.is_blocked(side_b)

    mask[:, STAY] = True

    exhausted = np.asarray(energy) <= 1e-12
    if np.any(exhausted):
        mask[exhausted] = False
        mask[exhausted, STAY] = True
    return mask


def can_charge(
    stations: ChargingStations,
    positions: np.ndarray,
    charging_range: float,
) -> np.ndarray:
    """(W,) boolean mask: which workers may wait to be charged here."""
    return stations.nearest_distance(positions) <= charging_range
