"""The spatial curiosity model of Section V-C — the paper's contribution.

A forward model ``f`` predicts the (frozen) feature of a worker's *next*
position from the feature of its current position and its route-planning
decision:

.. math:: \\hat{φ}(l_{t+1}) = f(φ(l_t), v_t)                     (Eqn. 15)

The prediction error is both the training loss (Eqn. 16) and, scaled by
``η``, the intrinsic reward (Eqn. 17).  Novel positions — cells the fleet
has seldom visited — are poorly predicted and therefore attractive.

Two structures are compared in Section VII-D:

* **shared** — one forward model consumes every worker's transitions, so
  "different workers share their historical information by using common
  parameters" and the parameter count is independent of ``W``;
* **independent** — ``W`` separate forward models, one per worker.

The feature extractor (direct or embedding) is always static; only the
forward model trains.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..obs.trace import span as trace_span
from ..env.actions import NUM_MOVES
from ..env.space import CrowdsensingSpace
from .base import CuriosityModule, TransitionBatch
from .features import PositionFeature, make_feature

__all__ = ["ForwardModel", "SpatialCuriosity"]


class ForwardModel(nn.Module):
    """MLP ``f(φ(l_t), one_hot(v_t)) -> φ̂(l_{t+1})``."""

    def __init__(
        self,
        feature_dim: int,
        num_moves: int = NUM_MOVES,
        hidden: int = 64,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.feature_dim = feature_dim
        self.num_moves = num_moves
        self.fc1 = nn.Linear(feature_dim + num_moves, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, hidden, rng=rng)
        self.out = nn.Linear(hidden, feature_dim, rng=rng)

    def forward(self, features: nn.Tensor, moves: np.ndarray) -> nn.Tensor:
        """Predict the next position's feature from (feature, move)."""
        moves = np.asarray(moves, dtype=np.int64).reshape(-1)
        one_hot = np.zeros((len(moves), self.num_moves))
        one_hot[np.arange(len(moves)), moves] = 1.0
        x = nn.concat([features, nn.Tensor(one_hot)], axis=1)
        x = self.fc1(x).relu()
        x = self.fc2(x).relu()
        return self.out(x)


class SpatialCuriosity(CuriosityModule):
    """Spatial curiosity with configurable feature and structure.

    Parameters
    ----------
    space:
        The crowdsensing space (provides size / grid for the features).
    feature:
        ``"embedding"`` (paper's choice) or ``"direct"``.
    structure:
        ``"shared"`` (paper's choice) or ``"independent"``.
    num_workers:
        Required for the independent structure (one model per worker).
    eta:
        Intrinsic-reward scale ``η`` (paper: 0.3).
    """

    def __init__(
        self,
        space: CrowdsensingSpace,
        feature: str = "embedding",
        structure: str = "shared",
        num_workers: int = 1,
        eta: float = 0.3,
        hidden: int = 64,
        embedding_dim: int = 8,
        seed: int = 0,
        feature_seed: Optional[int] = None,
    ):
        if structure not in ("shared", "independent"):
            raise ValueError(
                f"structure must be 'shared' or 'independent', got {structure!r}"
            )
        if eta < 0:
            raise ValueError(f"eta cannot be negative, got {eta}")
        self.eta = eta
        self.structure = structure
        self.feature_kind = feature
        self.num_workers = num_workers
        # The frozen feature table is the *target* of the forward model.
        # Every agent trained against one global model must use the same
        # table, so its seed is separate from the trainable-weight seed
        # (chief-employee sync copies only trainable parameters).
        feature_seed = seed if feature_seed is None else feature_seed
        self._feature: PositionFeature = make_feature(
            feature, space, seed=feature_seed, dim=embedding_dim
        )
        rng = np.random.default_rng(seed + 1)
        if structure == "shared":
            self._models = [ForwardModel(self._feature.dim, hidden=hidden, rng=rng)]
        else:
            self._models = [
                ForwardModel(self._feature.dim, hidden=hidden, rng=rng)
                for __ in range(num_workers)
            ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _model_for(self, worker: int) -> ForwardModel:
        if self.structure == "shared":
            return self._models[0]
        if worker >= len(self._models):
            raise IndexError(
                f"worker {worker} out of range for independent structure with "
                f"{len(self._models)} models"
            )
        return self._models[worker]

    def _per_worker_errors(self, batch: TransitionBatch, detach: bool):
        """Forward-model squared errors, one tensor (B,) per worker column."""
        if self.structure == "independent" and batch.num_workers != len(self._models):
            raise ValueError(
                f"batch has {batch.num_workers} workers but the independent "
                f"structure was built for {len(self._models)}"
            )
        errors = []
        # Detached callers (intrinsic rewards during rollouts) never
        # backpropagate, so skip taping the forward pass entirely.
        grad_ctx = contextlib.nullcontext() if not detach else nn.no_grad()
        with trace_span(
            "curiosity.forward_model",
            workers=batch.num_workers,
            detach=detach,
        ), grad_ctx:
            for w in range(batch.num_workers):
                model = self._model_for(w)
                current = self._feature(batch.positions[:, w])
                target = self._feature(batch.next_positions[:, w])
                predicted = model(nn.Tensor(current), batch.moves[:, w])
                diff = predicted - nn.Tensor(target)
                per_sample = (diff * diff).sum(axis=1)
                errors.append(per_sample.data.copy() if detach else per_sample)
        return errors

    # ------------------------------------------------------------------
    # CuriosityModule interface
    # ------------------------------------------------------------------
    def intrinsic_reward(self, batch: TransitionBatch) -> np.ndarray:
        """(B,) rewards ``η · mean_w Loss^f`` per timestep, detached."""
        errors = self._per_worker_errors(batch, detach=True)
        return self.eta * np.mean(np.stack(errors, axis=1), axis=1)

    def per_worker_curiosity(self, batch: TransitionBatch) -> np.ndarray:
        """(B, W) per-worker ``η · Loss^f`` values (Fig. 9 heatmap data)."""
        errors = self._per_worker_errors(batch, detach=True)
        return self.eta * np.stack(errors, axis=1)

    def raw_errors(self, batch: TransitionBatch) -> np.ndarray:
        """(B, W) raw forward losses, independent of ``η``.

        Used by the Fig. 9 visualization, which probes curiosity values
        even for agents trained with ``η = 0`` (the DPPO comparison arm).
        """
        errors = self._per_worker_errors(batch, detach=True)
        return np.stack(errors, axis=1)

    def loss(self, batch: TransitionBatch) -> nn.Tensor:
        """Scalar mean forward loss over the batch and all workers (Eqn. 16)."""
        errors = self._per_worker_errors(batch, detach=False)
        total = errors[0].mean()
        for err in errors[1:]:
            total = total + err.mean()
        return total * (1.0 / len(errors))

    def parameters(self) -> List[nn.Parameter]:
        """Forward-model parameters (all structures, concatenated)."""
        params: List[nn.Parameter] = []
        for model in self._models:
            params.extend(model.parameters())
        return params

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Forward-model parameters keyed ``model<i>.<param>``."""
        state: Dict[str, np.ndarray] = {}
        for i, model in enumerate(self._models):
            for key, value in model.state_dict().items():
                state[f"model{i}.{key}"] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        for i, model in enumerate(self._models):
            prefix = f"model{i}."
            sub = {
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            model.load_state_dict(sub)

    def copy_from(self, other: "SpatialCuriosity") -> None:
        """In-place parameter copy (employee <- chief synchronization)."""
        if len(self._models) != len(other._models):
            raise ValueError("curiosity structures differ")
        for mine, theirs in zip(self._models, other._models):
            mine.copy_from(theirs)
