"""Random Network Distillation (Burda et al., ICLR'19) baseline.

RND scores novelty of the *next state*: a fixed, randomly initialized
target network maps states to embeddings, and a trained predictor network
tries to match it.  States the predictor has not seen produce large errors
and hence large intrinsic rewards.  Section VII-D uses RND as the
state-of-the-art comparison point for the spatial curiosity model and
finds it "inefficient in our system" because the multi-worker state is too
complex to model jointly — a shape our reproduction also exhibits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .. import nn
from .base import CuriosityModule, TransitionBatch
from .icm import StateEncoder

__all__ = ["RNDCuriosity"]


class RNDCuriosity(CuriosityModule):
    """Fixed random target + trained predictor over full next states."""

    def __init__(
        self,
        channels: int,
        grid: int,
        eta: float = 0.3,
        feature_dim: int = 32,
        seed: int = 0,
        target_seed: Optional[int] = None,
    ):
        self.eta = eta
        # The frozen target network must be identical across every agent
        # synced from one global model, so its seed is separate from the
        # trainable predictor's seed.
        target_rng = np.random.default_rng(seed if target_seed is None else target_seed)
        predictor_rng = np.random.default_rng(seed + 1)
        self.target = StateEncoder(channels, grid, feature_dim=feature_dim, rng=target_rng)
        for param in self.target.parameters():
            param.requires_grad = False
        self.predictor = StateEncoder(
            channels, grid, feature_dim=feature_dim, rng=predictor_rng
        )

    def _errors(self, batch: TransitionBatch) -> nn.Tensor:
        if batch.next_states is None:
            raise ValueError("RNDCuriosity needs next_states in the TransitionBatch")
        states = nn.Tensor(np.asarray(batch.next_states))
        target = self.target(states).detach()
        predicted = self.predictor(states)
        diff = predicted - target
        return (diff * diff).sum(axis=1)

    def intrinsic_reward(self, batch: TransitionBatch) -> np.ndarray:
        return self.eta * self._errors(batch).data.copy()

    def loss(self, batch: TransitionBatch) -> nn.Tensor:
        return self._errors(batch).mean()

    def parameters(self) -> List[nn.Parameter]:
        """Predictor parameters only (the target is frozen)."""
        return self.predictor.parameters()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Predictor parameters (the target regenerates from its seed)."""
        return {f"predictor.{k}": v for k, v in self.predictor.state_dict().items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore predictor parameters saved by :meth:`state_dict`."""
        sub = {
            key[len("predictor."):]: value
            for key, value in state.items()
            if key.startswith("predictor.")
        }
        self.predictor.load_state_dict(sub)
