"""The full Intrinsic Curiosity Module of Pathak et al. (CVPR'17).

Included for reference and ablation: the paper's Section V-C describes this
three-network design (encoder ``φ``, forward model ``f``, inverse model)
before specializing it into the *spatial* curiosity model.  Here the
encoder is a small CNN over the full 3-channel state; the forward model
predicts the next state's encoding from the current encoding plus the joint
action; the inverse model predicts the (first worker's) route decision from
the two encodings, which shapes the encoder to attend to controllable
state.

Unlike :class:`~repro.curiosity.spatial.SpatialCuriosity`, the encoder here
is *learned* — trained through the inverse-model loss.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..env.actions import NUM_MOVES
from .base import CuriosityModule, TransitionBatch

__all__ = ["StateEncoder", "ICMCuriosity"]


class StateEncoder(nn.Module):
    """Small CNN: (C, G, G) state -> D-dim feature vector."""

    def __init__(
        self,
        channels: int,
        grid: int,
        feature_dim: int = 32,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.conv1 = nn.Conv2d(channels, 8, kernel_size=3, stride=2, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(8, 16, kernel_size=3, stride=2, padding=1, rng=rng)
        h1, w1 = self.conv1.output_size(grid, grid)
        h2, w2 = self.conv2.output_size(h1, w1)
        self.fc = nn.Linear(16 * h2 * w2, feature_dim, rng=rng)
        self.feature_dim = feature_dim

    def forward(self, states: nn.Tensor) -> nn.Tensor:
        """Encode (B, C, G, G) states into (B, feature_dim) vectors."""
        x = self.conv1(states).relu()
        x = self.conv2(x).relu()
        x = x.reshape(x.shape[0], -1)
        return self.fc(x)


class ICMCuriosity(CuriosityModule):
    """Encoder + forward + inverse model over full states.

    Parameters
    ----------
    channels, grid:
        State tensor geometry.
    num_workers:
        Width of the joint move vector (one categorical per worker).
    eta:
        Intrinsic reward scale.
    forward_weight:
        Weight of the forward loss in the combined training loss; the
        inverse loss gets ``1 - forward_weight`` (Pathak et al. use 0.2).
    """

    def __init__(
        self,
        channels: int,
        grid: int,
        num_workers: int,
        eta: float = 0.3,
        feature_dim: int = 32,
        hidden: int = 64,
        forward_weight: float = 0.2,
        seed: int = 0,
    ):
        if not 0.0 < forward_weight < 1.0:
            raise ValueError(f"forward_weight must be in (0, 1), got {forward_weight}")
        self.eta = eta
        self.num_workers = num_workers
        self.forward_weight = forward_weight
        rng = np.random.default_rng(seed)
        self.encoder = StateEncoder(channels, grid, feature_dim=feature_dim, rng=rng)
        action_dim = num_workers * NUM_MOVES
        self.forward_net = nn.Sequential(
            nn.Linear(feature_dim + action_dim, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, feature_dim, rng=rng),
        )
        # Inverse model predicts each worker's move from (φ_t, φ_{t+1}).
        self.inverse_net = nn.Sequential(
            nn.Linear(2 * feature_dim, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, action_dim, rng=rng),
        )

    # ------------------------------------------------------------------
    def _require_states(self, batch: TransitionBatch):
        if batch.states is None or batch.next_states is None:
            raise ValueError("ICMCuriosity needs full states in the TransitionBatch")
        return np.asarray(batch.states), np.asarray(batch.next_states)

    def _one_hot_moves(self, moves: np.ndarray) -> np.ndarray:
        batch_size = moves.shape[0]
        one_hot = np.zeros((batch_size, self.num_workers * NUM_MOVES))
        for w in range(self.num_workers):
            one_hot[np.arange(batch_size), w * NUM_MOVES + moves[:, w]] = 1.0
        return one_hot

    def _forward_errors(self, batch: TransitionBatch) -> nn.Tensor:
        """(B,) differentiable forward-model squared errors."""
        states, next_states = self._require_states(batch)
        phi_t = self.encoder(nn.Tensor(states))
        phi_t1 = self.encoder(nn.Tensor(next_states)).detach()
        actions = nn.Tensor(self._one_hot_moves(batch.moves))
        predicted = self.forward_net(nn.concat([phi_t.detach(), actions], axis=1))
        diff = predicted - phi_t1
        return (diff * diff).sum(axis=1)

    # ------------------------------------------------------------------
    # CuriosityModule interface
    # ------------------------------------------------------------------
    def intrinsic_reward(self, batch: TransitionBatch) -> np.ndarray:
        return self.eta * self._forward_errors(batch).data.copy()

    def loss(self, batch: TransitionBatch) -> nn.Tensor:
        states, next_states = self._require_states(batch)
        forward_loss = self._forward_errors(batch).mean()

        # Inverse loss trains the encoder: predict each worker's move.
        phi_t = self.encoder(nn.Tensor(states))
        phi_t1 = self.encoder(nn.Tensor(next_states))
        logits = self.inverse_net(nn.concat([phi_t, phi_t1], axis=1))
        inverse_loss = None
        for w in range(self.num_workers):
            worker_logits = logits[:, w * NUM_MOVES : (w + 1) * NUM_MOVES]
            term = F.cross_entropy(worker_logits, batch.moves[:, w])
            inverse_loss = term if inverse_loss is None else inverse_loss + term
        inverse_loss = inverse_loss * (1.0 / self.num_workers)

        return (
            forward_loss * self.forward_weight
            + inverse_loss * (1.0 - self.forward_weight)
        )

    def parameters(self) -> List[nn.Parameter]:
        """Encoder + forward + inverse model parameters."""
        return (
            self.encoder.parameters()
            + self.forward_net.parameters()
            + self.inverse_net.parameters()
        )

    def state_dict(self) -> Dict[str, np.ndarray]:
        """All three networks' parameters, prefixed by network role."""
        state: Dict[str, np.ndarray] = {}
        for prefix, module in (
            ("encoder", self.encoder),
            ("forward", self.forward_net),
            ("inverse", self.inverse_net),
        ):
            for key, value in module.state_dict().items():
                state[f"{prefix}.{key}"] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        for prefix, module in (
            ("encoder", self.encoder),
            ("forward", self.forward_net),
            ("inverse", self.inverse_net),
        ):
            sub = {
                key[len(prefix) + 1 :]: value
                for key, value in state.items()
                if key.startswith(prefix + ".")
            }
            module.load_state_dict(sub)
