"""Intrinsic-reward (curiosity) models.

The paper's spatial curiosity model (:class:`SpatialCuriosity`) plus the
two reference designs it is evaluated against: the full ICM of Pathak et
al. (:class:`ICMCuriosity`) and random network distillation
(:class:`RNDCuriosity`).  :class:`NullCuriosity` is the "without
curiosity" ablation arm.
"""

from .base import CuriosityModule, NullCuriosity, TransitionBatch
from .features import DirectFeature, EmbeddingFeature, PositionFeature, make_feature
from .icm import ICMCuriosity, StateEncoder
from .rnd import RNDCuriosity
from .spatial import ForwardModel, SpatialCuriosity

__all__ = [
    "CuriosityModule",
    "NullCuriosity",
    "TransitionBatch",
    "DirectFeature",
    "EmbeddingFeature",
    "PositionFeature",
    "make_feature",
    "ICMCuriosity",
    "StateEncoder",
    "RNDCuriosity",
    "ForwardModel",
    "SpatialCuriosity",
]
