"""Position feature extractors for the spatial curiosity model (Sec. VII-D).

The paper compares two *static* representations of a worker's spatial
information (following Burda et al.'s observation that random, untrained
features are stable targets for curiosity):

* the **direct feature** scales a worker's position into ``(0, 1)``
  (2 dimensions);
* the **embedding feature** maps the position through a static, randomly
  initialized embedding layer to an 8-dimensional spatial vector — "two
  locations could be far away from each other in the embedding space, even
  if these two points are close physically", which yields larger intrinsic
  rewards for unvisited cells.

Both extractors are deliberately frozen: they are *targets* for the forward
model, never trained.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from .. import nn
from ..env.space import CrowdsensingSpace

__all__ = ["PositionFeature", "DirectFeature", "EmbeddingFeature", "make_feature"]

DEFAULT_EMBEDDING_DIM = 8


class PositionFeature(Protocol):
    """A frozen map from continuous positions (N, 2) to features (N, D)."""

    dim: int

    def __call__(self, positions: np.ndarray) -> np.ndarray: ...


class DirectFeature:
    """Scale positions into (0, 1)²; feature dimension 2."""

    def __init__(self, space: CrowdsensingSpace):
        self._size = space.size
        self.dim = 2

    def __call__(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.float64).reshape(-1, 2)
        return positions / self._size


class EmbeddingFeature:
    """Static random embedding of the position's grid cell.

    Each of the ``grid²`` cells gets a fixed random D-dimensional vector;
    a position is represented by its cell's vector.  The table is sampled
    once from a seeded RNG and never trained.
    """

    def __init__(
        self,
        space: CrowdsensingSpace,
        dim: int = DEFAULT_EMBEDDING_DIM,
        seed: int = 0,
    ):
        if dim < 1:
            raise ValueError(f"embedding dim must be positive, got {dim}")
        self._space = space
        self.dim = dim
        rng = np.random.default_rng(seed)
        self._table = nn.Embedding(space.grid * space.grid, dim, rng=rng, frozen=True)
        # Normalize so an unvisited cell's expected squared error is ~1
        # regardless of dim, keeping η (Eqn. 17) comparable across feature
        # kinds and the intrinsic reward on the extrinsic reward's scale.
        # Init-time write to a frozen table: no autograd tape to invalidate.
        self._table.weight.data /= np.sqrt(dim)  # reprolint: disable=RPL003

    def __call__(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.float64).reshape(-1, 2)
        ids = self._space.flat_index(positions)
        return self._table(ids).data


def make_feature(
    kind: str, space: CrowdsensingSpace, seed: int = 0, dim: int = DEFAULT_EMBEDDING_DIM
) -> "PositionFeature":
    """Factory: ``kind`` is ``"direct"`` or ``"embedding"``."""
    if kind == "direct":
        return DirectFeature(space)
    if kind == "embedding":
        return EmbeddingFeature(space, dim=dim, seed=seed)
    raise ValueError(f"unknown feature kind {kind!r}; use 'direct' or 'embedding'")
