"""Common interface of all curiosity (intrinsic reward) modules.

Every curiosity model in this package — the paper's spatial curiosity, the
full ICM of Pathak et al., and RND — implements :class:`CuriosityModule`:

* :meth:`intrinsic_reward` scores one transition at rollout time and
  returns the scalar ``r_t^int = η · Loss^f`` (Eqn. 17) without touching
  any learnable parameters;
* :meth:`loss` builds the differentiable training loss over a batch of
  transitions so employees can compute gradients for the chief's curiosity
  gradient buffer;
* :meth:`parameters` exposes the trainable parameters (the chief owns the
  optimizer).

A :class:`TransitionBatch` carries everything any of the models could need;
each model reads only the fields relevant to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import nn

__all__ = ["TransitionBatch", "CuriosityModule", "NullCuriosity"]


@dataclass(frozen=True)
class TransitionBatch:
    """A batch of environment transitions for curiosity training.

    Attributes
    ----------
    positions:
        (B, W, 2) worker positions before the move (``l_t``).
    next_positions:
        (B, W, 2) worker positions after the move (``l_{t+1}``).
    moves:
        (B, W) integer route-planning decisions ``v_t``.
    states:
        Optional (B, C, G, G) full states ``s_t`` (used by ICM / RND).
    next_states:
        Optional (B, C, G, G) full next states ``s_{t+1}``.
    """

    positions: np.ndarray
    next_positions: np.ndarray
    moves: np.ndarray
    states: Optional[np.ndarray] = None
    next_states: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions, dtype=np.float64)
        if positions.ndim != 3 or positions.shape[-1] != 2:
            raise ValueError(f"positions must be (B, W, 2), got {positions.shape}")
        object.__setattr__(self, "positions", positions)
        next_positions = np.asarray(self.next_positions, dtype=np.float64)
        if next_positions.shape != positions.shape:
            raise ValueError(
                f"next_positions shape {next_positions.shape} != {positions.shape}"
            )
        object.__setattr__(self, "next_positions", next_positions)
        moves = np.asarray(self.moves, dtype=np.int64)
        if moves.shape != positions.shape[:2]:
            raise ValueError(f"moves must be (B, W), got {moves.shape}")
        object.__setattr__(self, "moves", moves)

    def __len__(self) -> int:
        return self.positions.shape[0]

    @property
    def num_workers(self) -> int:
        return self.positions.shape[1]

    @staticmethod
    def single(
        positions: np.ndarray,
        moves: np.ndarray,
        next_positions: np.ndarray,
        state: Optional[np.ndarray] = None,
        next_state: Optional[np.ndarray] = None,
    ) -> "TransitionBatch":
        """Wrap a single timestep (W, ...) as a batch of size one."""
        return TransitionBatch(
            positions=np.asarray(positions)[None],
            next_positions=np.asarray(next_positions)[None],
            moves=np.asarray(moves)[None],
            states=None if state is None else np.asarray(state)[None],
            next_states=None if next_state is None else np.asarray(next_state)[None],
        )


class CuriosityModule:
    """Abstract base; see the module docstring for the contract."""

    #: scaling factor η of Eqn. (17)
    eta: float

    def intrinsic_reward(self, batch: TransitionBatch) -> np.ndarray:
        """(B,) intrinsic rewards, detached (no gradient bookkeeping)."""
        raise NotImplementedError

    def per_worker_curiosity(self, batch: TransitionBatch) -> np.ndarray:
        """(B, W) per-worker curiosity values (for the Fig. 9 heatmaps).

        Models that do not decompose per worker broadcast the batch value.
        """
        values = self.intrinsic_reward(batch)
        return np.repeat(values[:, None], batch.num_workers, axis=1)

    def loss(self, batch: TransitionBatch) -> nn.Tensor:
        """Differentiable training loss (scalar tensor)."""
        raise NotImplementedError

    def parameters(self) -> List[nn.Parameter]:
        """Trainable parameters (empty for parameter-free modules)."""
        raise NotImplementedError

    def state_dict(self):
        """Copy of every trainable parameter, keyed by dotted path."""
        raise NotImplementedError

    def load_state_dict(self, state) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        raise NotImplementedError


class NullCuriosity(CuriosityModule):
    """A curiosity stub that always returns zero (the "w/o curiosity" arm).

    Used by the Fig. 5 ablation and by baselines that train on extrinsic
    reward only; it has no parameters and a constant-zero loss.
    """

    def __init__(self):
        self.eta = 0.0
        # One dummy (frozen) parameter so optimizers are never constructed
        # over it; parameters() returns an empty list instead.

    def intrinsic_reward(self, batch: TransitionBatch) -> np.ndarray:
        return np.zeros(len(batch))

    def loss(self, batch: TransitionBatch) -> nn.Tensor:
        return nn.Tensor(0.0)

    def parameters(self) -> List[nn.Parameter]:
        """No parameters."""
        return []

    def state_dict(self):
        """Empty (nothing to save)."""
        return {}

    def load_state_dict(self, state) -> None:
        """Accepts only an empty state."""
        if state:
            raise ValueError("NullCuriosity has no state to load")
