"""The ``reprolint`` rule set: this repo's correctness invariants as code.

Every rule enforces an invariant the reproduction's claims rest on
(bitwise determinism, float64 dtype discipline, autograd integrity, lock
discipline in the distributed trainer).  Rules are registered in
:data:`RULES` keyed by code, and each one is a pure function from a
:class:`ModuleContext` to an iterable of
:class:`~repro.analysis.findings.Finding`.

Suppression syntax (handled by :mod:`repro.analysis.engine`)::

    something_bad()  # reprolint: disable=RPL001
    # reprolint: disable=RPL003,RPL005   (standalone: applies to next line)

The rules
---------
========  ======================  ==============================================
code      name                    invariant
========  ======================  ==============================================
RPL001    no-global-rng           only seeded ``np.random.Generator`` objects
RPL002    no-dtype-narrowing      float64 discipline outside ``repro.nn``
RPL003    no-tensor-mutation      ``.data``/``.grad`` writes only in whitelisted
                                  optimizer / serialization / chief modules
RPL004    no-mutable-default      no mutable default arguments
RPL005    lock-discipline         lock-guarded attributes only touched under
                                  ``with self._lock`` (intra-class dataflow)
RPL006    no-wall-clock           no ``time.sleep``/wall-clock in deterministic
                                  paths (fault injector & backoff whitelisted)
RPL007    no-swallowed-exception  no bare ``except:`` / silent ``except: pass``
RPL008    no-module-seed          test files seed via fixtures, not at import
RPL009    no-bare-print           library code reports via ``repro.obs`` logging
                                  / metrics, not ``print()`` (CLI, reporting
                                  entry points, examples/ and benchmarks/
                                  whitelisted — stdout is their interface)
RPL010    no-percall-index-alloc  ``repro.nn`` hot ops must not build index
                                  arrays (``np.arange``/``np.repeat``/
                                  ``np.tile``) or scatter with ``np.add.at``
                                  per call — use a cached kernel plan
                                  (plan-construction code is exempt)
RPL011    no-fork-unsafe-state    ``repro.distributed`` worker entrypoints run
                                  post-fork and must receive every seed/config
                                  explicitly: no ``global`` statements, no
                                  reads of mutable module-level state, no
                                  unseeded ``default_rng()``
RPL012    no-raw-socket-io        socket construction and ``send``/``recv``
                                  calls only inside
                                  ``repro.distributed.transport`` — anywhere
                                  else they bypass framing, CRC checks,
                                  heartbeats and chaos injection
RPL017    no-naked-span           ``Tracer.span(...)`` builds a context
                                  manager: a bare call statement records
                                  nothing — it must be entered via ``with``
RPL018    no-arena-escape         execution-plan arena slabs are overwritten by
                                  every replay; ``<arena>.buffer(...)`` results
                                  must not be returned, yielded or stashed on
                                  self/module state (copy out instead; the plan
                                  machinery in ``repro.nn.executor``/``arena``
                                  is exempt)
========  ======================  ==============================================

Whole-program rules (RPL013 lock-order-cycle, RPL014 rng-provenance,
RPL015 fork-reachability, RPL016 blocking-call-under-lock) live in
:mod:`repro.analysis.lockflow` / :mod:`repro.analysis.rngflow` and run
over the cross-module call graph via ``python -m repro lint --program``;
their runtime counterparts SAN004/SAN005 are
:mod:`repro.analysis.lockwatch`.
"""

from __future__ import annotations

import ast
import posixpath
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding

__all__ = ["Rule", "RULES", "ModuleContext", "rule", "rule_table"]


# ----------------------------------------------------------------------
# Context and registry
# ----------------------------------------------------------------------
class ModuleContext:
    """Everything a rule may look at for one module."""

    def __init__(self, tree: ast.Module, path: str, source: str):
        self.tree = tree
        self.path = posixpath.normpath(path.replace("\\", "/"))
        self.source = source

    @property
    def basename(self) -> str:
        return posixpath.basename(self.path)

    @property
    def is_test(self) -> bool:
        """Pytest-convention test modules (and conftest) get test-rule scope."""
        name = self.basename
        return (
            name.startswith("test_")
            or name.endswith("_test.py")
            or name == "conftest.py"
        )

    def path_matches(self, patterns: Sequence[str]) -> bool:
        """True when any pattern is a substring of the normalized path."""
        return any(pattern in self.path for pattern in patterns)

    # Import facts, computed lazily and cached.
    _imports: Optional[Set[str]] = None

    def imports(self) -> Set[str]:
        """Top-level module names imported anywhere in the file."""
        if self._imports is None:
            found: Set[str] = set()
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        found.add(alias.name.split(".")[0])
                elif isinstance(node, ast.ImportFrom) and node.module:
                    found.add(node.module.split(".")[0])
            self._imports = found
        return self._imports


RuleChecker = Callable[[ModuleContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    code: str
    name: str
    description: str
    checker: RuleChecker

    def run(self, context: ModuleContext) -> List[Finding]:
        return list(self.checker(context))


RULES: Dict[str, Rule] = {}


def rule(code: str, name: str, description: str):
    """Class decorator-style registrar for rule checker functions."""

    def register(checker: RuleChecker) -> RuleChecker:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code=code, name=name, description=description, checker=checker)
        return checker

    return register


def rule_table() -> List[Tuple[str, str, str]]:
    """(code, name, description) rows for ``--list-rules`` output."""
    return [(r.code, r.name, r.description) for r in sorted(RULES.values(), key=lambda r: r.code)]


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for nested Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _finding(context: ModuleContext, code: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        code=code,
        rule=RULES[code].name if code in RULES else "",
        path=context.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


_NUMPY_ALIASES = ("np", "numpy")

# Seeded-RNG construction surface that *is* allowed on np.random.
_ALLOWED_NP_RANDOM = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


# ----------------------------------------------------------------------
# RPL001 — no global RNG state
# ----------------------------------------------------------------------
@rule(
    "RPL001",
    "no-global-rng",
    "use seeded np.random.Generator objects; never global np.random.* or "
    "the stdlib random module (breaks bitwise determinism claims)",
)
def check_global_rng(context: ModuleContext) -> Iterator[Finding]:
    if context.is_test:
        return
    uses_stdlib_random = "random" in context.imports()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                len(parts) == 3
                and parts[0] in _NUMPY_ALIASES
                and parts[1] == "random"
                and parts[2] not in _ALLOWED_NP_RANDOM
            ):
                yield _finding(
                    context,
                    "RPL001",
                    node,
                    f"global numpy RNG call `{dotted}`: pass a seeded "
                    f"np.random.Generator instead",
                )
            elif len(parts) == 2 and parts[0] == "random" and uses_stdlib_random:
                yield _finding(
                    context,
                    "RPL001",
                    node,
                    f"stdlib `{dotted}` uses hidden global state: pass a "
                    f"seeded np.random.Generator instead",
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "random":
                yield _finding(
                    context,
                    "RPL001",
                    node,
                    "importing from the stdlib random module: use seeded "
                    "np.random.Generator objects",
                )
            elif node.module in ("numpy.random", "np.random"):
                for alias in node.names:
                    if alias.name not in _ALLOWED_NP_RANDOM:
                        yield _finding(
                            context,
                            "RPL001",
                            node,
                            f"importing global-state `numpy.random.{alias.name}`: "
                            f"use seeded np.random.Generator objects",
                        )


# ----------------------------------------------------------------------
# RPL002 — no dtype narrowing outside repro.nn
# ----------------------------------------------------------------------
_NARROW_FLOAT_NAMES = {"float32", "float16", "half", "single"}
_RPL002_EXEMPT = ("repro/nn/",)


def _is_narrow_float(node: ast.AST) -> Optional[str]:
    """The narrowing dtype spelled by ``node`` (np.float32, "float16", …)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in _NARROW_FLOAT_NAMES:
            return node.value
    dotted = _dotted(node)
    if dotted is not None:
        parts = dotted.split(".")
        if parts[-1] in _NARROW_FLOAT_NAMES and (
            len(parts) == 1 or parts[0] in _NUMPY_ALIASES
        ):
            return dotted
    return None


@rule(
    "RPL002",
    "no-dtype-narrowing",
    "repro.nn is float64 end to end; narrowing to float32/float16 outside "
    "nn internals silently degrades gradient checks",
)
def check_dtype_narrowing(context: ModuleContext) -> Iterator[Finding]:
    if context.is_test or context.path_matches(_RPL002_EXEMPT):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # x.astype(np.float32) / x.astype("float16")
        if isinstance(func, ast.Attribute) and func.attr == "astype" and node.args:
            narrow = _is_narrow_float(node.args[0])
            if narrow:
                yield _finding(
                    context,
                    "RPL002",
                    node,
                    f"dtype narrowing `.astype({narrow})`: the framework's "
                    f"dtype discipline is float64",
                )
        # np.float32(x) constructor
        dotted = _dotted(func)
        if dotted is not None:
            parts = dotted.split(".")
            if (
                len(parts) == 2
                and parts[0] in _NUMPY_ALIASES
                and parts[1] in _NARROW_FLOAT_NAMES
            ):
                yield _finding(
                    context,
                    "RPL002",
                    node,
                    f"`{dotted}(...)` constructs a narrowed scalar/array: "
                    f"the framework's dtype discipline is float64",
                )
        # dtype=np.float32 keyword on any call
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                narrow = _is_narrow_float(keyword.value)
                if narrow:
                    yield _finding(
                        context,
                        "RPL002",
                        keyword.value,
                        f"`dtype={narrow}` narrows below float64",
                    )


# ----------------------------------------------------------------------
# RPL003 — no tensor .data/.grad mutation outside whitelisted modules
# ----------------------------------------------------------------------
# Modules allowed to write parameter/tensor state in place: the nn
# framework itself plus the chief-side gradient-application paths.
_RPL003_ALLOWED = (
    "repro/nn/",
    "repro/distributed/trainer.py",
    "repro/distributed/async_trainer.py",
    "repro/distributed/procpool.py",
    "repro/agents/policy.py",
    "repro/agents/edics.py",
)
_TENSOR_SLOTS = {"data", "grad"}


def _mutated_tensor_attr(target: ast.AST) -> Optional[ast.AST]:
    """The ``x.data`` / ``x.grad`` node mutated by this assignment target."""
    if isinstance(target, ast.Attribute) and target.attr in _TENSOR_SLOTS:
        return target
    if isinstance(target, ast.Subscript):
        value = target.value
        if isinstance(value, ast.Attribute) and value.attr in _TENSOR_SLOTS:
            return value
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            hit = _mutated_tensor_attr(element)
            if hit is not None:
                return hit
    return None


@rule(
    "RPL003",
    "no-tensor-mutation",
    "in-place writes to Tensor .data/.grad outside whitelisted "
    "optim/serialization/chief modules bypass the autograd tape",
)
def check_tensor_mutation(context: ModuleContext) -> Iterator[Finding]:
    if context.is_test or context.path_matches(_RPL003_ALLOWED):
        return
    for node in ast.walk(context.tree):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            hit = _mutated_tensor_attr(target)
            if hit is not None:
                name = _dotted(hit) or f"<expr>.{hit.attr}"  # type: ignore[attr-defined]
                yield _finding(
                    context,
                    "RPL003",
                    node,
                    f"in-place mutation of `{name}` outside the optimizer/"
                    f"serialization whitelist bypasses the autograd tape",
                )


# ----------------------------------------------------------------------
# RPL004 — no mutable default arguments
# ----------------------------------------------------------------------
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        return dotted in _MUTABLE_FACTORIES
    return False


@rule(
    "RPL004",
    "no-mutable-default",
    "mutable default arguments alias state across calls (classic source "
    "of cross-episode contamination)",
)
def check_mutable_defaults(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                yield _finding(
                    context,
                    "RPL004",
                    default,
                    f"mutable default argument in `{node.name}()`: use None "
                    f"and construct inside the body",
                )


# ----------------------------------------------------------------------
# RPL005 — lock discipline (intra-class dataflow)
# ----------------------------------------------------------------------
_LOCK_FACTORIES = {"Lock", "RLock", "threading.Lock", "threading.RLock"}
_INIT_METHODS = {"__init__", "__post_init__", "__new__", "__enter__", "__exit__"}


class _AttrAccess:
    __slots__ = ("method", "attr", "node", "under_lock", "is_call")

    def __init__(self, method: str, attr: str, node: ast.AST, under_lock: bool, is_call: bool):
        self.method = method
        self.attr = attr
        self.node = node
        self.under_lock = under_lock
        self.is_call = is_call


def _class_lock_names(cls: ast.ClassDef) -> Set[str]:
    """Attributes assigned a threading.Lock()/RLock() anywhere in the class."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            dotted = _dotted(node.value.func)
            if dotted in _LOCK_FACTORIES:
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        locks.add(target.attr)
    return locks


def _is_self_lock_with(item: ast.withitem, locks: Set[str]) -> bool:
    expr = item.context_expr
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in locks
    )


def _collect_accesses(
    method: ast.FunctionDef, locks: Set[str]
) -> List[_AttrAccess]:
    """Every ``self.<attr>`` access in ``method`` with its lock context."""
    accesses: List[_AttrAccess] = []
    call_funcs = {
        id(node.func) for node in ast.walk(method) if isinstance(node, ast.Call)
    }

    def visit(node: ast.AST, under: bool) -> None:
        if isinstance(node, ast.With) and any(
            _is_self_lock_with(item, locks) for item in node.items
        ):
            for child in ast.iter_child_nodes(node):
                visit(child, True)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr not in locks
        ):
            accesses.append(
                _AttrAccess(
                    method=method.name,
                    attr=node.attr,
                    node=node,
                    under_lock=under,
                    is_call=id(node) in call_funcs,
                )
            )
        for child in ast.iter_child_nodes(node):
            visit(child, under)

    for stmt in method.body:
        visit(stmt, False)
    return accesses


@rule(
    "RPL005",
    "lock-discipline",
    "attributes guarded by `with self._lock` somewhere in a class must be "
    "guarded everywhere (shared chief/employee state must not race)",
)
def check_lock_discipline(context: ModuleContext) -> Iterator[Finding]:
    if context.is_test:
        return
    for cls in ast.walk(context.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _class_lock_names(cls)
        if not locks:
            continue
        methods = [n for n in cls.body if isinstance(n, ast.FunctionDef)]
        accesses: List[_AttrAccess] = []
        for method in methods:
            accesses.extend(_collect_accesses(method, locks))

        method_names = {m.name for m in methods}
        # Fixpoint: a method is "lock-held" when every intra-class call
        # site of it sits under the lock (directly or inside another
        # lock-held method).  Its body then counts as a locked region.
        lock_held: Set[str] = set()
        while True:
            changed = False
            for name in method_names - lock_held:
                sites = [a for a in accesses if a.is_call and a.attr == name]
                if sites and all(
                    a.under_lock or a.method in lock_held for a in sites
                ):
                    lock_held.add(name)
                    changed = True
            if not changed:
                break

        def effectively_locked(access: _AttrAccess) -> bool:
            return access.under_lock or access.method in lock_held

        guarded = {
            a.attr
            for a in accesses
            if effectively_locked(a) and not a.is_call and a.attr not in method_names
        }
        for access in accesses:
            if (
                access.attr in guarded
                and not access.is_call
                and not effectively_locked(access)
                and access.method not in _INIT_METHODS
            ):
                yield _finding(
                    context,
                    "RPL005",
                    access.node,
                    f"`self.{access.attr}` is lock-guarded elsewhere in "
                    f"`{cls.name}` but accessed without the lock in "
                    f"`{access.method}()`",
                )


# ----------------------------------------------------------------------
# RPL006 — no wall-clock calls in deterministic paths
# ----------------------------------------------------------------------
_WALL_CLOCK_CALLS = {
    "time.sleep",
    "time.time",
    "time.monotonic",
    "time.time_ns",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.now",
    "datetime.utcnow",
    "date.today",
    "datetime.date.today",
}
# path pattern -> calls additionally allowed there.  The fault injector
# *is* the subsystem that sleeps on purpose; the trainer's retry backoff
# is an explicitly non-deterministic recovery path.
_RPL006_WHITELIST = {
    "repro/distributed/faults.py": _WALL_CLOCK_CALLS,
    "repro/distributed/trainer.py": {"time.sleep"},
    # The socket transport is wall-clock machinery by nature (heartbeat
    # cadence, retransmission timers, reconnect backoff); none of it
    # touches training RNG streams, which the bitwise gate proves.
    "repro/distributed/transport/": _WALL_CLOCK_CALLS,
    # Tracing records wall-clock span timestamps by design; spans never feed
    # back into the training computation, so determinism is unaffected.
    "repro/obs/": {"time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns"},
    # The lock-order sanitizer measures hold durations (SAN005) with the
    # monotonic clock; its bookkeeping never touches numeric state.
    "repro/analysis/lockwatch.py": {"time.monotonic", "time.monotonic_ns"},
    # The inference server measures request latency with the monotonic
    # clock and its sync client sleeps for 503 retry backoff; served
    # actions stay bitwise-identical to offline act_full regardless.
    "repro/serve/server.py": {"time.monotonic", "time.sleep"},
}


@rule(
    "RPL006",
    "no-wall-clock",
    "wall-clock reads/sleeps in deterministic code paths break "
    "kill-and-resume bitwise equivalence (perf_counter for reporting is fine)",
)
def check_wall_clock(context: ModuleContext) -> Iterator[Finding]:
    if context.is_test:
        return
    allowed: Set[str] = set()
    for pattern, calls in _RPL006_WHITELIST.items():
        if pattern in context.path:
            allowed |= set(calls)
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted in _WALL_CLOCK_CALLS and dotted not in allowed:
            yield _finding(
                context,
                "RPL006",
                node,
                f"wall-clock call `{dotted}` in a deterministic code path",
            )


# ----------------------------------------------------------------------
# RPL007 — no swallowed exceptions
# ----------------------------------------------------------------------
@rule(
    "RPL007",
    "no-swallowed-exception",
    "bare `except:` / silent `except: pass` hides gradient and fault "
    "errors the sanitizer and quarantine rely on surfacing",
)
def check_swallowed_exceptions(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield _finding(
                context,
                "RPL007",
                node,
                "bare `except:` swallows every error (including "
                "KeyboardInterrupt); name the exception type",
            )
            continue
        broad = _dotted(node.type) in ("Exception", "BaseException")
        body_is_silent = all(isinstance(stmt, ast.Pass) for stmt in node.body)
        if broad and body_is_silent:
            yield _finding(
                context,
                "RPL007",
                node,
                "`except Exception: pass` silently swallows errors; handle "
                "or re-raise",
            )


# ----------------------------------------------------------------------
# RPL008 — no module-level seeding in test files
# ----------------------------------------------------------------------
_MODULE_SEED_CALLS = {
    "np.random.seed",
    "numpy.random.seed",
    "random.seed",
}
_MODULE_RNG_FACTORIES = {
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.RandomState",
    "numpy.random.RandomState",
    "random.Random",
}


@rule(
    "RPL008",
    "no-module-seed",
    "tests must get RNGs from fixtures; module-level seeds leak state "
    "across the whole test session and depend on collection order",
)
def check_module_seed(context: ModuleContext) -> Iterator[Finding]:
    if not context.is_test:
        return
    for node in context.tree.body:
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            dotted = _dotted(node.value.func)
            if dotted in _MODULE_SEED_CALLS:
                yield _finding(
                    context,
                    "RPL008",
                    node,
                    f"module-level `{dotted}(...)` in a test file: seed via "
                    f"a fixture instead",
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if isinstance(value, ast.Call):
                dotted = _dotted(value.func)
                if dotted in _MODULE_RNG_FACTORIES:
                    yield _finding(
                        context,
                        "RPL008",
                        node,
                        f"module-level RNG `{dotted}(...)` shared across "
                        f"tests: construct it inside a fixture",
                    )


# ----------------------------------------------------------------------
# RPL009 — no bare print() in library code
# ----------------------------------------------------------------------
# CLI entry points and the lint reporters talk to a terminal by design;
# everything else must go through ``repro.obs`` (structured logging,
# metrics, tracing) so output is capturable, filterable and silent by
# default when the package is used as a library.
_RPL009_WHITELIST = (
    "__main__.py",
    "repro/analysis/cli.py",
    "repro/analysis/reporters.py",
    # Example scripts and benchmark drivers are terminal programs: their
    # printed tables/summaries ARE the interface, exactly like the CLI.
    "examples/",
    "benchmarks/",
)


@rule(
    "RPL009",
    "no-bare-print",
    "library code must report through `repro.obs` logging/metrics, not "
    "`print()`; stdout writes from library modules pollute captured "
    "output and cannot be filtered by severity",
)
def check_bare_print(context: ModuleContext) -> Iterator[Finding]:
    if context.is_test or context.path_matches(_RPL009_WHITELIST):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield _finding(
                context,
                "RPL009",
                node,
                "bare `print()` in library code; use "
                "`repro.obs.get_logger(__name__)` (or a metrics/trace "
                "event) instead",
            )


# ----------------------------------------------------------------------
# RPL010 — no per-call index allocation in repro.nn hot ops
# ----------------------------------------------------------------------
# PR 4 replaced the per-call im2col/col2im index machinery with cached
# kernel plans precisely because ``np.arange``/``np.repeat``/``np.tile``
# gather indices and ``np.add.at`` scatters dominated the conv/pool hot
# paths (and ``np.add.at``'s index-order accumulation is easy to get
# bitwise-wrong when "optimized" ad hoc).  This rule keeps the regression
# from creeping back: inside ``repro/nn/`` modules, index-array builders
# may only appear in plan-construction code — functions whose name starts
# with ``_plan`` or an ``__init__`` (run once per shape, cached) — and
# ``np.add.at`` may not appear at all.  Genuine exceptions (e.g. the
# generic duplicate-index ``Tensor.__getitem__`` backward, which is
# correctness machinery rather than a planned hot op) carry an explicit
# ``# reprolint: disable=RPL010`` at the call site.
_RPL010_PATHS = ("repro/nn/",)
_RPL010_INDEX_BUILDERS = {"arange", "repeat", "tile"}
_RPL010_PLAN_PREFIXES = ("_plan",)


def _rpl010_call_kind(node: ast.Call) -> Optional[str]:
    """"scatter" for np.add.at, "builder" for np.arange/repeat/tile."""
    dotted = _dotted(node.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts[0] not in _NUMPY_ALIASES:
        return None
    if parts[1:] == ["add", "at"]:
        return "scatter"
    if len(parts) == 2 and parts[1] in _RPL010_INDEX_BUILDERS:
        return "builder"
    return None


@rule(
    "RPL010",
    "no-percall-index-alloc",
    "repro.nn hot ops must gather/scatter through cached kernel plans; "
    "per-call np.arange/np.repeat/np.tile index construction and "
    "np.add.at scatters are the exact regressions PR 4 removed "
    "(plan-construction functions are exempt)",
)
def check_percall_index_alloc(context: ModuleContext) -> Iterator[Finding]:
    if context.is_test or not context.path_matches(_RPL010_PATHS):
        return

    def visit(node: ast.AST, in_plan_scope: bool) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            in_plan_scope = in_plan_scope or (
                node.name == "__init__"
                or node.name.startswith(_RPL010_PLAN_PREFIXES)
            )
        if isinstance(node, ast.Call):
            kind = _rpl010_call_kind(node)
            if kind == "scatter":
                yield _finding(
                    context,
                    "RPL010",
                    node,
                    "`np.add.at` scatter in a repro.nn hot path: use the "
                    "kernel plan's order-preserving strided scatter_add "
                    "(np.add.at's buffered accumulation was the dominant "
                    "col2im cost)",
                )
            elif kind == "builder" and not in_plan_scope:
                dotted = _dotted(node.func)
                yield _finding(
                    context,
                    "RPL010",
                    node,
                    f"per-call `{dotted}` index construction in a repro.nn "
                    f"hot op: build indices once in a cached kernel plan "
                    f"(_plan*/__init__ construction code is exempt)",
                )
        for child in ast.iter_child_nodes(node):
            yield from visit(child, in_plan_scope)

    yield from visit(context.tree, False)


# ----------------------------------------------------------------------
# RPL011 — no fork-unsafe state in distributed worker entrypoints
# ----------------------------------------------------------------------
# The process backend (PR 5) forks employee workers; a forked child gets
# a snapshot of the parent's module state at fork time.  Any worker code
# that *reads* mutable module-level state or draws OS entropy therefore
# depends on *when* the fork happened — exactly the nondeterminism the
# bitwise-identical-across-backends contract forbids.  Worker entrypoints
# (functions named ``*_worker_main`` or passed as ``target=`` to a
# ``*Process(...)`` constructor) in ``repro/distributed/`` must receive
# every seed and config through their arguments: no ``global``
# statements, no reads of lowercase module-level assignments (ALL_CAPS
# constants, imports, defs and classes are fine), and no argument-less
# ``default_rng()`` (which seeds from OS entropy, differing per fork).
_RPL011_PATHS = ("repro/distributed/",)


def _rpl011_module_mutables(tree: ast.Module) -> Set[str]:
    """Lowercase names assigned at module level (mutable state, not
    constants/imports/defs)."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    name = leaf.id
                    if not name.isupper() and not (
                        name.startswith("__") and name.endswith("__")
                    ):
                        names.add(name)
    return names


def _rpl011_entrypoints(tree: ast.Module) -> List[ast.FunctionDef]:
    """Worker entrypoints: ``*_worker_main`` defs plus ``target=`` refs."""
    target_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            callee = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
            if callee.endswith("Process"):
                for keyword in node.keywords:
                    if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
                        target_names.add(keyword.value.id)
    found: List[ast.FunctionDef] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and (
            node.name.endswith("_worker_main") or node.name in target_names
        ):
            found.append(node)
    return found


def _rpl011_local_bindings(fn: ast.FunctionDef) -> Set[str]:
    """Every name bound inside the entrypoint (args, stores, handlers)."""
    bound: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
            args = node.args
            for arg in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                bound.add(arg.arg)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
    return bound


@rule(
    "RPL011",
    "no-fork-unsafe-state",
    "repro.distributed worker entrypoints run post-fork and must receive "
    "seeds/configs explicitly through their arguments — no global "
    "statements, no reads of mutable module-level state, no unseeded "
    "default_rng() (fork-time snapshots and OS entropy break the "
    "bitwise-identical-across-backends contract)",
)
def check_fork_unsafe_state(context: ModuleContext) -> Iterator[Finding]:
    if context.is_test or not context.path_matches(_RPL011_PATHS):
        return
    entrypoints = _rpl011_entrypoints(context.tree)
    if not entrypoints:
        return
    mutables = _rpl011_module_mutables(context.tree)
    for fn in entrypoints:
        local = _rpl011_local_bindings(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield _finding(
                    context,
                    "RPL011",
                    node,
                    f"worker entrypoint `{fn.name}` uses `global "
                    f"{', '.join(node.names)}`: post-fork module state is a "
                    f"fork-time snapshot — pass the state in explicitly",
                )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if (
                    dotted is not None
                    and dotted.split(".")[-1] == "default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield _finding(
                        context,
                        "RPL011",
                        node,
                        f"unseeded `default_rng()` in worker entrypoint "
                        f"`{fn.name}`: OS-entropy seeding differs per fork — "
                        f"seed from the worker's spec instead",
                    )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutables
                and node.id not in local
            ):
                yield _finding(
                    context,
                    "RPL011",
                    node,
                    f"worker entrypoint `{fn.name}` reads module-level "
                    f"`{node.id}`: a forked child sees a fork-time snapshot "
                    f"— receive it through the entrypoint's arguments",
                )


# ----------------------------------------------------------------------
# RPL012 — no raw socket I/O outside the transport package
# ----------------------------------------------------------------------
# The socket transport (PR 6) frames every byte on the wire: length
# prefix, CRC32, seq stamps, heartbeat accounting, fault injection.  A
# bare ``sock.send``/``sock.recv`` anywhere else bypasses all of it —
# unchecksummed bytes, invisible to chaos tests, outside the reconnect
# machinery.  Modules that import ``socket`` may resolve names
# (``gethostname``/``getaddrinfo``), but constructing connections or
# moving bytes belongs to ``repro/distributed/transport/`` alone.
_RPL012_EXEMPT = ("repro/distributed/transport/",)
_RPL012_IO_METHODS = {
    "send",
    "sendall",
    "sendto",
    "sendmsg",
    "recv",
    "recv_into",
    "recvfrom",
    "recvfrom_into",
    "recvmsg",
    "makefile",
}
_RPL012_CONSTRUCTORS = {
    "socket.socket",
    "socket.socketpair",
    "socket.create_connection",
    "socket.create_server",
}


def _rpl012_imports_socket(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] == "socket" for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.module.split(".")[0] == "socket":
                return True
    return False


@rule(
    "RPL012",
    "no-raw-socket-io",
    "socket construction and send/recv calls are confined to "
    "repro.distributed.transport — everywhere else they bypass framing, "
    "CRC checks, heartbeat accounting and chaos injection",
)
def check_raw_socket_io(context: ModuleContext) -> Iterator[Finding]:
    if context.is_test or context.path_matches(_RPL012_EXEMPT):
        return
    if not _rpl012_imports_socket(context.tree):
        # Without the import there is no socket object to do raw I/O on;
        # this also keeps pipe ``conn.send``/``conn.recv`` (procpool) and
        # generator ``.send`` out of scope.
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted in _RPL012_CONSTRUCTORS:
            yield _finding(
                context,
                "RPL012",
                node,
                f"`{dotted}(...)` outside repro/distributed/transport/: "
                f"open connections through the Transport interface so "
                f"framing, heartbeats and chaos injection apply",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _RPL012_IO_METHODS
        ):
            yield _finding(
                context,
                "RPL012",
                node,
                f"raw socket I/O `.{node.func.attr}(...)` outside "
                f"repro/distributed/transport/: bytes moved here skip "
                f"length-prefix framing and CRC verification — use a "
                f"ChiefChannel/WorkerEndpoint instead",
            )


# ----------------------------------------------------------------------
# RPL017 — no naked span
# ----------------------------------------------------------------------
# ``Tracer.span(...)`` (and the module-level ``span(...)`` helper) build
# a context manager; nothing is timed or recorded until ``__enter__``
# runs.  A bare ``tracer.span("phase")`` statement therefore compiles,
# runs, and records *nothing* — the archetypal "instrumented but dark"
# bug.  Returning or assigning the manager is fine (the caller enters
# it); only expression statements are flagged.
def _rpl017_span_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to an obs/trace ``span`` import (honors ``as``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if "obs" in node.module or "trace" in node.module:
                for alias in node.names:
                    if alias.name == "span":
                        aliases.add(alias.asname or alias.name)
    return aliases


@rule(
    "RPL017",
    "no-naked-span",
    "Tracer.span(...) as a bare statement records nothing — the span only "
    "opens and closes when the returned context manager is entered, so it "
    "must be used under `with`",
)
def check_naked_span(context: ModuleContext) -> Iterator[Finding]:
    aliases = _rpl017_span_aliases(context.tree)
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        naked = False
        if isinstance(func, ast.Name):
            naked = func.id in aliases
        elif isinstance(func, ast.Attribute) and func.attr == "span":
            receiver = func.value
            dotted = _dotted(receiver)
            if dotted is not None:
                # `tracer.span(...)`, `self._tracer.span(...)`, …
                naked = dotted.lower().endswith("tracer")
            elif isinstance(receiver, ast.Call):
                callee = _dotted(receiver.func)
                naked = (
                    callee is not None
                    and callee.split(".")[-1] == "get_tracer"
                )
        if naked:
            yield _finding(
                context,
                "RPL017",
                node,
                "naked span: the call builds a context manager and records "
                "nothing until entered — wrap it in `with ...:`",
            )


# ----------------------------------------------------------------------
# RPL018 — no arena escape
# ----------------------------------------------------------------------
# Arena slabs (PR 9's episode-scoped allocator, :mod:`repro.nn.arena`)
# are only valid until the owning plan's next ``Arena.begin()``: every
# replay overwrites them in place.  Any reference that outlives the
# replay — returned to a caller, yielded, or stashed on ``self`` or at
# module level — silently changes value on the next step, the exact
# class of aliasing bug the executor's escape analysis (copy-out on
# plan outputs, fresh ``zeros_like`` for gradients) exists to prevent.
# This rule keeps framework code honest: outside the plan machinery
# itself (``repro/nn/executor.py`` and ``repro/nn/arena.py``, which hand
# buffers around by design), ``<arena>.buffer(...)`` results must stay
# function-local.  The runtime cousin is
# :func:`repro.nn.arena.is_arena_backed`, which escape tests assert on.
_RPL018_EXEMPT_PATHS = ("repro/nn/executor.py", "repro/nn/arena.py")


def _rpl018_is_buffer_call(node: ast.AST) -> bool:
    """``<receiver>.buffer(...)`` where the receiver names an arena."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "buffer":
        return False
    dotted = _dotted(func.value)
    return dotted is not None and "arena" in dotted.lower()


@rule(
    "RPL018",
    "no-arena-escape",
    "arena slab references must not outlive one plan replay: "
    "`<arena>.buffer(...)` results are overwritten by the next "
    "`Arena.begin()`, so returning, yielding or stashing them on "
    "self/module state aliases dead data — copy out instead "
    "(plan machinery in repro.nn.executor/arena is exempt)",
)
def check_arena_escape(context: ModuleContext) -> Iterator[Finding]:
    if context.is_test or context.path_matches(_RPL018_EXEMPT_PATHS):
        return

    def scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk one function body without descending into nested defs
        (each nested function is visited as its own scope)."""
        for child in ast.iter_child_nodes(scope):
            yield child
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from scope_nodes(child)

    def visit(scope: ast.AST) -> Iterator[Finding]:
        #: function-local names bound (directly) to an arena buffer.
        tainted: Set[str] = set()

        def value_is_arena(value: ast.AST) -> bool:
            if _rpl018_is_buffer_call(value):
                return True
            return isinstance(value, ast.Name) and value.id in tainted

        for node in scope_nodes(scope):
            if isinstance(node, ast.Assign):
                if value_is_arena(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tainted.add(target.id)
                        elif isinstance(target, ast.Attribute):
                            yield _finding(
                                context,
                                "RPL018",
                                node,
                                "arena escape: slab reference stored on an "
                                "attribute outlives the replay that filled "
                                "it — copy the array out instead",
                            )
            elif isinstance(node, ast.Return) and node.value is not None:
                if value_is_arena(node.value):
                    yield _finding(
                        context,
                        "RPL018",
                        node,
                        "arena escape: returning a slab reference hands the "
                        "caller memory the next Arena.begin() invalidates — "
                        "return a copy",
                    )
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None and value_is_arena(value):
                    yield _finding(
                        context,
                        "RPL018",
                        node,
                        "arena escape: yielding a slab reference lets it "
                        "cross a replay boundary — yield a copy",
                    )

    for node in ast.walk(context.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from visit(node)
    # Module-level bindings of arena buffers escape by construction.
    for node in context.tree.body:
        if isinstance(node, ast.Assign) and _rpl018_is_buffer_call(node.value):
            yield _finding(
                context,
                "RPL018",
                node,
                "arena escape: module-level slab reference is stale after "
                "every replay — copy the array out instead",
            )
