"""`python -m repro lint` — the reprolint command-line front end.

Exit codes: 0 (clean), 1 (findings), 2 (usage/IO error).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .cache import DEFAULT_CACHE_DIR, LintCache
from .engine import (
    DEFAULT_EXCLUDED_DIRS,
    _selected_rules,
    iter_python_files,
    lint_source,
)
from .findings import Finding
from .program import PROGRAM_RULES, analyze_files, program_rule_table
from .reporters import render_json, render_sarif, render_text
from .rules import RULES, rule_table

__all__ = ["build_parser", "main"]

DEFAULT_PATHS = ("src", "tests")


def build_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    """The lint argument parser (embeddable as a ``repro`` subcommand)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="python -m repro lint",
            description="reprolint: enforce the reproduction's correctness invariants",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        "--output",
        dest="format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (json is what CI consumes; sarif feeds code scanning)",
    )
    parser.add_argument(
        "--sarif",
        action="store_true",
        help="shorthand for --format sarif",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help=(
            "also run the whole-program pass (RPL013-RPL016: cross-module "
            "call graph, lock-order cycles, RNG provenance, fork "
            "reachability, blocking-under-lock)"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--exclude-dir",
        action="append",
        default=None,
        metavar="NAME",
        help=f"directory names to skip (default: {', '.join(DEFAULT_EXCLUDED_DIRS)})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"bypass the content-addressed cache under {DEFAULT_CACHE_DIR}/",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (per-file + whole-program) and exit",
    )
    return parser


def _split_codes(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [code.strip().upper() for code in value.split(",") if code.strip()]


def _validate_codes(codes: Optional[List[str]]) -> None:
    if not codes:
        return
    known = set(RULES) | set(PROGRAM_RULES)
    unknown = set(codes) - known
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}")


def _engine_codes(codes: Optional[List[str]], registry) -> Optional[List[str]]:
    """Restrict a validated code list to the codes one engine owns."""
    if codes is None:
        return None
    return [code for code in codes if code in registry]


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation."""
    if args.list_rules:
        for code, name, description in rule_table() + program_rule_table():
            print(f"{code}  {name:24s} {description}")
        return 0
    excluded = (
        tuple(args.exclude_dir) if args.exclude_dir else DEFAULT_EXCLUDED_DIRS
    )
    output = "sarif" if getattr(args, "sarif", False) else args.format
    cache = None if args.no_cache else LintCache(args.cache_dir)
    try:
        select = _split_codes(args.select)
        ignore = _split_codes(args.ignore)
        _validate_codes(select)
        _validate_codes(ignore)
        findings: List[Finding] = []
        files = []
        for path in iter_python_files(args.paths, excluded_dirs=excluded):
            with open(path, "r", encoding="utf-8") as handle:
                files.append((path, handle.read()))
        file_select = _engine_codes(select, RULES)
        file_ignore = _engine_codes(ignore, RULES)
        if file_select is None or file_select:
            per_file_codes = _selected_rules(file_select, file_ignore)
            for path, source in files:
                if cache is not None:
                    key = cache.file_key(path, source, per_file_codes)
                    cached = cache.get(key)
                    if cached is not None:
                        findings.extend(cached)
                        continue
                file_findings = lint_source(
                    source, path, select=file_select, ignore=file_ignore
                )
                if cache is not None:
                    cache.put(key, file_findings)
                findings.extend(file_findings)
        if args.program:
            prog_select = _engine_codes(select, PROGRAM_RULES)
            prog_ignore = _engine_codes(ignore, PROGRAM_RULES)
            if prog_select is None or prog_select:
                prog_codes = [
                    code
                    for code in sorted(PROGRAM_RULES)
                    if (prog_select is None or code in prog_select)
                    and (not prog_ignore or code not in prog_ignore)
                ]
                prog_findings = None
                if cache is not None:
                    prog_key = cache.program_key(files, prog_codes)
                    prog_findings = cache.get(prog_key)
                if prog_findings is None:
                    prog_findings = analyze_files(
                        files, select=prog_select, ignore=prog_ignore
                    )
                    if cache is not None:
                        cache.put(prog_key, prog_findings)
                findings.extend(prog_findings)
        findings.sort(key=Finding.sort_key)
    except (FileNotFoundError, ValueError) as error:
        print(f"reprolint: error: {error}")
        return 2
    if cache is not None:
        # Stderr so json/sarif stdout stays parseable; CI asserts the
        # warm run misses zero keys (cache *behavior*, not wall time).
        print(
            f"reprolint: cache {cache.hits} hit(s), {cache.misses} miss(es)",
            file=sys.stderr,
        )
    if output == "json":
        print(render_json(findings))
    elif output == "sarif":
        print(render_sarif(findings, rules=rule_table() + program_rule_table()))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
