"""`python -m repro lint` — the reprolint command-line front end.

Exit codes: 0 (clean), 1 (findings), 2 (usage/IO error).
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from .engine import DEFAULT_EXCLUDED_DIRS, lint_paths
from .reporters import render_json, render_text
from .rules import rule_table

__all__ = ["build_parser", "main"]

DEFAULT_PATHS = ("src", "tests")


def build_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    """The lint argument parser (embeddable as a ``repro`` subcommand)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="python -m repro lint",
            description="reprolint: enforce the reproduction's correctness invariants",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is what CI consumes)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--exclude-dir",
        action="append",
        default=None,
        metavar="NAME",
        help=f"directory names to skip (default: {', '.join(DEFAULT_EXCLUDED_DIRS)})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _split_codes(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [code.strip().upper() for code in value.split(",") if code.strip()]


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation."""
    if args.list_rules:
        for code, name, description in rule_table():
            print(f"{code}  {name:24s} {description}")
        return 0
    excluded = (
        tuple(args.exclude_dir) if args.exclude_dir else DEFAULT_EXCLUDED_DIRS
    )
    try:
        findings = lint_paths(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            excluded_dirs=excluded,
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"reprolint: error: {error}")
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
