"""RNG provenance (RPL014) and fork-reachability (RPL015) rules.

**RPL014** — every ``np.random.default_rng`` / ``Generator`` construction
in distributed code must derive its seed from a sanctioned root: a
function parameter (which includes ``self`` — the chief's mirrors and
``WorkerSpec`` fields arrive that way) or a ``SeedSequence`` chain rooted
in one.  A constant seed is allowed only for the *seed-then-restore*
idiom (``rng = default_rng(0); rng.bit_generator.state = <param>``, how
``serve_employee`` adopts the chief's authoritative state); anything
seeded from a module global, or left unseeded, is an unsanctioned origin
that can desynchronise the bitwise-equivalence contract.  Restoring
``bit_generator.state`` from a constant or module global is flagged for
the same reason.

**RPL015** — RPL011 checked the worker entrypoint function itself; this
rule extends the checks over everything *transitively reachable* from
``_employee_worker_main`` / ``run_remote_worker`` in the call graph:

* no ``global`` rebinding or writes through in-program module attributes
  (forked state must flow through ``WorkerSpec``, not module globals);
* no acquisition of module-level locks (a lock inherited through
  ``fork`` may be held forever by a thread that does not exist in the
  child);
* no thread spawns before the fork-side re-init call (functions named
  ``*reset_after_fork*`` *are* the sanctioned re-init and are exempt
  from the write checks).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import (
    FunctionInfo,
    ProgramIndex,
    _FunctionScope,
    _dotted,
)
from .findings import Finding
from .lockflow import _resolve_lock
from .program import ProgramContext, program_rule

__all__ = ["fork_reachable", "seed_taint"]

# Modules whose functions are in RPL014 scope (plus anything the worker
# entrypoints reach).
_DISTRIBUTED_PREFIXES = ("repro.distributed",)

# Worker entrypoints: the roots of the fork-reachable closure.
_ENTRYPOINT_NAMES = ("_employee_worker_main", "run_remote_worker")

# Functions that ARE the sanctioned fork-side re-initialisation.
_REINIT_MARKER = "reset_after_fork"

# Taint lattice values for seed expressions.
PARAM = "param"  # derived from a parameter/self/closure of params
CONST = "const"  # a pure literal
GLOBAL = "global"  # touches a module-level variable
UNSEEDED = "unseeded"


def _rng_call_kind(scope: _FunctionScope, call: ast.Call) -> Optional[str]:
    """"default_rng" / "Generator" when the call constructs an RNG."""
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    tail = dotted.rsplit(".", 1)[-1]
    if tail == "default_rng":
        return "default_rng"
    if tail == "Generator" and (
        "random" in dotted or dotted == "Generator"
    ):
        return "Generator"
    return None


def seed_taint(
    scope: _FunctionScope,
    expr: Optional[ast.AST],
    local_taint: Dict[str, Set[str]],
) -> Set[str]:
    """Taint categories of a seed expression.

    Leaves: parameters/locals derived from them -> PARAM, literals ->
    CONST, module-level names -> GLOBAL.  A call's result carries the
    union of its receiver-root and argument taints (``spec.x``,
    ``master.spawn(n)``, ``payload["rng_state"]`` all stay PARAM when
    their roots are parameters).
    """
    if expr is None:
        return {UNSEEDED}
    taints: Set[str] = set()
    for leaf in ast.walk(expr):
        if isinstance(leaf, ast.Name) and isinstance(leaf.ctx, ast.Load):
            name = leaf.id
            if name in local_taint:
                taints |= local_taint[name]
            elif name in scope.info.imports or name in scope.info.functions:
                continue  # imported module / function reference, not state
            elif name in scope.info.module_globals:
                if name.isupper() or name.startswith("_" ) and name[1:].isupper():
                    continue  # module constants are as good as literals
                taints.add(GLOBAL)
            # Unknown bare names (builtins, comprehension internals
            # already seeded into local_taint) contribute nothing.
    if taints:
        return taints
    # No name contributed: a pure literal is CONST (the seed-then-restore
    # gate applies); an opaque expression (e.g. a call on builtins) is
    # treated as sanctioned rather than risk false positives.
    literal = not any(
        isinstance(n, (ast.Name, ast.Call)) for n in ast.walk(expr)
    )
    return {CONST} if literal else {PARAM}


def _function_taint(scope: _FunctionScope) -> Dict[str, Set[str]]:
    """Forward pass binding local names to taint sets."""
    local: Dict[str, Set[str]] = {}
    args = scope.fn.node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        local[arg.arg] = {PARAM}

    def bind_target(target: ast.AST, taint: Set[str]) -> None:
        if isinstance(target, ast.Name):
            local[target.id] = set(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind_target(elt, taint)
        elif isinstance(target, ast.Starred):
            bind_target(target.value, taint)

    # Two passes absorb simple use-before-def ordering in loops.
    for _ in range(2):
        for node in ast.walk(scope.fn.node):
            if isinstance(node, ast.Assign):
                taint = seed_taint(scope, node.value, local)
                for target in node.targets:
                    bind_target(target, taint)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                bind_target(
                    node.target, seed_taint(scope, node.value, local)
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                bind_target(node.target, seed_taint(scope, node.iter, local))
            elif isinstance(node, ast.comprehension):
                bind_target(node.target, seed_taint(scope, node.iter, local))
            elif isinstance(node, ast.withitem) and node.optional_vars:
                bind_target(
                    node.optional_vars,
                    seed_taint(scope, node.context_expr, local),
                )
    return local


def _state_restores(fn_node: ast.AST) -> List[Tuple[str, ast.AST, int]]:
    """``<var>.bit_generator.state = <expr>`` assignments in a function."""
    restores: List[Tuple[str, ast.AST, int]] = []
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "state"
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "bit_generator"
        ):
            root = target.value.value
            name = root.id if isinstance(root, ast.Name) else (_dotted(root) or "")
            restores.append((name, node.value, node.lineno))
    return restores


def _in_rpl014_scope(
    context: ProgramContext, fn: FunctionInfo, reachable: Set[str]
) -> bool:
    if context.is_test_module(fn.module):
        return False
    if fn.fqn in reachable:
        return True
    return fn.module.startswith(_DISTRIBUTED_PREFIXES)


@program_rule(
    "RPL014",
    "rng-provenance",
    "distributed-code RNGs must derive from chief mirrors / WorkerSpec seeds",
)
def rpl014_rng_provenance(context: ProgramContext) -> List[Finding]:
    index = context.index
    reachable = set(fork_reachable(index))
    findings: List[Finding] = []
    for fn in index.functions.values():
        if not _in_rpl014_scope(context, fn, reachable):
            continue
        info = index.modules[fn.module]
        scope = _FunctionScope(index, info, fn)
        local_taint = _function_taint(scope)
        restores = _state_restores(fn.node)
        # Map rng-typed locals to their seeding call for the
        # seed-then-restore idiom.
        const_seeded: Dict[str, int] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                kind = _rng_call_kind(scope, node.value)
                if kind and len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    const_seeded[node.targets[0].id] = node.value.lineno
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            kind = _rng_call_kind(scope, node)
            if kind is None:
                continue
            seed_expr = node.args[0] if node.args else None
            if seed_expr is None and node.keywords:
                for kw in node.keywords:
                    if kw.arg in ("seed", "bit_generator"):
                        seed_expr = kw.value
                        break
            taints = seed_taint(scope, seed_expr, local_taint)
            if GLOBAL in taints:
                findings.append(
                    Finding(
                        code="RPL014",
                        rule="rng-provenance",
                        path=info.path,
                        line=node.lineno,
                        message=(
                            f"`{kind}` seeded from a module-level variable: "
                            "worker RNGs must derive from the chief's "
                            "mirrors, WorkerSpec seeds, or parameters"
                        ),
                    )
                )
                continue
            if UNSEEDED in taints:
                findings.append(
                    Finding(
                        code="RPL014",
                        rule="rng-provenance",
                        path=info.path,
                        line=node.lineno,
                        message=(
                            f"unseeded `{kind}` in distributed code draws "
                            "OS entropy and breaks bitwise reproducibility"
                        ),
                    )
                )
                continue
            if taints == {CONST}:
                # Allowed only as seed-then-restore: the bound name must
                # have its bit_generator.state restored from a
                # parameter-derived value in this function.
                bound = None
                for name, lineno in const_seeded.items():
                    if lineno == node.lineno:
                        bound = name
                        break
                restored = any(
                    name == bound
                    and seed_taint(scope, value, local_taint) <= {PARAM}
                    for name, value, _ in restores
                )
                if not restored:
                    findings.append(
                        Finding(
                            code="RPL014",
                            rule="rng-provenance",
                            path=info.path,
                            line=node.lineno,
                            message=(
                                f"constant-seeded `{kind}` without a "
                                "parameter-derived bit_generator.state "
                                "restore: a fixed seed in distributed code "
                                "silently decouples from the chief mirrors"
                            ),
                        )
                    )
        for name, value, lineno in restores:
            taints = seed_taint(scope, value, local_taint)
            if GLOBAL in taints or taints == {CONST}:
                origin = (
                    "a module-level variable" if GLOBAL in taints else "a constant"
                )
                findings.append(
                    Finding(
                        code="RPL014",
                        rule="rng-provenance",
                        path=info.path,
                        line=lineno,
                        message=(
                            f"bit_generator.state restored from {origin}; "
                            "authoritative RNG state must flow in through "
                            "parameters (chief mirrors / WorkerSpec)"
                        ),
                    )
                )
    findings.sort(key=Finding.sort_key)
    return findings


# ----------------------------------------------------------------------
# RPL015 — fork-reachability
# ----------------------------------------------------------------------


def fork_reachable(index: ProgramIndex) -> Dict[str, Tuple[str, ...]]:
    """FQN -> call path for everything the worker entrypoints reach."""
    roots = [
        fqn
        for fqn, fn in index.functions.items()
        if fn.name in _ENTRYPOINT_NAMES
    ]
    return index.reachable(roots)


def _is_reinit(fqn: str) -> bool:
    return _REINIT_MARKER in fqn.rsplit(".", 1)[-1]


def _module_attr_writes(
    scope: _FunctionScope,
) -> List[Tuple[int, str]]:
    """Writes through an imported in-program module: ``mod.attr = x``."""
    writes: List[Tuple[int, str]] = []
    for node in ast.walk(scope.fn.node):
        targets: Sequence[ast.AST] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = (node.target,)
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            dotted = _dotted(target.value)
            if dotted is None:
                continue
            head = dotted.partition(".")[0]
            resolved = scope.info.imports.get(head)
            if resolved and resolved in scope.index.modules:
                writes.append((node.lineno, f"{dotted}.{target.attr}"))
    return writes


@program_rule(
    "RPL015",
    "fork-reachability",
    "fork-side invariants over the worker entrypoints' transitive closure",
)
def rpl015_fork_reachability(context: ProgramContext) -> List[Finding]:
    index = context.index
    reachable = fork_reachable(index)
    findings: List[Finding] = []
    for fqn, call_path in sorted(reachable.items()):
        fn = index.functions[fqn]
        if _is_reinit(fqn):
            continue
        info = index.modules[fn.module]
        scope = _FunctionScope(index, info, fn)
        via = " -> ".join(p.rsplit(".", 1)[-1] for p in call_path)
        # (a) ``global`` rebinding in fork-reachable code.
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                findings.append(
                    Finding(
                        code="RPL015",
                        rule="fork-reachability",
                        path=info.path,
                        line=node.lineno,
                        message=(
                            f"`global {', '.join(node.names)}` in fork-"
                            f"reachable code (via {via}): forked workers "
                            "must receive state through WorkerSpec, not "
                            "rebind module globals"
                        ),
                    )
                )
        # (b) writes through in-program module attributes.
        for lineno, target in _module_attr_writes(scope):
            findings.append(
                Finding(
                    code="RPL015",
                    rule="fork-reachability",
                    path=info.path,
                    line=lineno,
                    message=(
                        f"write to module attribute `{target}` in fork-"
                        f"reachable code (via {via}): mutable module state "
                        "diverges between chief and forked workers"
                    ),
                )
            )
        # (c) module-level lock acquisition (inherited across fork).
        for node in ast.walk(fn.node):
            expr: Optional[ast.AST] = None
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    lock = _resolve_lock(scope, item.context_expr)
                    if lock is not None and lock.owner in index.modules:
                        findings.append(
                            Finding(
                                code="RPL015",
                                rule="fork-reachability",
                                path=info.path,
                                line=node.lineno,
                                message=(
                                    f"module-level lock `{lock.render()}` "
                                    f"acquired in fork-reachable code (via "
                                    f"{via}): a lock inherited through fork "
                                    "may be held by a thread that no longer "
                                    "exists"
                                ),
                            )
                        )
    # (d) thread spawns before the fork-side re-init: walk each
    # entrypoint's body in order; calls before the first *reset_after_
    # fork* call must not (transitively) construct threads.
    for fqn in sorted(reachable):
        fn = index.functions[fqn]
        # Only *fork* entrypoints need a re-init-before-threads check;
        # run_remote_worker starts in a fresh process with nothing
        # inherited, so its endpoint may spawn its heartbeat immediately.
        if not fn.name.endswith("_worker_main"):
            continue
        info = index.modules[fn.module]
        scope = _FunctionScope(index, info, fn)
        pre_reinit: List[str] = []
        reinit_seen = False
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            targets = scope.resolve_call(node)
            if any(_is_reinit(t.fqn) for t in targets):
                reinit_seen = True
                reinit_line = node.lineno
                break
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if reinit_seen and node.lineno >= reinit_line:
                continue
            spawn_line = _spawns_thread(index, scope, node, depth=3)
            if spawn_line is not None:
                findings.append(
                    Finding(
                        code="RPL015",
                        rule="fork-reachability",
                        path=info.path,
                        line=node.lineno,
                        message=(
                            "thread spawned before the fork-side re-init "
                            f"(reset_after_fork) in `{fn.name}`: inherited "
                            "lock/trace state is still live at this point"
                        ),
                    )
                )
    unique = {f.sort_key(): f for f in findings}
    return sorted(unique.values(), key=Finding.sort_key)


def _spawns_thread(
    index: ProgramIndex, scope: _FunctionScope, call: ast.Call, depth: int
) -> Optional[int]:
    """Does this call (transitively, to ``depth``) construct a Thread?"""
    dotted = _dotted(call.func)
    if dotted:
        head, _, rest = dotted.partition(".")
        target = scope.info.imports.get(head)
        full = f"{target}.{rest}" if (target and rest) else (target or dotted)
        if full == "threading.Thread" or dotted == "threading.Thread":
            return call.lineno
    if depth <= 0:
        return None
    for callee in scope.resolve_call(call):
        sub_scope = _FunctionScope(index, index.modules[callee.module], callee)
        for node in ast.walk(callee.node):
            if isinstance(node, ast.Call):
                hit = _spawns_thread(index, sub_scope, node, depth - 1)
                if hit is not None:
                    return hit
    return None
