"""Cross-module symbol table and conservative call graph (stdlib ``ast``).

This is the substrate for the whole-program rules in
:mod:`repro.analysis.program`: it parses every module once, resolves
imports (``import a.b``, ``as`` aliases, ``from x import y as z``, star
and relative imports), builds the class hierarchy, and then resolves
call sites into a call graph.

Resolution is deliberately **conservative-incomplete**: an edge is only
added when the callee can be pinned to a concrete in-program function —
``self.``/``cls.`` dispatch (plus every subclass override, so virtual
dispatch over-approximates), locals typed by construction or annotation,
attribute types recorded from ``__init__`` assignments/annotations, and
module-qualified names.  Calls through untyped parameters or computed
expressions produce *no* edge rather than a wildcard match; the rules
built on top treat a missing edge as "unknown", never as "safe because
unseen".  See DESIGN § 6g for the tradeoff discussion.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramIndex",
    "build_program_index",
    "module_name_for_path",
]

# Lock-ish factories recognised for attribute/global lock typing.  The
# value is the lock *kind*: Condition wraps an RLock, so both reenter.
LOCK_FACTORIES = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "threading.Condition": "Condition",
    "multiprocessing.Lock": "Lock",
    "multiprocessing.RLock": "RLock",
}


def module_name_for_path(path: str) -> str:
    """Dotted module name by walking up the ``__init__.py`` chain.

    ``src/repro/distributed/trainer.py`` -> ``repro.distributed.trainer``;
    a file outside any package keeps its bare stem.
    """
    path = os.path.normpath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts = [stem] if stem != "__init__" else []
    while directory and os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.insert(0, pkg)
    return ".".join(parts) if parts else stem


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # module-relative, e.g. "f" or "Cls.m"
    module: str  # dotted module name
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    cls: Optional[str] = None  # owning class name (module-relative)
    decorators: Tuple[str, ...] = ()

    @property
    def fqn(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class ClassInfo:
    """One class definition with resolved in-program bases."""

    name: str  # module-relative name
    module: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  # FQNs of in-program bases
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    # self.<attr> types recorded from __init__ assignments/annotations;
    # values are class FQNs.
    attr_types: Dict[str, str] = field(default_factory=dict)
    # self.<attr> = threading.Lock()/RLock()/Condition() sites: attr -> kind
    attr_locks: Dict[str, str] = field(default_factory=dict)

    @property
    def fqn(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """One parsed module and its import environment."""

    name: str
    path: str
    source: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)  # alias -> dotted target
    star_imports: List[str] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)  # x = f  (module level)
    module_locks: Dict[str, str] = field(default_factory=dict)  # global lock: name -> kind
    module_globals: Set[str] = field(default_factory=set)  # module-level assigned names


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge origin."""

    callee: str  # FQN of the resolved in-program function
    lineno: int
    via: str = ""  # what the source spelled, for diagnostics


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chain to a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Extract ``Cls`` from ``Cls`` / ``"Cls"`` / ``Optional[Cls]`` annotations."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = _dotted(node.value)
        if head and head.rsplit(".", 1)[-1] in ("Optional", "Union"):
            inner = node.slice
            if isinstance(inner, ast.Tuple):
                elts = [e for e in inner.elts if not _is_none(e)]
                if len(elts) == 1:
                    return _annotation_name(elts[0])
                return None
            return _annotation_name(inner)
        return None
    return _dotted(node)


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class ProgramIndex:
    """The whole-program symbol table + call graph."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.subclasses: Dict[str, List[str]] = {}
        self.edges: Dict[str, List[CallSite]] = {}

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve(self, module: str, dotted: str, _depth: int = 0) -> Optional[str]:
        """Resolve a (possibly dotted) name used in ``module`` to an FQN.

        Returns the FQN of an in-program module, class, or function, or
        None for builtins/external libraries/unresolvable names.
        """
        if _depth > 16:  # alias cycle guard
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        # Locally-defined symbol?
        for local in (info.functions, info.classes):
            if dotted in local:
                return f"{module}.{dotted}"
        if head in info.classes and rest:
            # Nested attr on a class (e.g. ClassName.method)
            return self._canonical(f"{module}.{dotted}")
        if head in info.aliases:
            target = info.aliases[head]
            resolved = self.resolve(module, target, _depth + 1)
            if resolved is None:
                return None
            return self._canonical(f"{resolved}.{rest}" if rest else resolved)
        if head in info.imports:
            target = info.imports[head]
            full = f"{target}.{rest}" if rest else target
            return self._canonical(full)
        for star in info.star_imports:
            star_mod = self.modules.get(star)
            if star_mod is None:
                continue
            if head in star_mod.functions or head in star_mod.classes:
                return self._canonical(f"{star}.{dotted}")
            if head in star_mod.aliases:
                return self.resolve(star, dotted, _depth + 1)
        # A fully-qualified spelling of an in-program symbol.
        return self._canonical(dotted) if dotted != head or head in self.modules else None

    def _canonical(self, fqn: str) -> Optional[str]:
        """Map a dotted path onto an indexed module/class/function FQN."""
        if fqn in self.functions or fqn in self.classes or fqn in self.modules:
            return fqn
        # Longest module prefix, then navigate the remainder.
        parts = fqn.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            info = self.modules.get(mod)
            if info is None:
                continue
            rest = ".".join(parts[cut:])
            if rest in info.functions or rest in info.classes:
                return f"{mod}.{rest}"
            head, _, tail = rest.partition(".")
            if head in info.aliases:
                resolved = self.resolve(mod, rest)
                if resolved:
                    return resolved
            if head in info.imports and tail:
                # Symbol re-exported through a package __init__.
                return self._canonical(f"{info.imports[head]}.{tail}")
            if head in info.imports and not tail:
                return self._canonical(info.imports[head])
            if rest in info.module_globals:
                # Module-level data (locks, seeds, registries) is a
                # legitimate resolution target for the flow rules.  Must
                # come after the alias checks: ``handler = helper`` puts
                # the name in both tables and the callable wins.
                return f"{mod}.{rest}"
            return None
        return None

    # ------------------------------------------------------------------
    # Class hierarchy helpers
    # ------------------------------------------------------------------
    def mro_method(self, class_fqn: str, method: str) -> Optional[FunctionInfo]:
        """Find ``method`` on the class or its in-program bases (DFS)."""
        seen: Set[str] = set()
        stack = [class_fqn]
        while stack:
            fqn = stack.pop(0)
            if fqn in seen:
                continue
            seen.add(fqn)
            cls = self.classes.get(fqn)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            stack.extend(cls.bases)
        return None

    def dispatch_targets(self, class_fqn: str, method: str) -> List[FunctionInfo]:
        """Conservative virtual dispatch: the MRO hit plus every subclass
        override, so a call through a base-typed receiver reaches all
        in-program implementations."""
        targets: List[FunctionInfo] = []
        base = self.mro_method(class_fqn, method)
        if base is not None:
            targets.append(base)
        stack = list(self.subclasses.get(class_fqn, ()))
        seen: Set[str] = set()
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            cls = self.classes.get(sub)
            if cls is not None and method in cls.methods:
                targets.append(cls.methods[method])
            stack.extend(self.subclasses.get(sub, ()))
        unique: Dict[str, FunctionInfo] = {t.fqn: t for t in targets}
        return list(unique.values())

    def attr_lock_owners(self, attr: str) -> List[ClassInfo]:
        """Every class declaring ``self.<attr> = Lock()``-style state."""
        return [
            cls
            for cls in self.classes.values()
            if attr in cls.attr_locks
        ]

    def callees(self, fqn: str) -> List[CallSite]:
        return self.edges.get(fqn, [])

    def reachable(self, roots: Iterable[str]) -> Dict[str, Tuple[str, ...]]:
        """BFS closure over call edges: FQN -> shortest call path from a root."""
        paths: Dict[str, Tuple[str, ...]] = {}
        queue: List[str] = []
        for root in roots:
            if root in self.functions and root not in paths:
                paths[root] = (root,)
                queue.append(root)
        while queue:
            fqn = queue.pop(0)
            for site in self.edges.get(fqn, ()):
                if site.callee not in paths:
                    paths[site.callee] = paths[fqn] + (site.callee,)
                    queue.append(site.callee)
        return paths


# ----------------------------------------------------------------------
# Index construction
# ----------------------------------------------------------------------


def build_program_index(
    files: Sequence[Tuple[str, str]],
) -> ProgramIndex:
    """Build the index from ``(path, source)`` pairs.

    Files that fail to parse are skipped here — the per-file engine
    already reports RPL000 for them.
    """
    index = ProgramIndex()
    for path, source in files:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        name = module_name_for_path(path)
        info = ModuleInfo(name=name, path=path, source=source, tree=tree)
        _collect_imports(info)
        _collect_symbols(info)
        index.modules[name] = info
    for info in index.modules.values():
        for fn in info.functions.values():
            index.functions[fn.fqn] = fn
        for cls in info.classes.values():
            index.classes[cls.fqn] = cls
            for method in cls.methods.values():
                index.functions[method.fqn] = method
    _resolve_bases(index)
    _collect_attr_types(index)
    _build_edges(index)
    return index


def _collect_imports(info: ModuleInfo) -> None:
    package = info.name.rsplit(".", 1)[0] if "." in info.name else ""
    if info.path.endswith("__init__.py"):
        package = info.name
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.imports[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; dotted uses resolve
                    # through _canonical's longest-prefix walk.
                    top = alias.name.partition(".")[0]
                    info.imports.setdefault(top, top)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = package.split(".") if package else []
                if node.level > 1:
                    parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(parts + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    if base:
                        info.star_imports.append(base)
                    continue
                bound = alias.asname or alias.name
                info.imports[bound] = f"{base}.{alias.name}" if base else alias.name


def _decorator_names(node) -> Tuple[str, ...]:
    names = []
    for dec in getattr(node, "decorator_list", ()):
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted(target)
        if dotted:
            names.append(dotted)
    return tuple(names)


def _collect_symbols(info: ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                qualname=node.name,
                module=info.name,
                node=node,
                decorators=_decorator_names(node),
            )
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(name=node.name, module=info.name, node=node)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = FunctionInfo(
                        qualname=f"{node.name}.{item.name}",
                        module=info.name,
                        node=item,
                        cls=node.name,
                        decorators=_decorator_names(item),
                    )
            info.classes[node.name] = cls
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            info.module_globals.add(target.id)
            value = node.value
            if isinstance(value, ast.Name):
                info.aliases[target.id] = value.id
            elif isinstance(value, ast.Attribute):
                dotted = _dotted(value)
                if dotted:
                    info.aliases[target.id] = dotted
            elif isinstance(value, ast.Call):
                kind = _lock_kind(info, value)
                if kind:
                    info.module_locks[target.id] = kind
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            info.module_globals.add(node.target.id)


def _lock_kind(info: ModuleInfo, call: ast.Call) -> Optional[str]:
    """Is this call a ``Lock()``/``RLock()``/``Condition()`` construction?"""
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    target = info.imports.get(head)
    full = f"{target}.{rest}" if (target and rest) else (target or dotted)
    if full in LOCK_FACTORIES:
        return LOCK_FACTORIES[full]
    return LOCK_FACTORIES.get(dotted)


def _resolve_bases(index: ProgramIndex) -> None:
    for info in index.modules.values():
        for cls in info.classes.values():
            for base in cls.node.bases:
                dotted = _dotted(base)
                if dotted is None:
                    continue
                resolved = index.resolve(info.name, dotted)
                if resolved in index.classes:
                    cls.bases.append(resolved)
                    index.subclasses.setdefault(resolved, []).append(cls.fqn)


def _collect_attr_types(index: ProgramIndex) -> None:
    """Record ``self.<attr>`` types/locks from ``__init__`` bodies.

    Three sources, in priority order: explicit annotation, construction
    (``self.x = Cls(...)`` / lock factory), and parameter passthrough
    (``self.x = x`` where ``x`` is an annotated ``__init__`` parameter).
    """
    for cls in index.classes.values():
        init = cls.methods.get("__init__")
        if init is None:
            continue
        info = index.modules[cls.module]
        param_types = _param_types(index, info, init.node)
        for node in ast.walk(init.node):
            target = None
            value = None
            annotation = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.target is not None:
                target, value, annotation = node.target, node.value, node.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            if isinstance(value, ast.Call):
                kind = _lock_kind(info, value)
                if kind:
                    cls.attr_locks[attr] = kind
                    continue
                dotted = _dotted(value.func)
                resolved = index.resolve(info.name, dotted) if dotted else None
                if resolved in index.classes:
                    cls.attr_types.setdefault(attr, resolved)
            ann_name = _annotation_name(annotation)
            if ann_name:
                resolved = index.resolve(info.name, ann_name)
                if resolved in index.classes:
                    cls.attr_types[attr] = resolved
                    continue
            if isinstance(value, ast.Name) and value.id in param_types:
                cls.attr_types.setdefault(attr, param_types[value.id])


def _param_types(
    index: ProgramIndex, info: ModuleInfo, node
) -> Dict[str, str]:
    """Annotated parameter names -> in-program class FQNs."""
    types: Dict[str, str] = {}
    args = node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        name = _annotation_name(arg.annotation)
        if name is None:
            continue
        resolved = index.resolve(info.name, name)
        if resolved in index.classes:
            types[arg.arg] = resolved
    return types


# ----------------------------------------------------------------------
# Call-edge construction
# ----------------------------------------------------------------------


class _FunctionScope:
    """Per-function local environment for receiver typing."""

    def __init__(self, index: ProgramIndex, info: ModuleInfo, fn: FunctionInfo):
        self.index = index
        self.info = info
        self.fn = fn
        self.local_types: Dict[str, str] = {}  # var -> class FQN
        self.local_funcs: Dict[str, str] = {}  # var -> function FQN
        self._prescan()

    def _prescan(self) -> None:
        index, info = self.index, self.info
        self.local_types.update(_param_types(index, info, self.fn.node))
        if self.fn.cls is not None:
            self.local_types["self"] = f"{info.name}.{self.fn.cls}"
            self.local_types["cls"] = f"{info.name}.{self.fn.cls}"
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(value, ast.Call):
                    dotted = _dotted(value.func)
                    resolved = index.resolve(info.name, dotted) if dotted else None
                    if resolved in index.classes:
                        self.local_types.setdefault(target.id, resolved)
                elif isinstance(value, (ast.Name, ast.Attribute)):
                    dotted = _dotted(value)
                    resolved = index.resolve(info.name, dotted) if dotted else None
                    if resolved in index.functions:
                        self.local_funcs[target.id] = resolved
                    elif resolved in index.classes:
                        # Class aliased into a local: calls construct it.
                        self.local_funcs.setdefault(target.id, resolved)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                name = _annotation_name(node.annotation)
                resolved = index.resolve(info.name, name) if name else None
                if resolved in index.classes:
                    self.local_types[node.target.id] = resolved

    def type_of(self, node: ast.AST) -> Optional[str]:
        """Class FQN of an expression, where inferable."""
        if isinstance(node, ast.Name):
            return self.local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.type_of(node.value)
            if base is not None:
                cls = self.index.classes.get(base)
                while cls is not None:
                    if node.attr in cls.attr_types:
                        return cls.attr_types[node.attr]
                    cls = (
                        self.index.classes.get(cls.bases[0]) if cls.bases else None
                    )
            return None
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            resolved = (
                self.index.resolve(self.info.name, dotted) if dotted else None
            )
            if resolved in self.index.classes:
                return resolved
        return None

    def resolve_call(self, call: ast.Call) -> List[FunctionInfo]:
        """All in-program functions this call may invoke (conservative)."""
        index, info = self.index, self.info
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_funcs:
                return self._expand(self.local_funcs[name])
            resolved = index.resolve(info.name, name)
            return self._expand(resolved) if resolved else []
        if isinstance(func, ast.Attribute):
            receiver_type = self.type_of(func.value)
            if receiver_type is not None:
                if isinstance(func.value, ast.Name) and func.value.id in (
                    "self",
                    "cls",
                ):
                    # Exact class known: MRO hit + subclass overrides
                    # (a base method may run against a subclass self).
                    return index.dispatch_targets(receiver_type, func.attr)
                return index.dispatch_targets(receiver_type, func.attr)
            dotted = _dotted(func)
            if dotted:
                resolved = index.resolve(info.name, dotted)
                if resolved:
                    return self._expand(resolved)
            return []
        return []

    def _expand(self, fqn: Optional[str]) -> List[FunctionInfo]:
        if fqn is None:
            return []
        if fqn in self.index.functions:
            return [self.index.functions[fqn]]
        if fqn in self.index.classes:
            init = self.index.mro_method(fqn, "__init__")
            return [init] if init is not None else []
        return []


def _build_edges(index: ProgramIndex) -> None:
    for fn in list(index.functions.values()):
        info = index.modules[fn.module]
        scope = _FunctionScope(index, info, fn)
        sites: List[CallSite] = []
        seen: Set[Tuple[str, int]] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            for target in scope.resolve_call(node):
                key = (target.fqn, node.lineno)
                if key in seen:
                    continue
                seen.add(key)
                sites.append(
                    CallSite(
                        callee=target.fqn,
                        lineno=node.lineno,
                        via=_dotted(node.func) or "<expr>",
                    )
                )
        if sites:
            index.edges[fn.fqn] = sites
