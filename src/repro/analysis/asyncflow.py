"""RPL019: no blocking calls on the event loop in serving code.

The inference server (:mod:`repro.serve`) is a single asyncio event
loop; one blocking call inside any ``async def`` stalls every connected
client at once — batches stop coalescing, heartbeats stop answering, and
p99 latency inherits the blocked call's duration.  The fix is always the
same: off-load to an executor (``loop.run_in_executor(...)``), which
passes the blocking callable *as an argument* and therefore never
appears as a call edge here.

The rule is scoped to modules with ``serve`` as a path component and
reports, for every ``async def`` in scope:

* **direct** blocking primitives — ``time.sleep``, sync socket/pipe
  ``recv``/``accept``/``sendall``, ``subprocess.run``-family, blocking
  ``queue.get()`` waits (the un-offloaded slab/pipe idiom), and
* **transitive** ones — a blocking primitive reached through any chain
  of resolved *synchronous* callees (a sync helper runs inline on the
  loop; calling an async helper is its own finding in that helper).

``await``-ed calls are exempt from the primitive vocabulary — awaiting
is precisely the non-blocking way to wait (``reader.read`` on an asyncio
stream shares a name with ``socket.recv``'s blocking cousin) — but their
synchronous callees are still walked: ``await helper()`` runs ``helper``
on the loop up to its first suspension point.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import ProgramIndex, _FunctionScope, _dotted
from .findings import Finding
from .lockflow import _blocking_desc, _step
from .program import ProgramContext, program_rule

__all__ = ["collect_async_events", "event_loop_blockers"]

# Beyond the lockflow socket/sleep vocabulary: process spawns that wait
# for the child, and connection setup.
_SUBPROCESS_DOTTED = {
    "subprocess.run": "subprocess.run",
    "subprocess.call": "subprocess.call",
    "subprocess.check_call": "subprocess.check_call",
    "subprocess.check_output": "subprocess.check_output",
    "socket.create_connection": "socket.create_connection",
}


def _async_blocking_desc(scope: _FunctionScope, call: ast.Call) -> Optional[str]:
    """Describe ``call`` if it blocks the calling thread."""
    desc = _blocking_desc(scope, call)
    if desc is not None:
        return desc
    dotted = _dotted(call.func)
    if dotted:
        resolved = None
        head, _, rest = dotted.partition(".")
        target = scope.info.imports.get(head)
        if target:
            resolved = f"{target}.{rest}" if rest else target
        for candidate in (resolved, dotted):
            if candidate in _SUBPROCESS_DOTTED:
                return _SUBPROCESS_DOTTED[candidate]
    if isinstance(call.func, ast.Attribute) and call.func.attr == "get":
        # Zero-positional-arg ``.get()`` is the queue/pipe wait idiom
        # (``free.get()``, ``q.get(timeout=...)``); ``dict.get`` always
        # takes a positional key, so it never matches.
        if not call.args:
            names = {kw.arg for kw in call.keywords}
            if not call.keywords or names & {"timeout", "block"}:
                return "blocking queue get"
    return None


@dataclass(frozen=True)
class _AsyncEvent:
    kind: str  # "block" | "call"
    lineno: int
    desc: str = ""  # for "block"
    callee: str = ""  # for "call" (FQN of a resolved *sync* function)


def _scan(scope: _FunctionScope) -> List[_AsyncEvent]:
    """Blocking primitives and sync call edges in one function body."""
    awaited: Set[int] = set()
    calls: List[ast.Call] = []
    stack: List[ast.AST] = list(scope.fn.node.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue  # deferred bodies run elsewhere (and are indexed)
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            awaited.add(id(node.value))
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    events: List[_AsyncEvent] = []
    for call in calls:
        if id(call) not in awaited:
            desc = _async_blocking_desc(scope, call)
            if desc is not None:
                events.append(_AsyncEvent("block", call.lineno, desc=desc))
        for target in scope.resolve_call(call):
            if isinstance(target.node, ast.AsyncFunctionDef):
                # An async callee suspends instead of blocking; anything
                # blocking *inside* it is that function's own finding.
                continue
            events.append(_AsyncEvent("call", call.lineno, callee=target.fqn))
    events.sort(key=lambda ev: ev.lineno)
    return events


def collect_async_events(index: ProgramIndex) -> Dict[str, List[_AsyncEvent]]:
    return {
        fn.fqn: _scan(_FunctionScope(index, index.modules[fn.module], fn))
        for fn in index.functions.values()
    }


def event_loop_blockers(
    index: ProgramIndex,
) -> Dict[str, List[Tuple[int, str, Tuple[str, ...]]]]:
    """``async-def FQN -> [(lineno, desc, path)]`` over the whole program.

    Facts seed at direct blocking primitives and propagate caller-ward
    through resolved synchronous call edges (path-carrying fixpoint, the
    lockflow idiom); the returned map is restricted to ``async def``
    functions — sync functions merely transport facts.
    """
    events = collect_async_events(index)
    facts: Dict[str, Dict[str, Tuple[str, ...]]] = {fqn: {} for fqn in events}
    for fqn, evs in events.items():
        for ev in evs:
            if ev.kind == "block":
                facts[fqn].setdefault(
                    ev.desc,
                    (_step(index, fqn, ev.lineno, f"blocks in {ev.desc}"),),
                )
    for _ in range(64):
        changed = False
        for fqn, evs in events.items():
            mine = facts[fqn]
            for ev in evs:
                if ev.kind != "call" or ev.callee not in facts:
                    continue
                hop = _step(
                    index, fqn, ev.lineno,
                    f"calls {ev.callee.rsplit('.', 1)[-1]}",
                )
                for desc, path in facts[ev.callee].items():
                    if desc not in mine:
                        mine[desc] = (hop,) + path
                        changed = True
        if not changed:
            break

    blockers: Dict[str, List[Tuple[int, str, Tuple[str, ...]]]] = {}
    for fqn, evs in events.items():
        fn = index.functions[fqn]
        if not isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        found: List[Tuple[int, str, Tuple[str, ...]]] = []
        for ev in evs:
            if ev.kind == "block":
                found.append(
                    (
                        ev.lineno,
                        ev.desc,
                        (_step(index, fqn, ev.lineno, f"blocks in {ev.desc}"),),
                    )
                )
            elif ev.kind == "call":
                for desc, path in facts.get(ev.callee, {}).items():
                    hop = _step(
                        index, fqn, ev.lineno,
                        f"calls {ev.callee.rsplit('.', 1)[-1]}",
                    )
                    found.append((ev.lineno, desc, (hop,) + path))
        if found:
            blockers[fqn] = found
    return blockers


def _in_scope(context: ProgramContext, module: str) -> bool:
    if context.is_test_module(module):
        return False
    path = context.path_of(module).replace("\\", "/")
    return "serve" in path.split("/")


@program_rule(
    "RPL019",
    "no-event-loop-blocking",
    "blocking calls (sleep/socket/pipe/subprocess/queue) inside async def "
    "bodies in serving code",
)
def rpl019_no_event_loop_blocking(context: ProgramContext) -> List[Finding]:
    index = context.index
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for fqn, blocks in sorted(event_loop_blockers(index).items()):
        fn = index.functions[fqn]
        if not _in_scope(context, fn.module):
            continue
        module_path = index.modules[fn.module].path
        for lineno, desc, path in blocks:
            key = (module_path, lineno, desc)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                Finding(
                    code="RPL019",
                    rule="no-event-loop-blocking",
                    path=module_path,
                    line=lineno,
                    message=(
                        f"async def {fqn.rsplit('.', 1)[-1]} blocks the event "
                        f"loop in {desc} (off-load via run_in_executor): "
                        + " -> ".join(path)
                    ),
                )
            )
    return findings
