"""The :class:`Finding` record shared by the linter and the sanitizer.

A finding is one concrete violation of a reproduction invariant: the
linter emits them with a file location, the runtime sanitizer with an
op/module provenance instead.  Keeping one record type lets both halves
share the reporters in :mod:`repro.analysis.reporters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    code:
        The rule code (``RPL001`` … ``RPL008``, or ``RPL000`` for files
        the linter could not parse; sanitizer findings use ``SAN0xx``).
    message:
        Human-readable description of the violation.
    path:
        Offending file (empty for runtime findings).
    line / col:
        1-based line and 0-based column of the offending node.
    rule:
        Short rule name (e.g. ``no-global-rng``).
    """

    code: str
    message: str
    path: str = ""
    line: int = 0
    col: int = 0
    rule: str = ""

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (stable key order)."""
        return {
            "code": self.code,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line ``path:line:col: CODE message`` rendering."""
        location = f"{self.path}:{self.line}:{self.col}: " if self.path else ""
        name = f" [{self.rule}]" if self.rule else ""
        return f"{location}{self.code}{name} {self.message}"
