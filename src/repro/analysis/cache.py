"""Incremental lint cache keyed on content SHA-256.

Two kinds of entries under ``.reprolint-cache/``:

* **per-file** — findings of the per-file rules for one file, keyed on
  ``sha256(path, content, rule codes)``.  Sound because per-file rules
  see nothing but the file itself.

Both key kinds are additionally salted with a digest of the analysis
package's own source, so editing a rule (not just an analyzed file)
invalidates the whole cache automatically.
* **program** — findings of the whole-program pass, keyed on the digest
  of *every* ``(path, content sha)`` pair in the analyzed closure plus
  the program rule codes.  Any edit anywhere in the import graph
  changes the digest, so interprocedural results can never go stale —
  at the price of a full re-run on any change (the rules genuinely need
  the whole index, so partial replay would be unsound anyway).

Entries are tiny JSON files named by their key; stale keys are simply
never read again (``prune`` trims the directory opportunistically).
``--no-cache`` on the CLI bypasses all of this.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .findings import Finding

__all__ = ["LintCache", "content_sha"]

DEFAULT_CACHE_DIR = ".reprolint-cache"

# Bump to invalidate every entry when semantics change *outside* the
# analysis package (e.g. the Finding schema).
_CACHE_VERSION = "1"

_MAX_ENTRIES = 4096

_analyzer_salt_memo: Optional[str] = None


def _analyzer_salt() -> str:
    """Digest of the analyzer's own source files.

    A rule edit (a new whitelist entry, a changed matcher) changes the
    findings without changing any *analyzed* file, so analyzed content
    alone is not a sound cache key.  Hashing the analysis package itself
    turns every analyzer change into a whole-cache invalidation.
    """
    global _analyzer_salt_memo
    if _analyzer_salt_memo is None:
        digest = hashlib.sha256()
        pkg_dir = os.path.dirname(os.path.abspath(__file__))
        for name in sorted(os.listdir(pkg_dir)):
            if not name.endswith(".py"):
                continue
            try:
                with open(os.path.join(pkg_dir, name), "rb") as handle:
                    digest.update(name.encode("utf-8"))
                    digest.update(b"\0")
                    digest.update(handle.read())
                    digest.update(b"\0")
            except OSError:
                # An unreadable analyzer file degrades to a different
                # (colder) salt, never to a stale hit.
                digest.update(name.encode("utf-8"))
                digest.update(b"\0unreadable\0")
        _analyzer_salt_memo = digest.hexdigest()
    return _analyzer_salt_memo


def content_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _finding_from_dict(payload: Dict[str, object]) -> Finding:
    return Finding(
        code=str(payload.get("code", "")),
        rule=str(payload.get("rule", "")),
        path=str(payload.get("path", "")),
        line=int(payload.get("line", 0)),
        col=int(payload.get("col", 0)),
        message=str(payload.get("message", "")),
    )


class LintCache:
    """Content-addressed findings store for the lint engines."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def file_key(path: str, source: str, codes: Sequence[str]) -> str:
        digest = hashlib.sha256()
        digest.update(_CACHE_VERSION.encode())
        digest.update(_analyzer_salt().encode())
        digest.update(path.encode("utf-8"))
        digest.update(b"\0")
        digest.update(content_sha(source).encode())
        digest.update(b"\0")
        digest.update(",".join(sorted(codes)).encode())
        return "file-" + digest.hexdigest()

    @staticmethod
    def program_key(
        files: Iterable[Tuple[str, str]], codes: Sequence[str]
    ) -> str:
        """Digest over the whole import closure: any dependency edit
        anywhere produces a new key."""
        digest = hashlib.sha256()
        digest.update(_CACHE_VERSION.encode())
        digest.update(_analyzer_salt().encode())
        for path, source in sorted(files):
            digest.update(path.encode("utf-8"))
            digest.update(b"\0")
            digest.update(content_sha(source).encode())
            digest.update(b"\0")
        digest.update(",".join(sorted(codes)).encode())
        return "program-" + digest.hexdigest()

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    def get(self, key: str) -> Optional[List[Finding]]:
        try:
            with open(self._entry_path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("version") != _CACHE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return [_finding_from_dict(item) for item in payload.get("findings", [])]

    def put(self, key: str, findings: Sequence[Finding]) -> None:
        try:
            os.makedirs(self.root, exist_ok=True)
            tmp = self._entry_path(key) + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "version": _CACHE_VERSION,
                        "findings": [f.to_dict() for f in findings],
                    },
                    handle,
                )
            os.replace(tmp, self._entry_path(key))
        except OSError:
            # A read-only checkout degrades to cold runs, not errors.
            pass

    def prune(self, keep: int = _MAX_ENTRIES) -> int:
        """Drop oldest entries beyond ``keep``; returns how many."""
        try:
            entries = [
                os.path.join(self.root, name)
                for name in os.listdir(self.root)
                if name.endswith(".json")
            ]
        except OSError:
            return 0
        if len(entries) <= keep:
            return 0
        entries.sort(key=lambda p: os.path.getmtime(p))
        dropped = 0
        for path in entries[: len(entries) - keep]:
            try:
                os.remove(path)
                dropped += 1
            except OSError:
                pass
        return dropped
