"""Runtime sanitizer for the :mod:`repro.nn` autograd framework.

When enabled, every op output that flows through ``Tensor._make`` and
every gradient accumulated during ``backward()`` is checked:

* **SAN001** — non-finite values (NaN/Inf) appearing at an op boundary,
  reported with the op name and the originating (non-``repro.nn``)
  module so a poisoned weight is blamed on the layer that used it;
* **SAN002** — unexpected dtype deviation from the framework's float64
  discipline (e.g. a float32 array silently entering the graph);
* **SAN003** — non-finite gradients reaching a leaf during the backward
  pass;
* a **backward-graph leak detector**: interior nodes that still retain
  their ``_backward`` closures (and therefore their whole parent
  subgraph) after ``backward()`` completed are surfaced by
  :meth:`Sanitizer.leak_report`.

Cost model: the checks are installed by *monkey-patching* three
``Tensor`` methods on :func:`Sanitizer.enable` and fully restored on
:func:`Sanitizer.disable` — when the sanitizer is off the framework runs
the original, unwrapped methods, so the off-state overhead is exactly
zero.  Because the wrappers only *read* array values, a sanitized run is
bitwise-identical to an unsanitized one.

Toggles: ``python -m repro train --sanitize`` or ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import gc
import os
import sys
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.tensor import Tensor

__all__ = [
    "SanitizerError",
    "SanitizerFinding",
    "Sanitizer",
    "enable",
    "disable",
    "active",
    "is_enabled",
    "env_enabled",
]

_EXPECTED_DTYPE = np.float64

# Frames from these packages are implementation detail, not provenance.
_INTERNAL_MODULES = ("repro.nn", "repro.analysis")


@dataclass(frozen=True)
class SanitizerFinding:
    """One runtime invariant violation with op-level provenance."""

    code: str  # SAN001 (non-finite), SAN002 (dtype), SAN003 (grad)
    kind: str  # "non-finite" | "dtype" | "grad-non-finite"
    op: str  # autograd op name, e.g. "conv2d", "__matmul__"
    module: str  # originating module outside repro.nn
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "kind": self.kind,
            "op": self.op,
            "module": self.module,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.code} [{self.kind}] op={self.op} module={self.module}: {self.message}"


class SanitizerError(RuntimeError):
    """Raised (in ``mode='raise'``) at the first sanitizer finding."""

    def __init__(self, finding: SanitizerFinding):
        super().__init__(finding.render())
        self.finding = finding
        self.op = finding.op
        self.module = finding.module


def _op_name(backward) -> str:
    """Autograd op name from the backward closure's qualname.

    ``Tensor.__add__.<locals>.backward`` -> ``__add__``;
    ``conv2d.<locals>.backward`` -> ``conv2d``.
    """
    qualname = getattr(backward, "__qualname__", "")
    head = qualname.split(".<locals>", 1)[0]
    return head.rsplit(".", 1)[-1] if head else "<unknown-op>"


def _caller_module() -> str:
    """First stack frame module outside repro.nn / repro.analysis."""
    frame = sys._getframe(2)
    last = "<unknown>"
    while frame is not None:
        name = frame.f_globals.get("__name__", "")
        if name:
            last = name
            if not name.startswith(_INTERNAL_MODULES):
                return name
        frame = frame.f_back
    return last


def env_enabled(environ=None) -> bool:
    """True when ``REPRO_SANITIZE`` requests sanitizing (1/true/yes/on)."""
    environ = os.environ if environ is None else environ
    return str(environ.get("REPRO_SANITIZE", "")).strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


@dataclass
class _Stats:
    ops_checked: int = 0
    grads_checked: int = 0
    backwards_tracked: int = 0


class Sanitizer:
    """Install/remove the runtime checks (also usable as a context manager).

    Parameters
    ----------
    check_finite / check_dtype / check_grads / track_leaks:
        Individually toggle each check class.
    mode:
        ``"raise"`` (default) aborts at the first finding with a
        :class:`SanitizerError`; ``"record"`` accumulates findings in
        :attr:`findings` and keeps running.
    """

    def __init__(
        self,
        check_finite: bool = True,
        check_dtype: bool = True,
        check_grads: bool = True,
        track_leaks: bool = True,
        mode: str = "raise",
    ):
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.check_finite = check_finite
        self.check_dtype = check_dtype
        self.check_grads = check_grads
        self.track_leaks = track_leaks
        self.mode = mode
        self.findings: List[SanitizerFinding] = []
        self.stats = _Stats()
        self._enabled = False
        self._orig_make = None
        self._orig_accumulate = None
        self._orig_backward = None
        # Leak tracking: op/module provenance per live graph node, and
        # weakrefs to interior nodes whose backward has completed.
        self._origin: "weakref.WeakKeyDictionary[Tensor, Tuple[str, str]]" = (
            weakref.WeakKeyDictionary()
        )
        self._watched: List["weakref.ref[Tensor]"] = []

    # ------------------------------------------------------------------
    # Finding emission
    # ------------------------------------------------------------------
    def _emit(self, finding: SanitizerFinding) -> None:
        self.findings.append(finding)
        if self.mode == "raise":
            raise SanitizerError(finding)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _check_output(self, out: Tensor, backward) -> None:
        data = out.data
        self.stats.ops_checked += 1
        needs_provenance = self.track_leaks or self.check_dtype or self.check_finite
        if not needs_provenance:
            return
        op = _op_name(backward)
        if self.check_dtype and data.dtype != _EXPECTED_DTYPE:
            module = _caller_module()
            self._emit(
                SanitizerFinding(
                    code="SAN002",
                    kind="dtype",
                    op=op,
                    module=module,
                    message=(
                        f"op output dtype {data.dtype} deviates from the "
                        f"framework's {np.dtype(_EXPECTED_DTYPE)} discipline "
                        f"(shape {data.shape})"
                    ),
                )
            )
        if self.check_finite and data.dtype.kind in "fc":
            finite = np.isfinite(data)
            if not finite.all():
                bad = int(data.size - int(finite.sum()))
                module = _caller_module()
                self._emit(
                    SanitizerFinding(
                        code="SAN001",
                        kind="non-finite",
                        op=op,
                        module=module,
                        message=(
                            f"{bad}/{data.size} non-finite value(s) in the "
                            f"output of `{op}` (shape {data.shape})"
                        ),
                    )
                )
        if self.track_leaks and out._backward is not None:
            self._origin[out] = (op, _caller_module())

    def _check_grad(self, tensor: Tensor, grad: np.ndarray) -> None:
        self.stats.grads_checked += 1
        if not self.check_grads:
            return
        grad = np.asarray(grad)
        if grad.dtype.kind in "fc" and not np.all(np.isfinite(grad)):
            name = tensor.name or f"<tensor shape={tensor.shape}>"
            self._emit(
                SanitizerFinding(
                    code="SAN003",
                    kind="grad-non-finite",
                    op="backward",
                    module=_caller_module(),
                    message=f"non-finite gradient accumulated into {name}",
                )
            )

    def _track_backward(self, root: Tensor) -> None:
        """Register weakrefs to interior graph nodes after a backward()."""
        self.stats.backwards_tracked += 1
        if not self.track_leaks:
            return
        seen = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node._backward is not None:
                self._watched.append(weakref.ref(node))
            stack.extend(node._parents)

    # ------------------------------------------------------------------
    # Leak report
    # ------------------------------------------------------------------
    def leak_report(self) -> List[Dict[str, str]]:
        """Interior nodes still retaining closures after their backward().

        An interior node that survives its own ``backward()`` keeps its
        ``_backward`` closure and through it the entire parent subgraph —
        the classic "accidentally stored the loss tensor" leak.  Returns
        one entry per leaked node with its op/module provenance.
        """
        gc.collect()
        leaks: List[Dict[str, str]] = []
        alive: List["weakref.ref[Tensor]"] = []
        for ref in self._watched:
            node = ref()
            if node is None:
                continue
            alive.append(ref)
            if node._backward is None:
                continue
            op, module = self._origin.get(node, ("<unknown-op>", "<unknown>"))
            leaks.append(
                {
                    "op": op,
                    "module": module,
                    "shape": str(node.shape),
                }
            )
        self._watched = alive
        return leaks

    # ------------------------------------------------------------------
    # Install / remove
    # ------------------------------------------------------------------
    def enable(self) -> "Sanitizer":
        """Patch the checks into :class:`~repro.nn.tensor.Tensor`."""
        global _ACTIVE
        if self._enabled:
            return self
        if _ACTIVE is not None:
            raise RuntimeError("another Sanitizer is already enabled")

        self._orig_make = Tensor.__dict__["_make"].__func__
        self._orig_accumulate = Tensor._accumulate
        self._orig_backward = Tensor.backward
        orig_make = self._orig_make
        orig_accumulate = self._orig_accumulate
        orig_backward = self._orig_backward
        sanitizer = self

        def make_checked(data, parents, backward):
            out = orig_make(data, parents, backward)
            sanitizer._check_output(out, backward)
            return out

        def accumulate_checked(tensor, grad):
            sanitizer._check_grad(tensor, grad)
            orig_accumulate(tensor, grad)

        def backward_checked(tensor, grad=None):
            orig_backward(tensor, grad)
            sanitizer._track_backward(tensor)

        Tensor._make = staticmethod(make_checked)
        Tensor._accumulate = accumulate_checked
        Tensor.backward = backward_checked
        self._enabled = True
        _ACTIVE = self
        return self

    def disable(self) -> "Sanitizer":
        """Restore the original unwrapped ``Tensor`` methods."""
        global _ACTIVE
        if not self._enabled:
            return self
        Tensor._make = staticmethod(self._orig_make)
        Tensor._accumulate = self._orig_accumulate
        Tensor.backward = self._orig_backward
        self._enabled = False
        if _ACTIVE is self:
            _ACTIVE = None
        return self

    @property
    def enabled(self) -> bool:
        return self._enabled

    def __enter__(self) -> "Sanitizer":
        return self.enable()

    def __exit__(self, *exc) -> None:
        self.disable()

    def summary(self) -> str:
        """One-line CLI summary of what was checked."""
        return (
            f"sanitizer: {self.stats.ops_checked} op outputs and "
            f"{self.stats.grads_checked} gradient accumulations checked, "
            f"{len(self.findings)} finding(s)"
        )


# ----------------------------------------------------------------------
# Module-level singleton helpers
# ----------------------------------------------------------------------
_ACTIVE: Optional[Sanitizer] = None


def active() -> Optional[Sanitizer]:
    """The currently enabled sanitizer, if any."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None


def enable(**config) -> Sanitizer:
    """Enable a fresh module-level sanitizer (idempotent per process)."""
    if _ACTIVE is not None:
        return _ACTIVE
    return Sanitizer(**config).enable()


def disable() -> Optional[Sanitizer]:
    """Disable the module-level sanitizer; returns it for inspection."""
    sanitizer = _ACTIVE
    if sanitizer is not None:
        sanitizer.disable()
    return sanitizer
