"""Runtime lock-order sanitizer (``lockwatch``): SAN004 / SAN005.

The dynamic counterpart to the static RPL013/RPL016 rules.  When
enabled, ``threading.Lock`` / ``threading.RLock`` constructions return
*watched* proxies (``threading.Condition()`` is covered transitively —
it allocates its RLock through the patched factory).  Each proxy
maintains, through the shared :class:`LockWatch`:

* a **per-thread held-set** with acquisition timestamps and stacks;
* a **global happens-before graph** over lock *objects*: acquiring B
  while holding A records the edge A→B; an acquisition that would make
  the graph cyclic is a **SAN004 order-inversion** — two threads that
  interleave badly can deadlock — reported with the acquisition stacks
  of both edge directions;
* **SAN005 long-hold-under-contention**: a hold that exceeded
  ``hold_threshold`` seconds *while another thread was waiting* for the
  same lock (the pattern that starves heartbeat/pump paths).

Contract (same as :class:`~repro.analysis.sanitizer.Sanitizer` and the
profiler): patch-on-enable, zero overhead when off.  Locks created while
the watcher is off are ordinary unwrapped locks; proxies created while
it was on degrade to a single attribute check after ``disable()``.  The
bookkeeping only reads clocks and stacks — it never touches RNGs or
numeric state — so a watched run is bitwise-identical to an unwatched
one.

Fork: a forked child inherits the patched factories and any proxies, but
its bookkeeping must not: call :func:`reset_after_fork` from the worker
entrypoint (``_employee_worker_main`` does) to clear inherited held-sets
and edges.

Toggles: ``python -m repro train --lockwatch`` or ``REPRO_LOCKWATCH=1``.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockWatch",
    "LockWatchError",
    "LockWatchFinding",
    "active",
    "disable",
    "enable",
    "env_enabled",
    "is_enabled",
    "reset_after_fork",
]

_STACK_LIMIT = 12

# This module's file, for trimming our own frames out of provenance.
_SELF_FILE = os.path.abspath(__file__)


@dataclass(frozen=True)
class LockWatchFinding:
    """One runtime lock-discipline violation with stack provenance."""

    code: str  # SAN004 (order-inversion) | SAN005 (long-hold)
    kind: str  # "order-inversion" | "long-hold-under-contention"
    message: str
    stacks: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "kind": self.kind,
            "message": self.message,
            "stacks": list(self.stacks),
        }

    def render(self) -> str:
        body = f"{self.code} [{self.kind}] {self.message}"
        if self.stacks:
            body += "\n" + "\n---\n".join(self.stacks)
        return body


class LockWatchError(RuntimeError):
    """Raised (in ``mode='raise'``) at the first lockwatch finding."""

    def __init__(self, finding: LockWatchFinding):
        super().__init__(finding.render())
        self.finding = finding


def env_enabled(environ=None) -> bool:
    """True when ``REPRO_LOCKWATCH`` requests watching (1/true/yes/on)."""
    environ = os.environ if environ is None else environ
    return str(environ.get("REPRO_LOCKWATCH", "")).strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def _capture_stack() -> str:
    frames = traceback.extract_stack()
    trimmed = [
        frame
        for frame in frames
        if os.path.abspath(frame.filename) != _SELF_FILE
    ][-_STACK_LIMIT:]
    return "".join(traceback.format_list(trimmed)).rstrip()


@dataclass
class _Hold:
    """One lock currently held by one thread."""

    uid: int
    label: str
    acquired_at: float
    stack: str
    depth: int = 1  # RLock reentrance
    contended: bool = False  # another thread waited during this hold


class _WatchedLock:
    """Proxy around a real Lock/RLock that reports to the LockWatch.

    Implements the full ``Condition``-compatible surface
    (``_is_owned`` / ``_acquire_restore`` / ``_release_save``) so a
    ``threading.Condition`` built on a watched RLock keeps working —
    including held-set bookkeeping across ``wait()``'s release/reacquire.
    """

    def __init__(self, inner, kind: str, watch: "LockWatch", uid: int):
        self._inner = inner
        self._kind = kind  # "Lock" | "RLock"
        self._watch = watch
        self._uid = uid

    # -- core protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1):
        watch = self._watch
        if not watch.watching:
            return self._inner.acquire(blocking, timeout)
        if not blocking:
            # Try-locks never wait, so they must not mark contention
            # (SAN005 is about holds that starve *blocked* threads).
            got = self._inner.acquire(blocking, timeout)
        else:
            got = self._inner.acquire(False)
            if not got:
                # We are genuinely about to block: only now does the
                # current holder count as contended.
                watch._before_acquire(self)
                got = self._inner.acquire(True, timeout)
        if got:
            try:
                watch._after_acquire(self)
            except LockWatchError:
                # Roll the acquisition back so raise-mode callers (and
                # ``with`` blocks, whose __exit__ never runs when
                # __enter__ raises) do not strand the lock.
                self._inner.release()
                raise
        return got

    def release(self):
        watch = self._watch
        if watch.watching:
            watch._before_release(self)
        return self._inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def locked(self):
        return self._inner.locked()

    # -- Condition compatibility ---------------------------------------
    def _is_owned(self):
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        # Plain Lock fallback (mirrors threading.Condition's own).
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _release_save(self):
        watch = self._watch
        if watch.watching:
            watch._release_all_depths(self)
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state):
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        watch = self._watch
        if watch.watching:
            # RLock._release_save returns (count, owner); restore the
            # full reentrant depth or releases desynchronize the held-set.
            if isinstance(state, tuple) and state and isinstance(state[0], int):
                depth = state[0]
            elif isinstance(state, int):
                depth = state
            else:
                depth = 1
            watch._after_acquire(self, depth=depth)

    def _at_fork_reinit(self):
        # threading._after_fork re-initializes every lock embedded in a
        # surviving Thread/Event/Condition; without this the child dies
        # with "Exception ignored in: _after_fork" and inherited locks
        # stay in their forked (possibly held) state.
        self._inner._at_fork_reinit()
        # The child is single-threaded at this point, so purging the
        # parent's hold records needs no _raw guard (which may itself
        # have been held at fork time).
        for holds in self._watch._held.values():
            for i in range(len(holds) - 1, -1, -1):
                if holds[i].uid == self._uid:
                    del holds[i]

    def __repr__(self):
        return f"<watched {self._kind} uid={self._uid} {self._inner!r}>"


class LockWatch:
    """Install/remove the lock instrumentation (also a context manager).

    Parameters
    ----------
    mode:
        ``"raise"`` aborts at the first finding with
        :class:`LockWatchError`; ``"record"`` (default) accumulates into
        :attr:`findings` and keeps running.
    hold_threshold:
        Seconds a *contended* hold may last before SAN005 fires.
    capture_stacks:
        Stack provenance on every acquisition (the useful default; turn
        off to cheapen long soak runs).
    """

    def __init__(
        self,
        mode: str = "record",
        hold_threshold: float = 1.0,
        capture_stacks: bool = True,
    ):
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.mode = mode
        self.hold_threshold = float(hold_threshold)
        self.capture_stacks = capture_stacks
        self.findings: List[LockWatchFinding] = []
        self.watching = False
        self._orig_lock = None
        self._orig_rlock = None
        self._uid_source = 0
        # All shared state below is guarded by a RAW (never-watched)
        # lock so the bookkeeping cannot recurse into itself.
        self._raw = None
        self._held: Dict[int, List[_Hold]] = {}  # thread id -> stack
        # Happens-before edges over lock uids, with the stacks that
        # created them: (outer, inner) -> (outer stack, inner stack).
        self._edges: Dict[Tuple[int, int], Tuple[str, str]] = {}
        self._adjacency: Dict[int, Set[int]] = {}
        self._labels: Dict[int, str] = {}
        self.stats = {"acquires": 0, "releases": 0, "edges": 0}

    # ------------------------------------------------------------------
    # Install / remove
    # ------------------------------------------------------------------
    def enable(self) -> "LockWatch":
        global _ACTIVE
        if self.watching:
            return self
        if _ACTIVE is not None:
            raise RuntimeError("another LockWatch is already enabled")
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock
        self._raw = self._orig_lock()
        watch = self

        def lock_factory():
            return watch._wrap(watch._orig_lock(), "Lock")

        def rlock_factory():
            return watch._wrap(watch._orig_rlock(), "RLock")

        threading.Lock = lock_factory
        threading.RLock = rlock_factory
        self.watching = True
        _ACTIVE = self
        return self

    def disable(self) -> "LockWatch":
        global _ACTIVE
        if not self.watching:
            return self
        threading.Lock = self._orig_lock
        threading.RLock = self._orig_rlock
        self.watching = False
        if _ACTIVE is self:
            _ACTIVE = None
        return self

    def __enter__(self) -> "LockWatch":
        return self.enable()

    def __exit__(self, *exc) -> None:
        self.disable()

    def _wrap(self, inner, kind: str) -> _WatchedLock:
        with self._raw:
            self._uid_source += 1
            uid = self._uid_source
        proxy = _WatchedLock(inner, kind, self, uid)
        self._labels[uid] = f"{kind}#{uid}"
        return proxy

    def reset_after_fork(self) -> None:
        """Drop bookkeeping inherited through ``fork``.

        The child keeps the patched factories and any proxy objects, but
        held-sets and the order graph describe the parent's threads —
        none of which exist here.  The raw guard lock is re-allocated in
        case the parent forked while a thread held it.
        """
        self._raw = self._orig_lock() if self._orig_lock else threading.Lock()
        self._held = {}
        self._edges = {}
        self._adjacency = {}
        self.findings = []

    # ------------------------------------------------------------------
    # Finding emission
    # ------------------------------------------------------------------
    def _emit(self, finding: LockWatchFinding) -> None:
        self.findings.append(finding)
        if self.mode == "raise":
            raise LockWatchError(finding)

    # ------------------------------------------------------------------
    # Acquire / release hooks (called from the proxies)
    # ------------------------------------------------------------------
    def _before_acquire(self, proxy: _WatchedLock) -> None:
        """Called only when the acquiring thread is about to block."""
        tid = threading.get_ident()
        with self._raw:
            # Contention: someone else currently holds this lock.
            for other_tid, holds in self._held.items():
                if other_tid == tid:
                    continue
                for hold in holds:
                    if hold.uid == proxy._uid:
                        hold.contended = True

    def _after_acquire(self, proxy: _WatchedLock, depth: int = 1) -> None:
        tid = threading.get_ident()
        stack = _capture_stack() if self.capture_stacks else ""
        finding: Optional[LockWatchFinding] = None
        with self._raw:
            self.stats["acquires"] += 1
            holds = self._held.setdefault(tid, [])
            if proxy._kind == "RLock":
                for hold in holds:
                    if hold.uid == proxy._uid:
                        hold.depth += depth
                        return
            new_hold = _Hold(
                uid=proxy._uid,
                label=self._labels.get(proxy._uid, str(proxy._uid)),
                acquired_at=time.monotonic(),
                stack=stack,
                depth=depth,
            )
            for outer in holds:
                if outer.uid == proxy._uid:
                    continue  # reentrant pair already filtered above
                finding = self._record_edge(outer, new_hold) or finding
            holds.append(new_hold)
        if finding is not None:
            if self.mode == "raise":
                # The caller rolls the inner acquisition back; drop the
                # hold record so the held-set matches.
                with self._raw:
                    holds = self._held.get(tid, [])
                    if holds and holds[-1].uid == proxy._uid:
                        holds.pop()
            self._emit(finding)

    def _record_edge(
        self, outer: _Hold, inner: _Hold
    ) -> Optional[LockWatchFinding]:
        """Add outer→inner; a path inner→…→outer means an inversion."""
        key = (outer.uid, inner.uid)
        if key in self._edges:
            return None
        inversion = self._path_stacks(inner.uid, outer.uid)
        self._edges[key] = (outer.stack, inner.stack)
        self._adjacency.setdefault(outer.uid, set()).add(inner.uid)
        self._adjacency.setdefault(inner.uid, set())
        self.stats["edges"] += 1
        if inversion is None:
            return None
        forward = (
            f"thread {threading.get_ident()} acquired "
            f"{self._labels[inner.uid]} while holding {self._labels[outer.uid]}:"
            f"\n{outer.stack}\n--- then ---\n{inner.stack}"
        )
        return LockWatchFinding(
            code="SAN004",
            kind="order-inversion",
            message=(
                f"lock-order inversion: {self._labels[outer.uid]} -> "
                f"{self._labels[inner.uid]} contradicts the established "
                f"order {self._labels[inner.uid]} -> {self._labels[outer.uid]}"
            ),
            stacks=(forward,) + tuple(inversion),
        )

    def _path_stacks(self, src: int, dst: int) -> Optional[List[str]]:
        """Stacks along an existing src→…→dst path (None if unreachable)."""
        parents: Dict[int, int] = {src: src}
        queue = [src]
        while queue:
            node = queue.pop(0)
            if node == dst:
                break
            for nxt in self._adjacency.get(node, ()):
                if nxt not in parents:
                    parents[nxt] = node
                    queue.append(nxt)
        if dst not in parents:
            return None
        # Reconstruct dst <- ... <- src and render each edge's stacks.
        chain = [dst]
        while chain[-1] != src:
            chain.append(parents[chain[-1]])
        chain.reverse()
        stacks: List[str] = []
        for outer_uid, inner_uid in zip(chain, chain[1:]):
            outer_stack, inner_stack = self._edges[(outer_uid, inner_uid)]
            stacks.append(
                f"established edge {self._labels[outer_uid]} -> "
                f"{self._labels[inner_uid]}:\n{outer_stack}\n--- then ---\n"
                f"{inner_stack}"
            )
        return stacks

    def _before_release(self, proxy: _WatchedLock) -> None:
        tid = threading.get_ident()
        finding: Optional[LockWatchFinding] = None
        with self._raw:
            self.stats["releases"] += 1
            holds = self._held.get(tid, [])
            found = False
            for i in range(len(holds) - 1, -1, -1):
                hold = holds[i]
                if hold.uid != proxy._uid:
                    continue
                found = True
                if proxy._kind == "RLock" and hold.depth > 1:
                    hold.depth -= 1
                    return
                held_for = time.monotonic() - hold.acquired_at
                if hold.contended and held_for > self.hold_threshold:
                    finding = LockWatchFinding(
                        code="SAN005",
                        kind="long-hold-under-contention",
                        message=(
                            f"{hold.label} held {held_for:.3f}s while other "
                            f"threads were waiting (threshold "
                            f"{self.hold_threshold:.3f}s) — heartbeat/pump "
                            "paths can miss their deadline"
                        ),
                        stacks=(hold.stack,) if hold.stack else (),
                    )
                del holds[i]
                break
            if not found:
                # Cross-thread release (the plain-Lock signaling idiom:
                # acquired in one thread, released in another).  Drop the
                # acquirer's record — leaving it would attribute every
                # later acquisition by that thread to a phantom hold,
                # fabricating order edges — without SAN005 evaluation:
                # a handoff's duration is not a hold.
                for other_holds in self._held.values():
                    for i in range(len(other_holds) - 1, -1, -1):
                        if other_holds[i].uid == proxy._uid:
                            del other_holds[i]
                            found = True
                            break
                    if found:
                        break
        if finding is not None:
            self._emit(finding)

    def _release_all_depths(self, proxy: _WatchedLock) -> None:
        """Condition.wait: the lock fully leaves the held-set."""
        tid = threading.get_ident()
        with self._raw:
            holds = self._held.get(tid, [])
            for i in range(len(holds) - 1, -1, -1):
                if holds[i].uid == proxy._uid:
                    del holds[i]
                    break

    # ------------------------------------------------------------------
    def summary(self) -> str:
        return (
            f"lockwatch: {self.stats['acquires']} acquisitions across "
            f"{self.stats['edges']} order edges, "
            f"{len(self.findings)} finding(s)"
        )


# ----------------------------------------------------------------------
# Module-level singleton helpers
# ----------------------------------------------------------------------
_ACTIVE: Optional[LockWatch] = None


def active() -> Optional[LockWatch]:
    """The currently enabled lockwatch, if any."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None


def enable(**config) -> LockWatch:
    """Enable a fresh module-level lockwatch (idempotent per process)."""
    if _ACTIVE is not None:
        return _ACTIVE
    return LockWatch(**config).enable()


def disable() -> Optional[LockWatch]:
    """Disable the module-level lockwatch; returns it for inspection."""
    watch = _ACTIVE
    if watch is not None:
        watch.disable()
    return watch


def reset_after_fork() -> None:  # reprolint's sanctioned fork re-init
    """Clear bookkeeping inherited through ``fork`` (worker-side)."""
    if _ACTIVE is not None:
        _ACTIVE.reset_after_fork()
