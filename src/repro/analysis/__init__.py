"""Static analysis and runtime sanitizers for the reproduction.

Two halves, one goal — make the invariants the reproduction's claims
rest on (bitwise determinism, float64 discipline, autograd integrity,
lock discipline) *enforced* instead of conventional:

* **reprolint** (:mod:`repro.analysis.rules` / :mod:`.engine` /
  :mod:`.reporters` / :mod:`.cli`) — an AST linter with per-rule codes
  (RPL001…RPL010), ``# reprolint: disable=RPLxxx`` suppressions, and
  text/JSON reporters.  Run it with ``python -m repro lint``.
* **runtime sanitizer** (:mod:`repro.analysis.sanitizer`) — NaN/Inf and
  dtype checks at every autograd op boundary with op+module provenance,
  plus a backward-graph leak detector.  Toggled by ``--sanitize`` on the
  CLI or ``REPRO_SANITIZE=1``; zero overhead when off.
"""

from .engine import (
    DEFAULT_EXCLUDED_DIRS,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from .findings import Finding
from .reporters import render_json, render_text, summarize
from .rules import RULES, ModuleContext, Rule, rule_table
from .sanitizer import (
    Sanitizer,
    SanitizerError,
    SanitizerFinding,
    env_enabled,
    is_enabled,
)

__all__ = [
    # lint
    "Finding",
    "Rule",
    "RULES",
    "ModuleContext",
    "rule_table",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "parse_suppressions",
    "DEFAULT_EXCLUDED_DIRS",
    "render_text",
    "render_json",
    "summarize",
    # sanitizer
    "Sanitizer",
    "SanitizerError",
    "SanitizerFinding",
    "env_enabled",
    "is_enabled",
]
