"""Static analysis and runtime sanitizers for the reproduction.

Two halves, one goal — make the invariants the reproduction's claims
rest on (bitwise determinism, float64 discipline, autograd integrity,
lock discipline) *enforced* instead of conventional:

* **reprolint** (:mod:`repro.analysis.rules` / :mod:`.engine` /
  :mod:`.reporters` / :mod:`.cli`) — an AST linter with per-rule codes
  (RPL001…RPL012 per-file; RPL013…RPL016 whole-program, over the
  cross-module call graph of :mod:`.callgraph` via ``--program``),
  ``# reprolint: disable=RPLxxx`` suppressions, text/JSON/SARIF
  reporters and a content-addressed incremental cache (:mod:`.cache`).
  Run it with ``python -m repro lint``.
* **runtime sanitizers** — :mod:`repro.analysis.sanitizer` (NaN/Inf and
  dtype checks at every autograd op boundary with op+module provenance,
  plus a backward-graph leak detector; ``--sanitize`` /
  ``REPRO_SANITIZE=1``) and :mod:`repro.analysis.lockwatch` (lock-order
  inversion SAN004 and contended-long-hold SAN005 with acquisition-stack
  provenance; ``--lockwatch`` / ``REPRO_LOCKWATCH=1``).  Both are
  patch-on-enable with zero overhead when off.
"""

from .cache import DEFAULT_CACHE_DIR, LintCache, content_sha
from .callgraph import ProgramIndex, build_program_index, module_name_for_path
from .engine import (
    DEFAULT_EXCLUDED_DIRS,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from .findings import Finding
from .lockwatch import (
    LockWatch,
    LockWatchError,
    LockWatchFinding,
)
from .program import (
    PROGRAM_RULES,
    ProgramContext,
    ProgramRule,
    analyze_files,
    analyze_program,
    program_rule_table,
)
from .reporters import render_json, render_sarif, render_text, summarize
from .rules import RULES, ModuleContext, Rule, rule_table
from .sanitizer import (
    Sanitizer,
    SanitizerError,
    SanitizerFinding,
    env_enabled,
    is_enabled,
)

__all__ = [
    # lint
    "Finding",
    "Rule",
    "RULES",
    "ModuleContext",
    "rule_table",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "parse_suppressions",
    "DEFAULT_EXCLUDED_DIRS",
    "render_text",
    "render_json",
    "render_sarif",
    "summarize",
    # whole-program analysis
    "PROGRAM_RULES",
    "ProgramContext",
    "ProgramRule",
    "ProgramIndex",
    "analyze_files",
    "analyze_program",
    "build_program_index",
    "module_name_for_path",
    "program_rule_table",
    # cache
    "LintCache",
    "DEFAULT_CACHE_DIR",
    "content_sha",
    # sanitizer
    "Sanitizer",
    "SanitizerError",
    "SanitizerFinding",
    "env_enabled",
    "is_enabled",
    # lockwatch
    "LockWatch",
    "LockWatchError",
    "LockWatchFinding",
]
