"""Interprocedural lock analysis: RPL013 (order cycles) and RPL016
(blocking calls under a lock).

Lock identity is *per declaration site*: a lock is ``(owner, attr)``
where the owner is the class whose ``__init__`` constructs it (or the
module, for module-level locks).  Two instances of the same field are
one node — that over-approximates (sequentially taking two employees'
locks looks like a self-edge) but is what makes cross-module ordering
checkable at all; reentrant kinds (RLock, Condition) drop self-edges.

The analysis runs in three passes over the call graph:

1. per-function **event scan** — every lock acquisition, resolved call,
   and known-blocking call, each annotated with the stack of locks held
   at that point (``with`` nesting plus ``acquire()``/``release()``
   pairing inside a block);
2. **fixpoint closures** — ``may_acquire[f]`` (locks any call into ``f``
   may take, with the acquisition path) and ``may_block[f]``;
3. **edge/report pass** — held-lock x nested-acquisition pairs become
   edges in the global lock graph (RPL013 reports every cycle, with the
   full acquisition path for each edge) and held-lock x blocking-call
   pairs become RPL016 findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import FunctionInfo, ProgramIndex, _FunctionScope, _dotted
from .findings import Finding
from .program import ProgramContext, program_rule

__all__ = ["LockId", "collect_lock_events", "lock_graph"]

# Reentrant kinds may be re-acquired by the holding thread.
_REENTRANT = ("RLock", "Condition")

# Dotted call targets that block the calling thread.
_BLOCKING_DOTTED = {
    "time.sleep": "time.sleep",
    "select.select": "select.select",
}

# Method names that block regardless of receiver: socket reads/writes
# and pipe reads.  ``.wait`` is deliberately absent — ``Condition.wait``
# *releases* the lock it is called under.
_BLOCKING_ATTRS = {
    "recv": "socket/pipe recv",
    "recv_into": "socket recv_into",
    "recvfrom": "socket recvfrom",
    "accept": "socket accept",
    "sendall": "socket sendall",
    "poll": "pipe poll",
}

# ``.poll()`` is also a common zero-timeout idiom on registries and
# futures; only treat it as blocking when called with a non-zero arg.
_TIMEOUT_GATED_ATTRS = {"poll"}


@dataclass(frozen=True)
class LockId:
    """One declared lock: (owning class or module FQN, attribute, kind)."""

    owner: str
    attr: str
    kind: str  # "Lock" | "RLock" | "Condition"

    def render(self) -> str:
        return f"{self.owner}.{self.attr} ({self.kind})"

    @property
    def reentrant(self) -> bool:
        return self.kind in _REENTRANT


@dataclass(frozen=True)
class _Event:
    """One scan event inside a function body."""

    kind: str  # "acquire" | "call" | "block"
    lineno: int
    held: Tuple[Tuple[LockId, int], ...]  # (lock, acquired-at-line) stack
    lock: Optional[LockId] = None  # for "acquire"
    callee: str = ""  # for "call" (FQN)
    desc: str = ""  # for "block"


def _resolve_lock(scope: _FunctionScope, expr: ast.AST) -> Optional[LockId]:
    """Map a ``with X`` / ``X.acquire()`` receiver to a LockId, or None."""
    index = scope.index
    if isinstance(expr, ast.Attribute):
        rtype = scope.type_of(expr.value)
        if rtype is not None:
            seen: Set[str] = set()
            stack = [rtype]
            while stack:
                fqn = stack.pop(0)
                if fqn in seen:
                    continue
                seen.add(fqn)
                cls = index.classes.get(fqn)
                if cls is None:
                    continue
                if expr.attr in cls.attr_locks:
                    return LockId(cls.fqn, expr.attr, cls.attr_locks[expr.attr])
                stack.extend(cls.bases)
        owners = index.attr_lock_owners(expr.attr)
        if len(owners) == 1:
            owner = owners[0]
            return LockId(owner.fqn, expr.attr, owner.attr_locks[expr.attr])
        return None
    if isinstance(expr, ast.Name):
        info = scope.info
        if expr.id in info.module_locks:
            return LockId(info.name, expr.id, info.module_locks[expr.id])
        resolved = index.resolve(info.name, expr.id)
        if resolved and "." in resolved:
            mod, _, name = resolved.rpartition(".")
            other = index.modules.get(mod)
            if other is not None and name in other.module_locks:
                return LockId(mod, name, other.module_locks[name])
    return None


def _blocking_desc(
    scope: _FunctionScope, call: ast.Call
) -> Optional[str]:
    """Describe the call if it is a known-blocking primitive."""
    dotted = _dotted(call.func)
    if dotted:
        resolved = None
        head, _, rest = dotted.partition(".")
        target = scope.info.imports.get(head)
        if target:
            resolved = f"{target}.{rest}" if rest else target
        for candidate in (resolved, dotted):
            if candidate in _BLOCKING_DOTTED:
                return _BLOCKING_DOTTED[candidate]
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in _BLOCKING_ATTRS:
            if attr in _TIMEOUT_GATED_ATTRS:
                if not call.args and not call.keywords:
                    return None
                first = call.args[0] if call.args else None
                if isinstance(first, ast.Constant) and first.value in (0, 0.0):
                    return None
            return _BLOCKING_ATTRS[attr]
    return None


def _iter_calls(node: ast.AST):
    """Call nodes in an expression/statement, skipping deferred bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(
            current,
            (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


class _Scanner:
    """Builds the event list for one function."""

    def __init__(self, scope: _FunctionScope):
        self.scope = scope
        self.events: List[_Event] = []
        self.held: List[Tuple[LockId, int]] = []

    def run(self) -> List[_Event]:
        self._scan_block(self.scope.fn.node.body)
        return self.events

    # -- event emission -------------------------------------------------
    def _snapshot(self) -> Tuple[Tuple[LockId, int], ...]:
        return tuple(self.held)

    def _emit_acquire(self, lock: LockId, lineno: int) -> None:
        self.events.append(
            _Event("acquire", lineno, self._snapshot(), lock=lock)
        )

    def _scan_expr(self, node: Optional[ast.AST]) -> None:
        if node is None:
            return
        for call in _iter_calls(node):
            desc = _blocking_desc(self.scope, call)
            if desc is not None:
                self.events.append(
                    _Event("block", call.lineno, self._snapshot(), desc=desc)
                )
            for target in self.scope.resolve_call(call):
                self.events.append(
                    _Event(
                        "call",
                        call.lineno,
                        self._snapshot(),
                        callee=target.fqn,
                    )
                )

    # -- block walking --------------------------------------------------
    def _scan_block(self, stmts: Sequence[ast.stmt]) -> None:
        extra = 0  # acquire()-style locks pushed inside this block
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                pushed = 0
                for item in stmt.items:
                    self._scan_expr(item.context_expr)
                    lock = _resolve_lock(self.scope, item.context_expr)
                    if lock is not None:
                        self._emit_acquire(lock, stmt.lineno)
                        self.held.append((lock, stmt.lineno))
                        pushed += 1
                self._scan_block(stmt.body)
                for _ in range(pushed):
                    self.held.pop()
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            elif isinstance(stmt, ast.If):
                self._scan_expr(stmt.test)
                self._scan_block(stmt.body)
                self._scan_block(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter)
                self._scan_block(stmt.body)
                self._scan_block(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test)
                self._scan_block(stmt.body)
                self._scan_block(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                self._scan_block(stmt.body)
                for handler in stmt.handlers:
                    self._scan_block(handler.body)
                self._scan_block(stmt.orelse)
                self._scan_block(stmt.finalbody)
            else:
                acquired = self._explicit_acquire(stmt)
                if acquired is not None:
                    extra += 1
                    continue
                if self._explicit_release(stmt) and extra:
                    self.held.pop()
                    extra -= 1
                    continue
                self._scan_expr(stmt)
        for _ in range(extra):
            self.held.pop()

    def _explicit_acquire(self, stmt: ast.stmt) -> Optional[LockId]:
        """``x.acquire()`` as a standalone statement: held to the matching
        ``release()`` in this block, else to block end."""
        call = self._method_stmt(stmt, "acquire")
        if call is None:
            return None
        lock = _resolve_lock(self.scope, call.func.value)
        if lock is None:
            self._scan_expr(stmt)
            return None
        self._emit_acquire(lock, stmt.lineno)
        self.held.append((lock, stmt.lineno))
        return lock

    def _explicit_release(self, stmt: ast.stmt) -> bool:
        call = self._method_stmt(stmt, "release")
        if call is None:
            return False
        return _resolve_lock(self.scope, call.func.value) is not None

    @staticmethod
    def _method_stmt(stmt: ast.stmt, name: str) -> Optional[ast.Call]:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == name
        ):
            return stmt.value
        return None


def collect_lock_events(index: ProgramIndex) -> Dict[str, List[_Event]]:
    """Event scan for every function in the program."""
    events: Dict[str, List[_Event]] = {}
    for fn in index.functions.values():
        scope = _FunctionScope(index, index.modules[fn.module], fn)
        events[fn.fqn] = _Scanner(scope).run()
    return events


def _step(index: ProgramIndex, fqn: str, lineno: int, verb: str) -> str:
    fn = index.functions[fqn]
    path = index.modules[fn.module].path
    return f"{path}:{lineno} [{fqn.rsplit('.', 2)[-1]}] {verb}"


_MAX_FIXPOINT_ROUNDS = 64


def _closure(
    index: ProgramIndex,
    events: Dict[str, List[_Event]],
    seed,
) -> Dict[str, Dict[object, Tuple[str, ...]]]:
    """Generic path-carrying fixpoint over the call graph.

    ``seed(fqn, event)`` yields ``(key, path_tuple)`` facts produced
    directly by the event; facts then propagate caller-ward through
    resolved call edges, each hop prepending the call-site step.
    """
    facts: Dict[str, Dict[object, Tuple[str, ...]]] = {
        fqn: {} for fqn in events
    }
    for fqn, evs in events.items():
        for ev in evs:
            for key, path in seed(fqn, ev):
                facts[fqn].setdefault(key, path)
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        changed = False
        for fqn, evs in events.items():
            mine = facts[fqn]
            for ev in evs:
                if ev.kind != "call" or ev.callee not in facts:
                    continue
                hop = _step(
                    index, fqn, ev.lineno, f"calls {ev.callee.rsplit('.', 1)[-1]}"
                )
                for key, path in facts[ev.callee].items():
                    if key not in mine:
                        mine[key] = (hop,) + path
                        changed = True
        if not changed:
            break
    return facts


def lock_graph(index: ProgramIndex):
    """Build the global lock-acquisition graph.

    Returns ``(edges, rpl016, self_deadlocks)`` where ``edges`` maps
    ``(LockId, LockId)`` to the first acquisition path seen, ``rpl016``
    is a list of ``(module_path, lineno, held LockId, desc, path)`` and
    ``self_deadlocks`` a list of ``(module_path, lineno, LockId, path)``.
    """
    events = collect_lock_events(index)

    def seed_acquire(fqn: str, ev: _Event):
        if ev.kind == "acquire":
            yield ev.lock, (_step(index, fqn, ev.lineno, f"acquires {ev.lock.render()}"),)

    def seed_block(fqn: str, ev: _Event):
        if ev.kind == "block":
            yield ev.desc, (_step(index, fqn, ev.lineno, f"blocks in {ev.desc}"),)

    may_acquire = _closure(index, events, seed_acquire)
    may_block = _closure(index, events, seed_block)

    edges: Dict[Tuple[LockId, LockId], Tuple[str, ...]] = {}
    rpl016: List[Tuple[str, int, LockId, str, Tuple[str, ...]]] = []
    self_deadlocks: List[Tuple[str, int, LockId, Tuple[str, ...]]] = []

    def add_edge(
        outer: LockId,
        inner: LockId,
        path: Tuple[str, ...],
        fqn: str,
        lineno: int,
    ) -> None:
        if outer == inner:
            if not outer.reentrant:
                module_path = index.modules[index.functions[fqn].module].path
                self_deadlocks.append((module_path, lineno, outer, path))
            return
        edges.setdefault((outer, inner), path)

    for fqn, evs in events.items():
        module_path = index.modules[index.functions[fqn].module].path
        for ev in evs:
            if not ev.held:
                continue
            if ev.kind == "acquire":
                for outer, at in ev.held:
                    path = (
                        _step(index, fqn, at, f"acquires {outer.render()}"),
                        _step(index, fqn, ev.lineno, f"acquires {ev.lock.render()}"),
                    )
                    add_edge(outer, ev.lock, path, fqn, ev.lineno)
            elif ev.kind == "block":
                for outer, at in ev.held:
                    rpl016.append(
                        (
                            module_path,
                            ev.lineno,
                            outer,
                            ev.desc,
                            (
                                _step(index, fqn, at, f"acquires {outer.render()}"),
                                _step(index, fqn, ev.lineno, f"blocks in {ev.desc}"),
                            ),
                        )
                    )
            elif ev.kind == "call" and ev.callee in may_acquire:
                hop = _step(
                    index, fqn, ev.lineno, f"calls {ev.callee.rsplit('.', 1)[-1]}"
                )
                for outer, at in ev.held:
                    prefix = (
                        _step(index, fqn, at, f"acquires {outer.render()}"),
                        hop,
                    )
                    for inner, path in may_acquire[ev.callee].items():
                        add_edge(outer, inner, prefix + path, fqn, ev.lineno)
                    for desc, path in may_block[ev.callee].items():
                        rpl016.append(
                            (module_path, ev.lineno, outer, desc, prefix + path)
                        )
    return edges, rpl016, self_deadlocks


def _find_cycles(
    edges: Dict[Tuple[LockId, LockId], Tuple[str, ...]]
) -> List[List[LockId]]:
    """Elementary cycles in the lock graph (each reported once)."""
    adjacency: Dict[LockId, List[LockId]] = {}
    for outer, inner in edges:
        adjacency.setdefault(outer, []).append(inner)
        adjacency.setdefault(inner, [])
    cycles: List[List[LockId]] = []
    seen: Set[Tuple[LockId, ...]] = set()

    def dfs(start: LockId, node: LockId, path: List[LockId]) -> None:
        for nxt in adjacency[node]:
            if nxt == start and len(path) > 1:
                best = min(range(len(path)), key=lambda i: path[i].render())
                canon = tuple(path[best:] + path[:best])
                if canon not in seen:
                    seen.add(canon)
                    cycles.append(list(canon))
            elif nxt not in path and nxt.render() > start.render():
                # Only explore nodes "above" the start to canonicalize.
                path.append(nxt)
                dfs(start, nxt, path)
                path.pop()

    for node in sorted(adjacency, key=LockId.render):
        dfs(node, node, [node])
    return cycles


def _anchor(path: Tuple[str, ...]) -> Tuple[str, int]:
    """(file, line) of a rendered acquisition step."""
    head = path[0]
    location = head.split(" ", 1)[0]
    file_part, _, line_part = location.rpartition(":")
    try:
        return file_part, int(line_part)
    except ValueError:
        return location, 0


def _cached_lock_graph(context: ProgramContext):
    """RPL013 and RPL016 share one graph build per program pass."""
    cached = getattr(context, "_lock_graph", None)
    if cached is None:
        cached = lock_graph(context.index)
        context._lock_graph = cached
    return cached


@program_rule(
    "RPL013",
    "lock-order-cycle",
    "cross-module lock acquisition cycles (potential deadlocks)",
)
def rpl013_lock_order_cycle(context: ProgramContext) -> List[Finding]:
    edges, _, self_deadlocks = _cached_lock_graph(context)
    findings: List[Finding] = []
    for module_path, lineno, lock, path in self_deadlocks:
        findings.append(
            Finding(
                code="RPL013",
                rule="lock-order-cycle",
                path=module_path,
                line=lineno,
                message=(
                    f"non-reentrant {lock.render()} may be re-acquired while "
                    f"held (self-deadlock): " + " -> ".join(path)
                ),
            )
        )
    for cycle in _find_cycles(edges):
        pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
        paths = []
        for outer, inner in pairs:
            path = edges[(outer, inner)]
            paths.append(
                f"{outer.render()} -> {inner.render()} via: " + " | ".join(path)
            )
        anchor_file, anchor_line = _anchor(edges[pairs[0]])
        order = " -> ".join(lock.render() for lock in cycle + [cycle[0]])
        findings.append(
            Finding(
                code="RPL013",
                rule="lock-order-cycle",
                path=anchor_file,
                line=anchor_line,
                message=(
                    f"lock-order cycle {order}; acquisition paths: "
                    + " ;; ".join(paths)
                ),
            )
        )
    return findings


@program_rule(
    "RPL016",
    "blocking-call-under-lock",
    "socket/pipe/sleep blocking primitives invoked while holding a lock",
)
def rpl016_blocking_under_lock(context: ProgramContext) -> List[Finding]:
    _, blockers, _ = _cached_lock_graph(context)
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, LockId, str]] = set()
    for module_path, lineno, lock, desc, path in blockers:
        key = (module_path, lineno, lock, desc)
        if key in seen:
            continue
        seen.add(key)
        findings.append(
            Finding(
                code="RPL016",
                rule="blocking-call-under-lock",
                path=module_path,
                line=lineno,
                message=(
                    f"{desc} while holding {lock.render()} can stall every "
                    f"thread contending for it (heartbeat/pump paths "
                    f"included): " + " -> ".join(path)
                ),
            )
        )
    return findings
