"""Text, JSON, and SARIF renderings of lint findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding

__all__ = ["render_text", "render_json", "render_sarif", "summarize"]


def summarize(findings: Sequence[Finding]) -> Counter:
    """Per-code finding counts."""
    return Counter(finding.code for finding in findings)


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    if not findings:
        return "reprolint: no findings"
    lines: List[str] = [finding.render() for finding in findings]
    counts = summarize(findings)
    breakdown = ", ".join(f"{code}: {count}" for code, count in sorted(counts.items()))
    plural = "s" if len(findings) != 1 else ""
    lines.append(f"reprolint: {len(findings)} finding{plural} ({breakdown})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable ordering, used by the CI gate)."""
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "summary": dict(sorted(summarize(findings).items())),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(
    findings: Sequence[Finding],
    rules: Optional[Sequence[Tuple[str, str, str]]] = None,
) -> str:
    """SARIF 2.1.0 report — what GitHub code scanning ingests.

    ``rules`` is the ``(code, name, description)`` table; when omitted,
    rule metadata is derived from the findings themselves.
    """
    if rules is None:
        seen: Dict[str, Tuple[str, str, str]] = {}
        for finding in findings:
            seen.setdefault(finding.code, (finding.code, finding.rule, ""))
        rules = [seen[code] for code in sorted(seen)]
    rule_index = {code: i for i, (code, _, _) in enumerate(rules)}
    results = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        results.append(result)
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/repro/analysis"
                        ),
                        "version": "1.0.0",
                        "rules": [
                            {
                                "id": code,
                                "name": name,
                                "shortDescription": {"text": description or name},
                            }
                            for code, name, description in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
