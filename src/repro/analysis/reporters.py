"""Text and JSON renderings of lint findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from .findings import Finding

__all__ = ["render_text", "render_json", "summarize"]


def summarize(findings: Sequence[Finding]) -> Counter:
    """Per-code finding counts."""
    return Counter(finding.code for finding in findings)


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    if not findings:
        return "reprolint: no findings"
    lines: List[str] = [finding.render() for finding in findings]
    counts = summarize(findings)
    breakdown = ", ".join(f"{code}: {count}" for code, count in sorted(counts.items()))
    plural = "s" if len(findings) != 1 else ""
    lines.append(f"reprolint: {len(findings)} finding{plural} ({breakdown})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable ordering, used by the CI gate)."""
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "summary": dict(sorted(summarize(findings).items())),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=False)
