"""The ``reprolint`` driver: file discovery, suppression handling, rule runs.

The engine is deliberately dependency-free (stdlib ``ast`` + ``re``): it
parses each file once, runs every selected rule from
:mod:`repro.analysis.rules` over the tree, then drops findings covered by
``# reprolint: disable=RPLxxx`` comments.

Suppression semantics:

* a suppression comment on a code line covers that line;
* a standalone comment line covers the immediately following line;
* multiple codes may be comma-separated (``disable=RPL003,RPL005``).
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .findings import Finding
from .rules import RULES, ModuleContext

__all__ = [
    "DEFAULT_EXCLUDED_DIRS",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
]

# Directory names never descended into.  ``fixtures`` holds the linter's
# own known-bad test corpus — it must stay red without failing the repo.
DEFAULT_EXCLUDED_DIRS = ("fixtures", "__pycache__", ".git", "build", "dist")

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of suppressed rule codes."""
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
        target = lineno + 1 if line.lstrip().startswith("#") else lineno
        suppressed.setdefault(target, set()).update(codes)
        if target != lineno:
            # A standalone comment also covers itself (degenerate case of
            # a rule pointing at the comment line).
            suppressed.setdefault(lineno, set()).update(codes)
    return suppressed


def _selected_rules(
    select: Optional[Iterable[str]] = None, ignore: Optional[Iterable[str]] = None
) -> List[str]:
    codes = sorted(RULES)
    if select:
        wanted = {code.upper() for code in select}
        unknown = wanted - set(codes)
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
        codes = [code for code in codes if code in wanted]
    if ignore:
        dropped = {code.upper() for code in ignore}
        unknown = dropped - set(RULES)
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
        codes = [code for code in codes if code not in dropped]
    return codes


def lint_source(
    source: str,
    path: str,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module's source text as if it lived at ``path``.

    ``path`` drives every path-scoped rule (whitelists, test detection),
    which is also what makes the fixture corpus testable: fixtures can be
    linted *as if* they sat anywhere in the tree.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                code="RPL000",
                rule="parse-error",
                path=path,
                line=error.lineno or 0,
                col=(error.offset or 1) - 1,
                message=f"could not parse file: {error.msg}",
            )
        ]
    context = ModuleContext(tree=tree, path=path, source=source)
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    for code in _selected_rules(select, ignore):
        for finding in RULES[code].run(context):
            if finding.code in suppressions.get(finding.line, ()):
                continue
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: str,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    cache=None,
) -> List[Finding]:
    """Lint one file on disk (optionally through a
    :class:`~repro.analysis.cache.LintCache`)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    if cache is not None:
        key = cache.file_key(path, source, _selected_rules(select, ignore))
        cached = cache.get(key)
        if cached is not None:
            return cached
    findings = lint_source(source, path, select=select, ignore=ignore)
    if cache is not None:
        cache.put(key, findings)
    return findings


def iter_python_files(
    paths: Sequence[str],
    excluded_dirs: Sequence[str] = DEFAULT_EXCLUDED_DIRS,
) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    excluded = set(excluded_dirs)
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in excluded)
            for name in sorted(files):
                if name.endswith(".py"):
                    found.append(os.path.join(root, name))
    return sorted(dict.fromkeys(found))


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    excluded_dirs: Sequence[str] = DEFAULT_EXCLUDED_DIRS,
    cache=None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    findings: List[Finding] = []
    for path in iter_python_files(paths, excluded_dirs=excluded_dirs):
        findings.extend(lint_file(path, select=select, ignore=ignore, cache=cache))
    findings.sort(key=Finding.sort_key)
    return findings
