"""Whole-program analysis driver: RPL013–RPL016 over the call graph.

Where :mod:`repro.analysis.engine` runs per-file rules over one module
at a time, this driver parses *every* module into one
:class:`~repro.analysis.callgraph.ProgramIndex` and runs interprocedural
rules that need the cross-module view:

* **RPL013** lock-order-cycle — global lock-acquisition graph, cycles
  reported with full acquisition paths (:mod:`repro.analysis.lockflow`);
* **RPL014** rng-provenance — every RNG in distributed code traced back
  to a sanctioned root (:mod:`repro.analysis.rngflow`);
* **RPL015** fork-reachability — RPL011 extended to the transitive
  closure of the worker entrypoints (:mod:`repro.analysis.rngflow`);
* **RPL016** blocking-call-under-lock — socket/pipe/sleep blocking while
  holding a lock (:mod:`repro.analysis.lockflow`).

Suppressions use the same ``# reprolint: disable=RPLxxx`` comments as
the per-file engine, applied against the file the finding points into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .callgraph import ProgramIndex, build_program_index
from .engine import DEFAULT_EXCLUDED_DIRS, iter_python_files, parse_suppressions
from .findings import Finding

__all__ = [
    "PROGRAM_RULES",
    "ProgramContext",
    "ProgramRule",
    "analyze_files",
    "analyze_program",
    "program_rule",
    "program_rule_table",
]


class ProgramContext:
    """Everything a whole-program rule gets to look at."""

    def __init__(self, index: ProgramIndex):
        self.index = index

    def path_of(self, module: str) -> str:
        info = self.index.modules.get(module)
        return info.path if info is not None else ""

    def is_test_module(self, module: str) -> bool:
        path = self.path_of(module).replace("\\", "/")
        name = path.rsplit("/", 1)[-1]
        if "fixtures" in path.split("/"):
            # Fixture corpora simulate product code and must stay in
            # scope even though they live under tests/.
            return False
        return (
            "/tests/" in path
            or path.startswith("tests/")
            or name.startswith("test_")
            or name.endswith("_test.py")
        )


@dataclass(frozen=True)
class ProgramRule:
    """One registered whole-program rule."""

    code: str
    name: str
    description: str
    check: Callable[[ProgramContext], List[Finding]]

    def run(self, context: ProgramContext) -> List[Finding]:
        return list(self.check(context))


PROGRAM_RULES: Dict[str, ProgramRule] = {}


def program_rule(code: str, name: str, description: str):
    """Register a whole-program rule (same idiom as ``@rule`` in rules.py)."""

    def decorate(func: Callable[[ProgramContext], List[Finding]]):
        if code in PROGRAM_RULES:
            raise ValueError(f"duplicate program rule code {code}")
        PROGRAM_RULES[code] = ProgramRule(
            code=code, name=name, description=description, check=func
        )
        return func

    return decorate


def program_rule_table() -> List[Tuple[str, str, str]]:
    """(code, name, description) rows for ``--list-rules``."""
    return [
        (rule.code, rule.name, rule.description)
        for rule in sorted(PROGRAM_RULES.values(), key=lambda r: r.code)
    ]


def _selected(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[str]:
    codes = sorted(PROGRAM_RULES)
    if select is not None:
        wanted = {c.upper() for c in select}
        codes = [c for c in codes if c in wanted]
    if ignore is not None:
        dropped = {c.upper() for c in ignore}
        codes = [c for c in codes if c not in dropped]
    return codes


def analyze_files(
    files: Sequence[Tuple[str, str]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the program rules over ``(path, source)`` pairs.

    Unknown codes in ``select``/``ignore`` are *not* an error here — the
    CLI validates against the combined per-file + program registries and
    each engine simply skips codes it does not own.
    """
    codes = _selected(select, ignore)
    if not codes:
        return []
    index = build_program_index(files)
    context = ProgramContext(index)
    suppressions = {
        info.path: parse_suppressions(info.source)
        for info in index.modules.values()
    }
    findings: List[Finding] = []
    for code in codes:
        for finding in PROGRAM_RULES[code].run(context):
            if finding.code in suppressions.get(finding.path, {}).get(
                finding.line, ()
            ):
                continue
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_program(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    excluded_dirs: Sequence[str] = DEFAULT_EXCLUDED_DIRS,
) -> List[Finding]:
    """Discover files under ``paths`` and run the whole-program pass."""
    files: List[Tuple[str, str]] = []
    for path in iter_python_files(paths, excluded_dirs=excluded_dirs):
        with open(path, "r", encoding="utf-8") as handle:
            files.append((path, handle.read()))
    return analyze_files(files, select=select, ignore=ignore)


# Importing the rule modules registers RPL013–RPL016 and RPL019.
from . import lockflow as _lockflow  # noqa: E402,F401
from . import rngflow as _rngflow  # noqa: E402,F401
from . import asyncflow as _asyncflow  # noqa: E402,F401
