"""Shared utilities: seeding and plain-text rendering."""

from .ascii_plot import ascii_line_chart, sparkline
from .seeding import rng_from, spawn_rngs
from .tables import ascii_heatmap, format_series, format_table

__all__ = [
    "rng_from",
    "spawn_rngs",
    "ascii_heatmap",
    "format_series",
    "format_table",
    "ascii_line_chart",
    "sparkline",
]
