"""Plain-text table and series rendering for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; these
helpers print them in the same rows/series layout so a reader can put the
bench output next to the paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series", "ascii_heatmap"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render rows as an aligned monospace table."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], precision: int = 3
) -> str:
    """One figure series as ``name: (x, y) (x, y) ...``."""
    points = " ".join(
        f"({x}, {y:.{precision}f})" for x, y in zip(xs, ys)
    )
    return f"{name}: {points}"


#: Shade ramp used by :func:`ascii_heatmap`, dark to bright.
_SHADES = " .:-=+*#%@"


def ascii_heatmap(grid, title: str = "") -> str:
    """Render a 2-D array as an ASCII heat map (row 0 at the bottom).

    Used to print the Fig. 9 curiosity visualizations in terminals.
    """
    import numpy as np

    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D array, got shape {grid.shape}")
    low, high = float(grid.min()), float(grid.max())
    span = high - low
    lines = []
    if title:
        lines.append(title)
    for row in grid[::-1]:
        if span <= 0:
            indices = [0] * len(row)
        else:
            indices = (
                ((row - low) / span) * (len(_SHADES) - 1)
            ).astype(int).tolist()
        lines.append("".join(_SHADES[i] for i in indices))
    return "\n".join(lines)
