"""ASCII line charts for terminal-only environments.

The reproduction runs in environments without a plotting stack, so
learning curves (Figs. 4-5) and sweep series (Figs. 6-8) can be rendered
as monospace charts: multiple named series, automatic y-scaling, one glyph
per series, and a legend.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["ascii_line_chart", "sparkline"]

_GLYPHS = "ox+*#@%&"
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _downsample(ys: np.ndarray, width: int) -> np.ndarray:
    """Mean-pool a series to at most ``width`` points."""
    if len(ys) <= width:
        return ys
    edges = np.linspace(0, len(ys), width + 1).astype(int)
    return np.array([ys[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])


def ascii_line_chart(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named series as one monospace chart.

    Parameters
    ----------
    series:
        Mapping of name -> y-values.  Series of different lengths are each
        mean-pooled onto the chart width, so curves with different episode
        counts remain comparable per-fraction-of-training.
    width, height:
        Plot area size in characters (axes excluded).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 3:
        raise ValueError(f"chart too small: {width}x{height}")

    sampled = {
        name: _downsample(np.asarray(ys, dtype=np.float64), width)
        for name, ys in series.items()
        if len(ys) > 0
    }
    if not sampled:
        raise ValueError("all series are empty")

    low = min(float(ys.min()) for ys in sampled.values())
    high = max(float(ys.max()) for ys in sampled.values())
    if high == low:
        high = low + 1.0

    canvas = [[" "] * width for __ in range(height)]
    for index, (name, ys) in enumerate(sampled.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        xs = np.linspace(0, width - 1, len(ys)).astype(int)
        rows = ((ys - low) / (high - low) * (height - 1)).round().astype(int)
        for x, row in zip(xs, rows):
            canvas[height - 1 - row][x] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{high:.3g}"
    bottom_label = f"{low:.3g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for i, row in enumerate(canvas):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{margin}} |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(sampled)
    )
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)


def sparkline(ys: Sequence[float], width: int = 40) -> str:
    """A one-line unicode sparkline of a series."""
    ys = np.asarray(ys, dtype=np.float64)
    if ys.size == 0:
        return ""
    ys = _downsample(ys, width)
    low, high = float(ys.min()), float(ys.max())
    if high == low:
        return _SPARK_LEVELS[0] * len(ys)
    levels = ((ys - low) / (high - low) * (len(_SPARK_LEVELS) - 1)).round().astype(int)
    return "".join(_SPARK_LEVELS[level] for level in levels)
