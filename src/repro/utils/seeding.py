"""Seed management helpers.

Every stochastic component in the reproduction takes an explicit
``numpy.random.Generator``; these helpers derive independent child
generators from one master seed so whole experiments are replayable.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["spawn_rngs", "rng_from"]


def rng_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed, generator or None into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """``count`` statistically independent generators from one seed."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]
