"""Deterministic fault injection for the chief–employee trainer.

Production-scale distributed RL treats employee failure as routine: an
actor crashes mid-rollout, a straggler holds the synchronous barrier
hostage, a numerically unstable minibatch ships a NaN gradient, or the
process dies halfway through a checkpoint write.  None of those paths can
be trusted unless they are *testable*, so this module provides a seeded,
fully deterministic fault harness:

* :class:`FaultPlan` — an immutable schedule of fault events (crashes,
  straggler delays, gradient corruption, checkpoint-write interruptions),
  either hand-written for targeted tests or generated from a seed via
  :meth:`FaultPlan.random` for randomized fault matrices;
* :class:`FaultInjector` — the runtime object the trainer / checkpoint
  writer consults at each hook point.  It fires each event at most its
  configured number of ``times`` (so transient faults recover on retry)
  and records everything it fired for post-mortem assertions.

The injector is strictly passive: with an empty plan every hook is a
no-op, which is what keeps the fault-free path bitwise identical to the
un-instrumented trainer.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FaultError",
    "InjectedCrash",
    "InjectedCheckpointInterrupt",
    "CrashFault",
    "StragglerFault",
    "CorruptionFault",
    "CheckpointFault",
    "FaultPlan",
    "FaultInjector",
]

EXPLORE_ROUND = -1
"""Round index used for the exploration phase (before the K update rounds)."""

CORRUPTION_MODES = ("nan", "inf", "explode")


class FaultError(Exception):
    """Base class of every injected failure."""


class InjectedCrash(FaultError):
    """An employee 'process' died (raised inside its task)."""


class InjectedCheckpointInterrupt(FaultError):
    """The checkpoint writer was killed mid-write (before the atomic rename)."""


# ----------------------------------------------------------------------
# Fault specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashFault:
    """Employee ``employee`` raises :class:`InjectedCrash` in ``episode``.

    ``round`` selects the phase: :data:`EXPLORE_ROUND` (default) crashes the
    rollout, ``k >= 0`` crashes the k-th gradient round.  ``times`` bounds
    how many attempts fail — ``times=1`` is a transient crash that succeeds
    on the first retry; a large value is a hard failure for the episode.
    """

    employee: int
    episode: int
    round: int = EXPLORE_ROUND
    times: int = 1


@dataclass(frozen=True)
class StragglerFault:
    """Employee ``employee`` sleeps ``delay`` seconds before its task."""

    employee: int
    episode: int
    delay: float
    round: int = EXPLORE_ROUND
    times: int = 1


@dataclass(frozen=True)
class CorruptionFault:
    """Corrupt one gradient contribution before it reaches the buffer.

    ``mode``: ``"nan"`` / ``"inf"`` poison the first gradient array;
    ``"explode"`` multiplies every array by ``1e12`` (caught by the
    norm-quarantine, not the finiteness check).  ``buffer`` selects the
    PPO (``"policy"``) or curiosity gradient list.
    """

    employee: int
    episode: int
    round: int = 0
    mode: str = "nan"
    buffer: str = "policy"
    times: int = 1

    def __post_init__(self) -> None:
        if self.mode not in CORRUPTION_MODES:
            raise ValueError(
                f"mode must be one of {CORRUPTION_MODES}, got {self.mode!r}"
            )
        if self.buffer not in ("policy", "curiosity"):
            raise ValueError(
                f"buffer must be 'policy' or 'curiosity', got {self.buffer!r}"
            )


@dataclass(frozen=True)
class CheckpointFault:
    """Interrupt the ``save_index``-th checkpoint write (0-based).

    ``truncate`` additionally truncates the temporary file first, simulating
    a partial write; the atomic-rename scheme must leave the previous
    checkpoint untouched either way.
    """

    save_index: int
    truncate: bool = True


FaultSpec = object  # CrashFault | StragglerFault | CorruptionFault | CheckpointFault


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """An immutable, fully deterministic schedule of fault events."""

    events: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        allowed = (CrashFault, StragglerFault, CorruptionFault, CheckpointFault)
        for event in self.events:
            if not isinstance(event, allowed):
                raise TypeError(f"unknown fault spec {event!r}")

    @property
    def empty(self) -> bool:
        return not self.events

    def of_type(self, kind) -> List[FaultSpec]:
        return [e for e in self.events if isinstance(e, kind)]

    @classmethod
    def random(
        cls,
        seed: int,
        num_employees: int,
        episodes: int,
        k_updates: int = 1,
        crash_rate: float = 0.0,
        straggler_rate: float = 0.0,
        straggler_delay: float = 0.05,
        corrupt_rate: float = 0.0,
        corruption_mode: str = "nan",
        checkpoint_interrupts: Sequence[int] = (),
    ) -> "FaultPlan":
        """Generate a randomized (but seed-deterministic) fault matrix.

        Each (employee, episode) cell independently draws a crash and a
        straggler event for the exploration phase, and each
        (employee, episode, round) cell draws a corruption event.  The same
        seed always yields the same plan.
        """
        rng = np.random.default_rng(seed)
        events: List[FaultSpec] = []
        for episode in range(episodes):
            for employee in range(num_employees):
                if crash_rate and rng.random() < crash_rate:
                    events.append(CrashFault(employee, episode))
                if straggler_rate and rng.random() < straggler_rate:
                    events.append(
                        StragglerFault(employee, episode, delay=straggler_delay)
                    )
                for round_index in range(k_updates):
                    if corrupt_rate and rng.random() < corrupt_rate:
                        events.append(
                            CorruptionFault(
                                employee,
                                episode,
                                round=round_index,
                                mode=corruption_mode,
                            )
                        )
        for save_index in checkpoint_interrupts:
            events.append(CheckpointFault(int(save_index)))
        return cls(events=tuple(events))


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Runtime driver of a :class:`FaultPlan`.

    Thread-safe: the threaded trainer calls the hooks from worker threads.
    Every fired event is appended to :attr:`fired` (a list of
    ``(spec, context)`` tuples) for post-mortem assertions.
    """

    def __init__(self, plan: Optional[FaultPlan] = None, sleep=time.sleep):
        self.plan = plan if plan is not None else FaultPlan()
        self._sleep = sleep
        self._lock = threading.Lock()
        self._fire_counts: Dict[int, int] = {}
        self._save_index = 0
        self.fired: List[Tuple[FaultSpec, str]] = []

    # -- internals ------------------------------------------------------
    def _should_fire(self, event) -> bool:
        """Atomically consume one firing of ``event`` if any remain."""
        key = id(event)
        with self._lock:
            count = self._fire_counts.get(key, 0)
            if count >= getattr(event, "times", 1):
                return False
            self._fire_counts[key] = count + 1
            return True

    def _record(self, event, context: str) -> None:
        with self._lock:
            self.fired.append((event, context))

    def fired_of(self, kind) -> List[FaultSpec]:
        """All fired events of one spec type (for test assertions)."""
        with self._lock:
            return [event for event, __ in self.fired if isinstance(event, kind)]

    # -- trainer hooks --------------------------------------------------
    def before_task(self, employee: int, episode: int, round: int) -> None:
        """Called before an employee task; may sleep and/or raise.

        Stragglers fire before crashes so a single (employee, episode,
        round) cell can model a slow-then-dead worker.
        """
        for event in self.plan.events:
            if (
                isinstance(event, StragglerFault)
                and event.employee == employee
                and event.episode == episode
                and event.round == round
                and self._should_fire(event)
            ):
                self._record(event, f"straggle e{employee} ep{episode} r{round}")
                self._sleep(event.delay)
        for event in self.plan.events:
            if (
                isinstance(event, CrashFault)
                and event.employee == employee
                and event.episode == episode
                and event.round == round
                and self._should_fire(event)
            ):
                self._record(event, f"crash e{employee} ep{episode} r{round}")
                raise InjectedCrash(
                    f"injected crash: employee {employee}, episode {episode}, "
                    f"round {round}"
                )

    def corrupt_arrays(
        self,
        employee: int,
        episode: int,
        round: int,
        arrays: Sequence[np.ndarray],
        buffer: str = "policy",
    ) -> None:
        """Corrupt a gradient list in place per any matching CorruptionFault."""
        if not arrays:
            return
        for event in self.plan.events:
            if (
                isinstance(event, CorruptionFault)
                and event.employee == employee
                and event.episode == episode
                and event.round == round
                and event.buffer == buffer
                and self._should_fire(event)
            ):
                self._record(
                    event, f"corrupt({event.mode}) e{employee} ep{episode} r{round}"
                )
                if event.mode == "nan":
                    arrays[0][...] = np.nan
                elif event.mode == "inf":
                    arrays[0][...] = np.inf
                else:  # explode
                    for array in arrays:
                        array *= 1e12

    # -- checkpoint hook ------------------------------------------------
    def on_checkpoint_write(self, tmp_path: str) -> None:
        """Called after the temp file is written, before the atomic rename.

        Raises :class:`InjectedCheckpointInterrupt` if this save is
        scheduled to die; optionally truncates the temp file first to
        simulate a partial write.
        """
        with self._lock:
            save_index = self._save_index
            self._save_index += 1
        for event in self.plan.events:
            if (
                isinstance(event, CheckpointFault)
                and event.save_index == save_index
                and self._should_fire(event)
            ):
                self._record(event, f"ckpt-interrupt save#{save_index}")
                if event.truncate:
                    try:
                        with open(tmp_path, "r+b") as handle:
                            handle.truncate(max(handle.seek(0, 2) // 2, 1))
                    except OSError:
                        pass
                raise InjectedCheckpointInterrupt(
                    f"injected checkpoint interrupt at save #{save_index}"
                )
