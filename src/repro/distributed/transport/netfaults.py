"""Seeded, deterministic network-fault injection at the frame level.

The PR 1 fault harness (:mod:`repro.distributed.faults`) models *task*
failures — crashes, stragglers, corrupt gradients.  Networks fail
differently: frames vanish, arrive twice, arrive late, arrive damaged,
or a host partitions and nothing arrives at all.  This module extends
the same plan/injector idiom to the frame boundary of the socket
transport:

* :class:`NetworkFaultPlan` — an immutable schedule of frame-level
  events, hand-written for targeted tests or generated from a seed via
  :meth:`NetworkFaultPlan.random` for chaos matrices;
* :class:`NetworkFaultInjector` — consulted by the chief's
  :class:`~repro.distributed.transport.socket_transport.SocketChiefChannel`
  on every outbound frame (:meth:`on_send`) and every parsed inbound
  frame (:meth:`on_recv`).  Each event fires at most ``times`` times and
  everything fired is recorded for post-mortem assertions.

Chaos is injected **chief-side only**, at the frame boundary: outbound
frames can be dropped, duplicated, delayed or bit-flipped before they
reach the kernel; inbound frames can be dropped, delayed, or treated as
CRC casualties after parsing.  A :class:`PartitionFault` opens a
wall-clock window during which *every* frame to and from one employee is
dropped — the triggering command included — which is exactly what a
mid-round network partition looks like to the chief: silence, then
heartbeat loss, then the degraded-quorum path.

Matching uses ``None`` as a wildcard for ``op`` / ``episode`` /
``round``, so ``DropFrameFault(employee=1, op="minibatch",
episode=None, round=None)`` drops every MINIBATCH command to employee 1
while ``times`` permits.  With an empty plan every hook is a no-op and
the socket path stays bitwise-identical to the fault-free run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CorruptFrameFault",
    "DelayFrameFault",
    "DropFrameFault",
    "DuplicateFrameFault",
    "NetworkFaultInjector",
    "NetworkFaultPlan",
    "PartitionFault",
]

#: Frame selectors exposed to plans: command opcodes plus worker->chief kinds.
FRAME_OPS = (
    "sync",
    "explore",
    "minibatch",
    "shutdown",
    "tensors",
    "reply",
    "heartbeat",
)


def _check_direction(direction: str) -> None:
    if direction not in ("send", "recv"):
        raise ValueError(f"direction must be 'send' or 'recv', got {direction!r}")


@dataclass(frozen=True)
class DropFrameFault:
    """Silently discard a matching frame (``direction`` is chief-relative)."""

    employee: int
    op: Optional[str] = None
    episode: Optional[int] = None
    round: Optional[int] = None
    direction: str = "send"
    times: int = 1

    def __post_init__(self) -> None:
        _check_direction(self.direction)


@dataclass(frozen=True)
class DelayFrameFault:
    """Hold a matching frame for ``delay`` seconds before delivery."""

    employee: int
    delay: float
    op: Optional[str] = None
    episode: Optional[int] = None
    round: Optional[int] = None
    direction: str = "send"
    times: int = 1

    def __post_init__(self) -> None:
        _check_direction(self.direction)


@dataclass(frozen=True)
class DuplicateFrameFault:
    """Deliver a matching outbound frame twice (dup-suppression test)."""

    employee: int
    op: Optional[str] = None
    episode: Optional[int] = None
    round: Optional[int] = None
    times: int = 1


@dataclass(frozen=True)
class CorruptFrameFault:
    """Flip bits in a matching frame.

    Outbound frames are genuinely bit-flipped on the wire (the worker's
    CRC check rejects them and the stream is torn down + redialled);
    inbound frames are rejected at the chief's parse boundary, the
    observable equivalent of a CRC failure.
    """

    employee: int
    op: Optional[str] = None
    episode: Optional[int] = None
    round: Optional[int] = None
    direction: str = "send"
    times: int = 1

    def __post_init__(self) -> None:
        _check_direction(self.direction)


@dataclass(frozen=True)
class PartitionFault:
    """Drop *everything* to/from one employee for ``duration`` seconds.

    The window opens when a command matching ``op``/``episode``/``round``
    is sent (the triggering command is itself dropped) — modelling a
    partition that lands mid-round, after the chief committed to the
    phase.
    """

    employee: int
    duration: float
    op: Optional[str] = None
    episode: Optional[int] = None
    round: Optional[int] = None
    times: int = 1


NetworkFaultSpec = object  # any of the dataclasses above


@dataclass(frozen=True)
class NetworkFaultPlan:
    """An immutable, fully deterministic schedule of frame-level events."""

    events: Tuple[NetworkFaultSpec, ...] = ()

    def __post_init__(self) -> None:
        allowed = (
            DropFrameFault,
            DelayFrameFault,
            DuplicateFrameFault,
            CorruptFrameFault,
            PartitionFault,
        )
        for event in self.events:
            if not isinstance(event, allowed):
                raise TypeError(f"unknown network fault spec {event!r}")
            if event.op is not None and event.op not in FRAME_OPS:
                raise ValueError(
                    f"op must be one of {FRAME_OPS} or None, got {event.op!r}"
                )

    @property
    def empty(self) -> bool:
        return not self.events

    def of_type(self, kind) -> List[NetworkFaultSpec]:
        return [e for e in self.events if isinstance(e, kind)]

    @classmethod
    def random(
        cls,
        seed: int,
        num_employees: int,
        episodes: int,
        k_updates: int = 1,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay: float = 0.05,
        partition_rate: float = 0.0,
        partition_duration: float = 0.2,
    ) -> "NetworkFaultPlan":
        """A seed-deterministic chaos matrix.

        Each (employee, episode, command-op, round) cell independently
        draws drop/duplicate/corrupt/delay events, and each
        (employee, episode) cell draws at most one partition window.
        The same seed always yields the same plan.
        """
        rng = np.random.default_rng(seed)
        events: List[NetworkFaultSpec] = []
        cells: List[Tuple[str, Optional[int]]] = [("sync", None), ("explore", None)]
        cells += [("minibatch", round_index) for round_index in range(k_updates)]
        for episode in range(episodes):
            for employee in range(num_employees):
                for op, round_index in cells:
                    if drop_rate and rng.random() < drop_rate:
                        events.append(
                            DropFrameFault(
                                employee, op=op, episode=episode, round=round_index
                            )
                        )
                    if duplicate_rate and rng.random() < duplicate_rate:
                        events.append(
                            DuplicateFrameFault(
                                employee, op=op, episode=episode, round=round_index
                            )
                        )
                    if corrupt_rate and rng.random() < corrupt_rate:
                        events.append(
                            CorruptFrameFault(
                                employee, op=op, episode=episode, round=round_index
                            )
                        )
                    if delay_rate and rng.random() < delay_rate:
                        events.append(
                            DelayFrameFault(
                                employee,
                                delay=delay,
                                op=op,
                                episode=episode,
                                round=round_index,
                            )
                        )
                if partition_rate and rng.random() < partition_rate:
                    events.append(
                        PartitionFault(
                            employee,
                            duration=partition_duration,
                            episode=episode,
                        )
                    )
        return cls(events=tuple(events))


class NetworkFaultInjector:
    """Runtime driver of a :class:`NetworkFaultPlan` (thread-safe).

    The socket channel calls :meth:`on_send` with every outbound frame
    batch and :meth:`on_recv` for every parsed inbound frame.  Fired
    events land in :attr:`fired` as ``(spec, context)`` tuples.
    """

    def __init__(self, plan: Optional[NetworkFaultPlan] = None, sleep=time.sleep):
        self.plan = plan if plan is not None else NetworkFaultPlan()
        self._sleep = sleep
        self._lock = threading.Lock()
        self._fire_counts: Dict[int, int] = {}
        #: employee -> partition-window end (time.monotonic seconds).
        self._partitions: Dict[int, float] = {}
        self.fired: List[Tuple[NetworkFaultSpec, str]] = []

    # -- internals ------------------------------------------------------
    def _should_fire(self, event) -> bool:
        key = id(event)
        with self._lock:
            count = self._fire_counts.get(key, 0)
            if count >= getattr(event, "times", 1):
                return False
            self._fire_counts[key] = count + 1
            return True

    def _record(self, event, context: str) -> None:
        with self._lock:
            self.fired.append((event, context))

    def fired_of(self, kind) -> List[NetworkFaultSpec]:
        with self._lock:
            return [event for event, __ in self.fired if isinstance(event, kind)]

    @staticmethod
    def _matches(event, employee: int, op: str, episode: int, round_index: int) -> bool:
        if event.employee != employee:
            return False
        if event.op is not None and event.op != op:
            return False
        if event.episode is not None and event.episode != episode:
            return False
        if event.round is not None and event.round != round_index:
            return False
        return True

    def partitioned(self, employee: int) -> bool:
        """True while ``employee`` is inside an open partition window."""
        with self._lock:
            until = self._partitions.get(employee)
            if until is None:
                return False
            if time.monotonic() >= until:
                del self._partitions[employee]
                return False
            return True

    # -- channel hooks --------------------------------------------------
    def on_send(
        self,
        employee: int,
        op: str,
        episode: int,
        round_index: int,
        frames: Sequence[bytes],
    ) -> List[bytes]:
        """Filter/mutate an outbound frame batch; may sleep (delay faults)."""
        for event in self.plan.events:
            if (
                isinstance(event, PartitionFault)
                and self._matches(event, employee, op, episode, round_index)
                and self._should_fire(event)
            ):
                with self._lock:
                    self._partitions[employee] = time.monotonic() + event.duration
                self._record(
                    event,
                    f"partition e{employee} {op} ep{episode} r{round_index} "
                    f"for {event.duration}s",
                )
        if self.partitioned(employee):
            return []
        out = list(frames)
        for event in self.plan.events:
            if not self._matches(event, employee, op, episode, round_index):
                continue
            if isinstance(event, DelayFrameFault) and event.direction == "send":
                if self._should_fire(event):
                    self._record(event, f"delay-send e{employee} {op} ep{episode}")
                    self._sleep(event.delay)
            elif isinstance(event, DropFrameFault) and event.direction == "send":
                if out and self._should_fire(event):
                    self._record(event, f"drop-send e{employee} {op} ep{episode}")
                    out = []
            elif isinstance(event, DuplicateFrameFault):
                if out and self._should_fire(event):
                    self._record(event, f"duplicate e{employee} {op} ep{episode}")
                    out = out + out
            elif isinstance(event, CorruptFrameFault) and event.direction == "send":
                if out and self._should_fire(event):
                    self._record(event, f"corrupt-send e{employee} {op} ep{episode}")
                    out = [self._flip(frame) for frame in out]
        return out

    def on_recv(
        self, employee: int, kind: str, episode: int, round_index: int
    ) -> str:
        """Disposition for one parsed inbound frame.

        Returns ``"deliver"``, ``"drop"`` (silent loss) or ``"corrupt"``
        (the channel must treat the frame as a CRC casualty).  Delay
        faults sleep here before delivery.
        """
        if self.partitioned(employee):
            return "drop"
        action = "deliver"
        for event in self.plan.events:
            if not self._matches(event, employee, kind, episode, round_index):
                continue
            if isinstance(event, DelayFrameFault) and event.direction == "recv":
                if self._should_fire(event):
                    self._record(event, f"delay-recv e{employee} {kind} ep{episode}")
                    self._sleep(event.delay)
            elif isinstance(event, DropFrameFault) and event.direction == "recv":
                if self._should_fire(event):
                    self._record(event, f"drop-recv e{employee} {kind} ep{episode}")
                    action = "drop"
            elif isinstance(event, CorruptFrameFault) and event.direction == "recv":
                if self._should_fire(event):
                    self._record(event, f"corrupt-recv e{employee} {kind} ep{episode}")
                    action = "corrupt"
        return action

    @staticmethod
    def _flip(frame: bytes) -> bytes:
        """Flip one payload bit so the peer's CRC check must reject it."""
        if not frame:
            return frame
        mutated = bytearray(frame)
        mutated[-1] ^= 0x01
        return bytes(mutated)
