"""Multi-host socket transport: framed TCP with heartbeats and reconnect.

The chief owns one listening TCP socket; every employee worker dials in
and authenticates with the pool's secret token (HELLO → WELCOME).  All
traffic then flows as CRC32-checksummed frames (:mod:`.framing`) with
tensor payloads encoded by :mod:`.wire`.

Reliability model
-----------------
TCP already gives in-order delivery *per connection*; everything above
it exists for the failure modes TCP does not cover — dropped
connections, silent peer death, partitions, and the injected chaos of
:mod:`.netfaults`:

* **Heartbeats** — each worker runs a beacon thread sending a HEARTBEAT
  frame every ``heartbeat_interval``.  The chief tracks ``last_seen``
  per employee at frame-receive time; silence beyond
  ``heartbeat_timeout`` while the chief is waiting raises
  :class:`~repro.distributed.transport.base.ChannelClosed`, which the
  pool maps onto ``WorkerDied`` → the trainer's existing
  crash/restart/degraded-quorum bookkeeping.  A *straggler* keeps its
  heartbeats flowing and therefore times out softly (FuturesTimeoutError,
  retried) — heartbeats are what let the chief tell slow from dead.
* **Command retransmission** — the chief keeps the frames of the one
  in-flight command per worker and re-sends them with capped exponential
  backoff + deterministic jitter until the reply arrives.  Workers
  deduplicate by ``seq`` and answer a duplicate by re-sending the cached
  reply frames *without re-executing* — a command consumes worker RNG at
  most once, which is what keeps the socket backend bitwise-identical to
  the process backend.
* **Reconnect + generations** — a worker that loses its connection
  redials and re-HELLOs with its generation number.  The chief
  re-attaches a matching generation (the in-flight command is simply
  retransmitted over the fresh connection); a *stale* generation — the
  worker was already given up on and revived — is refused at WELCOME
  time so a zombie can never inject frames into its successor's session.
  Every revive bumps the generation and the replacement is re-SYNCed
  from the chief's authoritative weight + RNG mirrors.

Determinism: none of this machinery touches training RNG streams.  The
default ``float64`` wire encoding round-trips exact bytes, commands are
strictly serial per worker, and replies are collected in the same order
as the pipe transport — the loopback bitwise gate in the test suite
holds the proof.
"""

from __future__ import annotations

import dataclasses
import pickle
import secrets
import select
import socket
import struct
import threading
import time
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...obs.log import get_logger
from ...obs.metrics import get_registry
from .base import ChannelClosed, ChiefChannel, EndpointSpec, Transport, WorkerEndpoint
from .framing import (
    FrameAssembler,
    FrameError,
    T_CONTROL,
    T_HEARTBEAT,
    T_HELLO,
    T_TENSORS,
    T_WELCOME,
    decode_control,
    encode_control,
    encode_frame,
    frame_type_name,
)
from .netfaults import NetworkFaultInjector
from .wire import WIRE_DTYPES, decode_tensors, encode_tensors

_LOG = get_logger(__name__)

__all__ = [
    "ANY_GENERATION",
    "SocketChiefChannel",
    "SocketTransport",
    "SocketWorkerEndpoint",
]

#: Opcode of the SYNC command (mirrors procpool.OP_SYNC without importing
#: it — procpool imports *us*).
_OP_SYNC = "sync"

_RECV_CHUNK = 1 << 20
_HANDSHAKE_TIMEOUT = 10.0

#: External workers HELLO with this generation to mean "assign me one".
ANY_GENERATION = -1


def _jitter01(index: int, seq: int, attempt: int) -> float:
    """Deterministic jitter in [0, 1): seeded by (worker, seq, attempt)."""
    digest = zlib.crc32(f"{index}:{seq}:{attempt}".encode())
    return (digest % 1000) / 1000.0


def _backoff(base: float, cap: float, attempt: int, jitter: float) -> float:
    return min(cap, base * (2.0 ** attempt)) * (1.0 + 0.25 * jitter)


class _Stream:
    """One live TCP connection: socket + its frame assembler."""

    __slots__ = ("sock", "assembler")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.assembler = FrameAssembler()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class _Pending:
    """The one in-flight command, kept for retransmission."""

    __slots__ = ("seq", "op", "episode", "round", "frames", "sent_at", "last_tx", "attempt")

    def __init__(
        self,
        seq: int,
        op: str,
        episode: int,
        round_index: int,
        frames: List[bytes],
        now: float,
    ):
        self.seq = seq
        self.op = op
        self.episode = episode
        self.round = round_index
        self.frames = frames
        self.sent_at = now
        self.last_tx = now
        self.attempt = 0


class SocketChiefChannel(ChiefChannel):
    """Chief side of one framed-TCP worker link.

    Thread model: the chief main thread drives the protocol; the
    transport's accept thread only swaps in freshly handshaken
    connections.  All mutable state is guarded by ``self._cond``;
    blocking socket reads happen outside it on a local stream reference
    that is re-validated before its frames are applied.
    """

    def __init__(self, transport: "SocketTransport", index: int):
        self.index = index
        self._transport = transport
        self.shapes = transport.shapes
        self._cond = threading.Condition()
        self._stream: Optional[_Stream] = None
        self._generation = 0
        self._down_since: Optional[float] = None
        self._last_seen = time.monotonic()
        self._replies: List[Tuple[str, int, object]] = []
        self._tensors: Dict[int, object] = {}
        self._pending: Optional[_Pending] = None
        self._staged_weights: Optional[bytes] = None
        self._delivered_seq = 0
        self._peer: str = ""
        self._closed = False
        self.welcome_extra: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def arm(self):
        return None  # the worker dials in; nothing to hand to fork

    def post_spawn(self, spawn_handle) -> None:
        return None

    def endpoint_spec(self) -> EndpointSpec:
        transport = self._transport
        with self._cond:
            generation = self._generation
        return EndpointSpec(
            kind="socket",
            index=self.index,
            shapes=self.shapes,
            address=transport.address,
            token=transport.token,
            generation=generation,
            wire_dtype=transport.wire_dtype,
            heartbeat_interval=transport.heartbeat_interval,
            connect_timeout=transport.connect_timeout,
            connect_backoff=transport.connect_backoff,
            connect_backoff_cap=transport.connect_backoff_cap,
            read_timeout=transport.read_timeout,
        )

    def reset_for_revive(self) -> None:
        with self._cond:
            self._generation += 1
            if self._stream is not None:
                self._stream.close()
                self._stream = None
            self._down_since = None
            self._replies.clear()
            self._tensors.clear()
            self._pending = None
            self._staged_weights = None
            self._delivered_seq = 0
            self._transport.gauge_connected.labels(employee=self.index).set(0)
            self._transport.gauge_generation.labels(employee=self.index).set(
                self._generation
            )

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if self._stream is not None:
                self._stream.close()
                self._stream = None
            self._transport.gauge_connected.labels(employee=self.index).set(0)

    # ------------------------------------------------------------------
    # Accept-thread entry: offer a freshly handshaken connection
    # ------------------------------------------------------------------
    def offer(self, sock: socket.socket, hello: Dict[str, object]) -> Optional[dict]:
        """Adopt ``sock`` if the HELLO is current; returns the WELCOME payload.

        ``None`` means refused (stale generation / channel closed) — the
        caller sends the refusal and closes the socket.
        """
        generation = int(hello.get("generation", ANY_GENERATION))
        peer_clock = hello.get("clock")
        if peer_clock is not None:
            # Seed the chief-minus-worker skew estimate from the HELLO
            # stamp; replies refresh it every pump.  Written outside the
            # condition on purpose — a plain float, benign to race.
            self.clock_offset = time.time() - float(peer_clock)
        with self._cond:
            if self._closed:
                return None
            if generation not in (ANY_GENERATION, self._generation):
                self._transport.counter_errors.labels(kind="stale_generation").inc()
                return None
            if self._stream is not None:
                self._stream.close()
            self._stream = _Stream(sock)
            self._down_since = None
            now = time.monotonic()
            self._last_seen = now
            self._peer = str(hello.get("peer", ""))
            if self._pending is not None:
                # Frames in flight on the old connection are gone; force
                # an immediate retransmit on the fresh one.
                self._pending.last_tx = 0.0
            self._cond.notify_all()
            self._transport.gauge_connected.labels(employee=self.index).set(1)
            self._transport.gauge_generation.labels(employee=self.index).set(
                self._generation
            )
            welcome = {
                "accepted": True,
                "generation": self._generation,
                "wire_dtype": self._transport.wire_dtype,
                "heartbeat_interval": self._transport.heartbeat_interval,
            }
            welcome.update(self.welcome_extra)
            return welcome

    # ------------------------------------------------------------------
    # Protocol: sends
    # ------------------------------------------------------------------
    def send_weights(
        self, arrays: Sequence[np.ndarray], seq: int, episode: int
    ) -> int:
        payload = encode_tensors(
            arrays,
            seq=seq,
            episode=episode,
            wire_dtype=self._transport.wire_dtype,
        )
        frame = encode_frame(T_TENSORS, payload)
        with self._cond:
            self._staged_weights = frame
        self._transmit([frame], op="tensors", episode=episode, round_index=-1)
        return len(payload)

    def send_command(
        self,
        op: str,
        seq: int,
        payload: object,
        episode: int = -1,
        round_index: int = -1,
    ) -> None:
        frame = encode_frame(T_CONTROL, encode_control(op, seq, payload))
        now = time.monotonic()
        with self._cond:
            frames = [frame]
            if op == _OP_SYNC and self._staged_weights is not None:
                # Retransmissions must re-ship the weight broadcast too:
                # the original TENSORS frame may be what was lost.
                frames = [self._staged_weights, frame]
            self._pending = _Pending(seq, op, episode, round_index, frames, now)
        self._transmit([frame], op=op, episode=episode, round_index=round_index)

    def _transmit(
        self, frames: Sequence[bytes], op: str, episode: int, round_index: int
    ) -> None:
        injector = self._transport.injector
        out = list(frames)
        if injector is not None:
            out = injector.on_send(self.index, op, episode, round_index, frames)
            if len(out) < len(frames):
                self._transport.counter_chaos.labels(action="drop").inc()
            elif len(out) > len(frames):
                self._transport.counter_chaos.labels(action="duplicate").inc()
            elif out != list(frames):
                self._transport.counter_chaos.labels(action="corrupt").inc()
        with self._cond:
            stream = self._stream
        if stream is None:
            return  # disconnected: the retransmit timer re-ships on re-attach
        for frame in out:
            try:
                stream.sock.sendall(frame)
            except OSError:
                self._drop_stream(stream, reason="send failed")
                return
            self._transport.counter_frames.labels(direction="send", kind=op).inc()
            self._transport.counter_bytes.labels(direction="send").inc(len(frame))

    # ------------------------------------------------------------------
    # Protocol: receive path
    # ------------------------------------------------------------------
    def recv_reply(
        self, timeout: Optional[float]
    ) -> Optional[Tuple[str, int, object]]:
        transport = self._transport
        deadline = None if timeout is None else time.monotonic() + timeout
        # Heartbeats are only parsed when *this* channel pumps its socket;
        # while the chief waits on another employee they accumulate in the
        # kernel buffer.  Declare heartbeat loss only after at least one
        # pump in this call, so buffered liveness is never mistaken for
        # silence.
        pumped = False
        while True:
            with self._cond:
                if self._replies:
                    reply = self._replies.pop(0)
                    self._delivered_seq = max(self._delivered_seq, reply[1])
                    pending = self._pending
                    if pending is not None and pending.seq == reply[1]:
                        transport.histogram_reply.labels(op=pending.op).observe(
                            time.monotonic() - pending.sent_at
                        )
                        self._pending = None
                    return reply
                stream = self._stream
                now = time.monotonic()
                # -- liveness -------------------------------------------
                if stream is None:
                    if self._down_since is None:
                        self._down_since = now
                    grace = max(
                        transport.heartbeat_timeout, transport.connect_timeout
                    )
                    if now - self._down_since > grace:
                        raise ChannelClosed(
                            f"employee {self.index}: no connection for "
                            f"{now - self._down_since:.1f}s (generation "
                            f"{self._generation})"
                        )
                else:
                    age = now - self._last_seen
                    transport.gauge_heartbeat_age.labels(employee=self.index).set(age)
                    if age > transport.heartbeat_timeout and pumped:
                        # Condition wraps an RLock, so the nested acquire
                        # inside _drop_stream is safe here.
                        self._drop_stream(stream, reason="heartbeat loss")
                        raise ChannelClosed(
                            f"employee {self.index}: heartbeat silence for "
                            f"{age:.1f}s (> {transport.heartbeat_timeout}s)"
                        )
                # -- retransmission -------------------------------------
                resend = None
                if self._pending is not None and stream is not None:
                    pending = self._pending
                    rto = _backoff(
                        transport.retransmit_base,
                        transport.retransmit_cap,
                        pending.attempt,
                        _jitter01(self.index, pending.seq, pending.attempt),
                    )
                    if now - pending.last_tx >= rto:
                        pending.last_tx = now
                        pending.attempt += 1
                        resend = (
                            list(pending.frames),
                            pending.op,
                            pending.episode,
                            pending.round,
                        )
                        transport.counter_retransmits.labels(op=pending.op).inc()
            if resend is not None:
                self._transmit(*resend)
            if deadline is not None and time.monotonic() >= deadline:
                return None
            step = transport.poll_interval
            if deadline is not None:
                step = max(0.0, min(step, deadline - time.monotonic()))
            self._pump(step)
            pumped = True

    def _pump(self, step: float) -> None:
        """Wait up to ``step`` for bytes; parse and apply complete frames."""
        with self._cond:
            stream = self._stream
            if stream is None:
                self._cond.wait(step)  # a reconnect attach will notify
                return
        try:
            readable, __, __ = select.select([stream.sock], [], [], step)
        except (OSError, ValueError):
            self._drop_stream(stream, reason="select failed")
            return
        if not readable:
            return
        try:
            data = stream.sock.recv(_RECV_CHUNK)
        except OSError:
            self._drop_stream(stream, reason="recv failed")
            return
        if not data:
            self._drop_stream(stream, reason="EOF")
            return
        try:
            stream.assembler.feed(data)
            frames = list(stream.assembler.iter_frames())
        except FrameError as error:
            self._transport.counter_errors.labels(kind="crc").inc()
            self._drop_stream(stream, reason=f"frame error: {error}")
            return
        self._apply_frames(stream, frames)

    def _apply_frames(
        self, stream: _Stream, frames: Sequence[Tuple[int, int, bytes]]
    ) -> None:
        transport = self._transport
        injector = transport.injector
        with self._cond:
            if self._stream is not stream:
                return  # raced with a reconnect; the old stream is dead
            pending = self._pending
            episode = pending.episode if pending is not None else -1
            round_index = pending.round if pending is not None else -1
            for ftype, __, payload in frames:
                if ftype == T_CONTROL:
                    kind = "reply"
                else:
                    kind = frame_type_name(ftype)
                if injector is not None:
                    action = injector.on_recv(self.index, kind, episode, round_index)
                    if action == "drop":
                        transport.counter_chaos.labels(action="drop").inc()
                        continue
                    if action == "corrupt":
                        # Observable equivalent of a CRC casualty: count
                        # it and discard the frame.
                        transport.counter_chaos.labels(action="corrupt").inc()
                        transport.counter_errors.labels(kind="crc").inc()
                        continue
                self._last_seen = time.monotonic()
                transport.counter_frames.labels(direction="recv", kind=kind).inc()
                transport.counter_bytes.labels(direction="recv").inc(len(payload))
                if ftype == T_HEARTBEAT:
                    continue
                if ftype == T_TENSORS:
                    try:
                        message = decode_tensors(payload, self.shapes)
                    except FrameError:
                        transport.counter_errors.labels(kind="tensor_layout").inc()
                        continue
                    self._tensors[message.seq] = message
                    while len(self._tensors) > 4:
                        del self._tensors[min(self._tensors)]
                    continue
                if ftype == T_CONTROL:
                    try:
                        status, seq, reply_payload = decode_control(payload)
                    except FrameError:
                        transport.counter_errors.labels(kind="control_decode").inc()
                        continue
                    if seq <= self._delivered_seq or any(
                        queued[1] == seq for queued in self._replies
                    ):
                        # Already delivered or already queued: a cached
                        # worker resend raced the original reply.
                        transport.counter_errors.labels(kind="duplicate_reply").inc()
                        continue
                    self._replies.append((status, seq, reply_payload))

    def _drop_stream(self, stream: _Stream, reason: str) -> None:
        with self._cond:
            if self._stream is not stream:
                return
            stream.close()
            self._stream = None
            self._down_since = time.monotonic()
            self._transport.gauge_connected.labels(employee=self.index).set(0)
        _LOG.warning(
            "employee %d: connection dropped (%s); awaiting redial",
            self.index,
            reason,
        )

    def drop_current(self, reason: str) -> None:
        """Drop whatever connection is attached (handshake-thread helper)."""
        with self._cond:
            stream = self._stream
        if stream is not None:
            self._drop_stream(stream, reason)

    def read_gradients(self, expected_seq: int) -> Tuple[List[np.ndarray], int]:
        with self._cond:
            message = self._tensors.pop(expected_seq, None)
        if message is None:
            # The reply arrived but its gradient payload did not (frame
            # lost to chaos): treat the round's contribution as dead —
            # the pool maps this onto WorkerDied and the quorum absorbs it.
            raise ChannelClosed(
                f"employee {self.index}: gradient payload for seq "
                f"{expected_seq} never arrived"
            )
        return list(message.arrays), message.nbytes

    # -- introspection -------------------------------------------------
    def connected(self) -> bool:
        with self._cond:
            return self._stream is not None

    def generation(self) -> int:
        with self._cond:
            return self._generation

    def last_seen_age(self) -> float:
        with self._cond:
            return time.monotonic() - self._last_seen


class SocketTransport(Transport):
    """Factory/owner of the listener, token, metrics and fleet registry."""

    name = "socket"

    def __init__(
        self,
        shapes: Sequence[Tuple[int, ...]],
        listen: Tuple[str, int] = ("127.0.0.1", 0),
        token: Optional[str] = None,
        wire_dtype: str = "float64",
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 10.0,
        connect_timeout: float = 10.0,
        connect_backoff: float = 0.05,
        connect_backoff_cap: float = 1.0,
        retransmit_base: float = 0.25,
        retransmit_cap: float = 4.0,
        poll_interval: float = 0.02,
        read_timeout: float = 30.0,
        injector: Optional[NetworkFaultInjector] = None,
    ):
        if wire_dtype not in WIRE_DTYPES:
            raise ValueError(
                f"wire_dtype must be one of {sorted(WIRE_DTYPES)}, got {wire_dtype!r}"
            )
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be > 0, got {heartbeat_interval}")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                f"heartbeat_timeout ({heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({heartbeat_interval})"
            )
        self.shapes = tuple(tuple(int(d) for d in shape) for shape in shapes)
        self.wire_dtype = wire_dtype
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.connect_timeout = float(connect_timeout)
        self.connect_backoff = float(connect_backoff)
        self.connect_backoff_cap = float(connect_backoff_cap)
        self.retransmit_base = float(retransmit_base)
        self.retransmit_cap = float(retransmit_cap)
        self.poll_interval = float(poll_interval)
        self.read_timeout = float(read_timeout)
        self.injector = injector
        self.token = token if token is not None else secrets.token_hex(16)
        self._channels: Dict[int, SocketChiefChannel] = {}
        self._closing = threading.Event()

        registry = get_registry()
        self.counter_frames = registry.counter(
            "repro_transport_frames_total",
            "Frames sent/received by the socket transport",
            labelnames=("direction", "kind"),
        )
        self.counter_bytes = registry.counter(
            "repro_transport_bytes_total",
            "Payload bytes sent/received by the socket transport",
            labelnames=("direction",),
        )
        self.counter_retransmits = registry.counter(
            "repro_transport_retransmits_total",
            "Command frames re-sent after backoff",
            labelnames=("op",),
        )
        self.counter_errors = registry.counter(
            "repro_transport_frame_errors_total",
            "Frames rejected (CRC, duplicates, stale generations, layout)",
            labelnames=("kind",),
        )
        self.counter_chaos = registry.counter(
            "repro_transport_chaos_total",
            "Frames altered by the network fault injector",
            labelnames=("action",),
        )
        self.histogram_reply = registry.histogram(
            "repro_transport_reply_seconds",
            "Command-to-reply latency over the socket transport",
            labelnames=("op",),
        )
        self.gauge_heartbeat_age = registry.gauge(
            "repro_transport_heartbeat_age_seconds",
            "Seconds since the last frame from each employee",
            labelnames=("employee",),
        )
        self.gauge_connected = registry.gauge(
            "repro_fleet_connected",
            "1 while the employee's connection is attached",
            labelnames=("employee",),
        )
        self.gauge_generation = registry.gauge(
            "repro_fleet_generation",
            "Current generation number of each employee",
            labelnames=("employee",),
        )

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(tuple(listen))
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-transport-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    def create_channel(self, index: int) -> SocketChiefChannel:
        channel = SocketChiefChannel(self, index)
        self._channels[index] = channel
        return channel

    def set_welcome_extra(self, index: int, extra: Dict[str, object]) -> None:
        """Attach payload shipped inside WELCOME (external-worker bootstrap)."""
        self._channels[index].welcome_extra = dict(extra)

    def fleet(self) -> Dict[int, Dict[str, object]]:
        """Live per-employee registry (CLI/dashboard/tests)."""
        table: Dict[int, Dict[str, object]] = {}
        for index, channel in sorted(self._channels.items()):
            table[index] = {
                "connected": channel.connected(),
                "generation": channel.generation(),
                "last_seen_age": channel.last_seen_age(),
            }
        return table

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                sock, __ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._handshake, args=(sock,), daemon=True
            )
            thread.start()

    def _handshake(self, sock: socket.socket) -> None:
        try:
            sock.settimeout(_HANDSHAKE_TIMEOUT)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            assembler = FrameAssembler()
            hello: Optional[Dict[str, object]] = None
            while hello is None:
                data = sock.recv(_RECV_CHUNK)
                if not data:
                    sock.close()
                    return
                assembler.feed(data)
                for ftype, __, payload in assembler.iter_frames():
                    if ftype == T_HELLO:
                        hello = pickle.loads(payload)
                        break
            if not isinstance(hello, dict) or hello.get("token") != self.token:
                self.counter_errors.labels(kind="bad_token").inc()
                self._refuse(sock, "bad token")
                return
            index = int(hello.get("index", -1))
            channel = self._channels.get(index)
            if channel is None:
                self._refuse(sock, f"unknown employee index {index}")
                return
            welcome = channel.offer(sock, hello)
            if welcome is None:
                self._refuse(sock, "stale generation")
                return
            sock.settimeout(self.read_timeout)
            frame = encode_frame(
                T_WELCOME, pickle.dumps(welcome, protocol=pickle.HIGHEST_PROTOCOL)
            )
            try:
                sock.sendall(frame)
            except OSError:
                channel.drop_current("welcome send failed")
        except Exception as error:  # malformed pickle, raced close, ...
            _LOG.warning("transport handshake failed: %s", error)
            try:
                sock.close()
            except OSError:
                return

    def _refuse(self, sock: socket.socket, reason: str) -> None:
        payload = pickle.dumps(
            {"accepted": False, "reason": reason},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            sock.sendall(encode_frame(T_WELCOME, payload))
        except OSError:
            _LOG.warning("refusal send failed (%s)", reason)
        try:
            sock.close()
        except OSError:
            return

    def close(self) -> None:
        if self._closing.is_set():
            return
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            _LOG.warning("transport listener close failed")
        for channel in self._channels.values():
            channel.close()
        self._accept_thread.join(timeout=2.0)


class SocketWorkerEndpoint(WorkerEndpoint):
    """Worker side: dial, authenticate, heartbeat, dedup, reconnect."""

    def __init__(self, spec: EndpointSpec):
        self._spec = spec
        self._shapes = tuple(tuple(int(d) for d in s) for s in spec.shapes)
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._assembler = FrameAssembler()
        self._weights: Dict[int, Tuple[np.ndarray, ...]] = {}
        self._staged: List[bytes] = []
        self._cache_seq = 0
        self._cache_frames: List[bytes] = []
        self._handled_seq = 0
        self._closed = False
        self.welcome = self._connect()
        self._hb_stop = threading.Event()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-worker-heartbeat", daemon=True
        )
        self._hb_thread.start()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> dict:
        """Dial + HELLO/WELCOME with capped exponential backoff + jitter."""
        spec = self._spec
        deadline = time.monotonic() + spec.connect_timeout
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ChannelClosed(
                    f"employee {spec.index}: chief at {spec.address} unreachable "
                    f"after {spec.connect_timeout}s"
                )
            try:
                sock = socket.create_connection(
                    tuple(spec.address), timeout=min(2.0, max(0.1, remaining))
                )
            except OSError:
                attempt += 1
                time.sleep(
                    min(
                        max(0.0, deadline - time.monotonic()),
                        _backoff(
                            spec.connect_backoff,
                            spec.connect_backoff_cap,
                            attempt,
                            _jitter01(spec.index, spec.generation, attempt),
                        ),
                    )
                )
                continue
            try:
                welcome = self._handshake(sock)
            except (OSError, FrameError):
                try:
                    sock.close()
                except OSError:
                    pass
                attempt += 1
                continue
            if not welcome.get("accepted", False):
                try:
                    sock.close()
                except OSError:
                    pass
                raise ChannelClosed(
                    f"employee {spec.index}: chief refused the connection "
                    f"({welcome.get('reason', 'unknown')})"
                )
            shapes = welcome.get("shapes")
            if shapes:
                # External workers bootstrap their tensor layout from the
                # WELCOME payload (their spec carries no shapes).
                self._shapes = tuple(tuple(int(d) for d in s) for s in shapes)
            if spec.generation == ANY_GENERATION:
                # Adopt the assigned generation: if the chief later gives
                # up on us and revives, our reconnect is refused and the
                # serve loop exits instead of injecting stale state.
                self._spec = spec = dataclasses.replace(
                    spec, generation=int(welcome.get("generation", 0))
                )
            with self._lock:
                self._sock = sock
                self._assembler = FrameAssembler()
            return welcome

    def _handshake(self, sock: socket.socket) -> dict:
        spec = self._spec
        sock.settimeout(spec.read_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = {
            "index": spec.index,
            "token": spec.token,
            "generation": spec.generation,
            "peer": socket.gethostname(),
            # Wall-clock stamp: the chief seeds its clock-skew estimate
            # from this (old chiefs simply ignore the extra key).
            "clock": time.time(),
        }
        sock.sendall(
            encode_frame(
                T_HELLO, pickle.dumps(hello, protocol=pickle.HIGHEST_PROTOCOL)
            )
        )
        assembler = FrameAssembler()
        while True:
            data = sock.recv(_RECV_CHUNK)
            if not data:
                raise FrameError("chief closed the connection during handshake")
            assembler.feed(data)
            for ftype, __, payload in assembler.iter_frames():
                if ftype == T_WELCOME:
                    welcome = pickle.loads(payload)
                    if not isinstance(welcome, dict):
                        raise FrameError("malformed WELCOME payload")
                    return welcome

    def _drop_connection(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def _reconnect(self) -> bool:
        """Redial with the same generation; False means permanently gone."""
        self._drop_connection()
        if self._closed:
            return False
        try:
            self._connect()
        except ChannelClosed:
            return False
        return True

    # ------------------------------------------------------------------
    # WorkerEndpoint protocol
    # ------------------------------------------------------------------
    def recv_command(self) -> Optional[Tuple[str, int, object]]:
        while True:
            frame = self._read_frame()
            if frame is None:
                return None
            ftype, __, payload = frame
            if ftype == T_TENSORS:
                try:
                    message = decode_tensors(payload, self._shapes)
                except FrameError:
                    continue
                # Only the newest broadcast matters; SYNC is strictly serial.
                self._weights = {message.seq: message.arrays}
                continue
            if ftype != T_CONTROL:
                continue  # WELCOME duplicates, heartbeats echoed, ...
            try:
                op, seq, command = decode_control(payload)
            except FrameError:
                continue
            if seq <= self._handled_seq:
                # Duplicate command (retransmit raced the reply): re-send
                # the cached reply frames, never re-execute — a command
                # may consume worker RNG at most once.
                self._resend_cached(seq)
                continue
            if op == _OP_SYNC and seq not in self._weights:
                # The weight broadcast for this SYNC was lost; stay
                # silent so the chief's retransmission re-ships both.
                continue
            self._staged = []
            return op, seq, command

    def _read_frame(self) -> Optional[Tuple[int, int, bytes]]:
        while True:
            with self._lock:
                sock = self._sock
                assembler = self._assembler
            if sock is None:
                if not self._reconnect():
                    return None
                continue
            try:
                frame = assembler.next_frame()
            except FrameError:
                if not self._reconnect():
                    return None
                continue
            if frame is not None:
                return frame
            try:
                data = sock.recv(_RECV_CHUNK)
            except OSError:
                if not self._reconnect():
                    return None
                continue
            if not data:
                if not self._reconnect():
                    return None
                continue
            try:
                assembler.feed(data)
            except FrameError:
                if not self._reconnect():
                    return None

    def send_reply(self, status: str, seq: int, payload: object) -> None:
        frame = encode_frame(T_CONTROL, encode_control(status, seq, payload))
        self._staged.append(frame)
        self._send(frame)
        self._cache_seq = seq
        self._cache_frames = list(self._staged)
        self._handled_seq = seq
        self._staged = []

    def read_weights(self, expected_seq: int) -> Sequence[np.ndarray]:
        arrays = self._weights.get(expected_seq)
        if arrays is None:
            raise RuntimeError(
                f"employee {self._spec.index}: no weight broadcast stamped "
                f"seq {expected_seq}"
            )
        return arrays

    def send_gradients(
        self,
        arrays: Sequence[np.ndarray],
        seq: int,
        episode: int,
        round_index: int,
    ) -> None:
        payload = encode_tensors(
            arrays,
            seq=seq,
            episode=episode,
            round_index=round_index,
            wire_dtype=self._spec.wire_dtype,
        )
        frame = encode_frame(T_TENSORS, payload)
        self._staged.append(frame)
        self._send(frame)

    def _resend_cached(self, seq: int) -> None:
        if seq != self._cache_seq:
            return  # older than the cache: the chief has long moved on
        for frame in self._cache_frames:
            self._send(frame)

    def _send(self, frame: bytes) -> None:
        with self._lock:
            sock = self._sock
            if sock is None:
                return  # the read loop reconnects; the chief retransmits
            try:
                # RPL016 justification: sendall *must* run under _lock —
                # the serve loop and the heartbeat beacon share this
                # socket, and interleaved partial writes would corrupt
                # the frame stream.  Worst case a heartbeat waits one
                # frame write; the chief's timeout is orders of
                # magnitude larger, so the beacon cannot miss its
                # deadline because of this hold.
                sock.sendall(frame)  # reprolint: disable=RPL016
            except OSError:
                try:
                    sock.close()
                except OSError:
                    pass
                self._sock = None

    def _heartbeat_loop(self) -> None:
        beat = encode_frame(T_HEARTBEAT, struct.pack(">q", self._spec.index))
        while not self._hb_stop.wait(self._spec.heartbeat_interval):
            self._send(beat)

    def close(self) -> None:
        self._closed = True
        self._hb_stop.set()
        self._hb_thread.join(timeout=2.0)
        self._drop_connection()
