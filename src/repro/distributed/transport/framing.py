"""Length-prefixed, CRC32-checksummed frames for the socket transport.

Every byte that crosses a host boundary travels inside a **frame**::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       2     magic  b"RB"  (catches stream desync / non-protocol peers)
    2       1     type   (HELLO/WELCOME/CONTROL/TENSORS/HEARTBEAT)
    3       1     flags  (reserved; wire-dtype hints live in the payload)
    4       4     length of payload, big-endian unsigned
    8       4     CRC32 over (type, flags, payload), big-endian unsigned
    12      n     payload

The layout is deliberately dumb: a fixed 12-byte header that can be read
with one ``struct`` call, a hard :data:`MAX_FRAME_BYTES` bound so a
corrupted length field can never allocate unbounded memory, and a CRC
over the payload *and* the type/flags bytes so a bit flip anywhere in
the semantic content is detected.  TCP's own checksum is famously weak
(16-bit, per segment, recomputed by middleboxes); the CRC is end-to-end.

:class:`FrameAssembler` is the incremental decoder: ``feed()`` it bytes
as they arrive and pop complete frames with ``next_frame()``.  A torn
frame (peer died mid-write) surfaces as :class:`FrameError` from
:meth:`FrameAssembler.check_eof`, a bad magic / CRC / oversized length
as :class:`FrameError` from ``next_frame()`` — never as garbage handed
to the payload decoder.

Control payloads (command/reply dicts, RNG state dicts) are pickled —
the same serialization the in-host ``multiprocessing`` pipes have always
used, so the trust domain is unchanged: frames are only accepted from
peers that presented the pool's secret token at HELLO time.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "FRAME_HEADER",
    "FrameAssembler",
    "FrameError",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "T_CONTROL",
    "T_HEARTBEAT",
    "T_HELLO",
    "T_TENSORS",
    "T_WELCOME",
    "decode_control",
    "encode_control",
    "encode_frame",
    "frame_types",
    "split_frames",
]

MAGIC = b"RB"

#: Fixed 12-byte header: magic, type, flags, payload length, CRC32.
FRAME_HEADER = struct.Struct(">2sBBII")

#: Hard upper bound on one frame's payload.  A corrupted length field
#: must never turn into an unbounded allocation; real payloads (full
#: CEWS parameter broadcasts) are a few MB.
MAX_FRAME_BYTES = 256 * 1024 * 1024

# Frame types.
T_HELLO = 1      # worker -> chief: {index, token, generation, pid}
T_WELCOME = 2    # chief -> worker: {generation, wire_dtype, ...} or {refused}
T_CONTROL = 3    # command / reply tuples (pickled)
T_TENSORS = 4    # weight broadcast / gradient return (see transport.wire)
T_HEARTBEAT = 5  # worker -> chief liveness beacon

_TYPE_NAMES = {
    T_HELLO: "hello",
    T_WELCOME: "welcome",
    T_CONTROL: "control",
    T_TENSORS: "tensors",
    T_HEARTBEAT: "heartbeat",
}


def frame_types() -> Tuple[int, ...]:
    """Every valid frame-type byte (tests enumerate them)."""
    return tuple(sorted(_TYPE_NAMES))


def frame_type_name(ftype: int) -> str:
    """Human-readable frame-type name (metrics labels, errors)."""
    return _TYPE_NAMES.get(ftype, f"unknown({ftype})")


class FrameError(RuntimeError):
    """A frame failed structural validation (magic/length/CRC/torn)."""


def _crc(ftype: int, flags: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(bytes((ftype, flags)))) & 0xFFFFFFFF


def encode_frame(ftype: int, payload: bytes, flags: int = 0) -> bytes:
    """One complete frame for ``payload``; raises on oversized payloads."""
    if ftype not in _TYPE_NAMES:
        raise FrameError(f"cannot encode unknown frame type {ftype}")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    header = FRAME_HEADER.pack(
        MAGIC, ftype, flags, len(payload), _crc(ftype, flags, payload)
    )
    return header + payload


class FrameAssembler:
    """Incremental frame decoder over an arbitrary byte stream.

    ``feed()`` appends received bytes; ``next_frame()`` pops the next
    complete ``(type, flags, payload)`` triple or returns ``None`` when
    more bytes are needed.  Validation failures raise :class:`FrameError`
    and poison the assembler — a desynced byte stream cannot be trusted
    again, the connection must be torn down and re-established.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned: Optional[str] = None

    def feed(self, data: bytes) -> None:
        if self._poisoned is not None:
            raise FrameError(f"assembler poisoned: {self._poisoned}")
        self._buffer.extend(data)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed as a complete frame."""
        return len(self._buffer)

    def _poison(self, reason: str) -> FrameError:
        self._poisoned = reason
        return FrameError(reason)

    def next_frame(self) -> Optional[Tuple[int, int, bytes]]:
        """The next complete ``(type, flags, payload)``, else ``None``."""
        if self._poisoned is not None:
            raise FrameError(f"assembler poisoned: {self._poisoned}")
        if len(self._buffer) < FRAME_HEADER.size:
            return None
        magic, ftype, flags, length, crc = FRAME_HEADER.unpack_from(self._buffer)
        if magic != MAGIC:
            raise self._poison(
                f"bad frame magic {bytes(magic)!r}: stream is desynced"
            )
        if ftype not in _TYPE_NAMES:
            raise self._poison(f"unknown frame type {ftype}")
        if length > MAX_FRAME_BYTES:
            raise self._poison(
                f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound"
            )
        if len(self._buffer) < FRAME_HEADER.size + length:
            return None
        payload = bytes(self._buffer[FRAME_HEADER.size : FRAME_HEADER.size + length])
        if _crc(ftype, flags, payload) != crc:
            raise self._poison(
                f"CRC mismatch on a {frame_type_name(ftype)} frame "
                f"({length} payload bytes)"
            )
        del self._buffer[: FRAME_HEADER.size + length]
        return ftype, flags, payload

    def iter_frames(self) -> Iterator[Tuple[int, int, bytes]]:
        """Pop every currently complete frame."""
        while True:
            frame = self.next_frame()
            if frame is None:
                return
            yield frame

    def check_eof(self) -> None:
        """Raise :class:`FrameError` if the stream ended mid-frame."""
        if self._buffer:
            raise self._poison(
                f"stream ended with {len(self._buffer)} bytes of a torn frame"
            )


def split_frames(buffer: bytes) -> List[Tuple[int, int, bytes]]:
    """Decode a complete buffer into frames (tests / diagnostics).

    Raises :class:`FrameError` on any structural problem, including
    trailing torn bytes.
    """
    assembler = FrameAssembler()
    assembler.feed(buffer)
    frames = list(assembler.iter_frames())
    assembler.check_eof()
    return frames


# ----------------------------------------------------------------------
# Control payloads
# ----------------------------------------------------------------------
def encode_control(kind: str, seq: int, payload: object) -> bytes:
    """Serialize one command/reply triple for a CONTROL frame."""
    return pickle.dumps((kind, int(seq), payload), protocol=pickle.HIGHEST_PROTOCOL)


def decode_control(data: bytes) -> Tuple[str, int, object]:
    """Parse a CONTROL frame payload; raises :class:`FrameError` on junk."""
    try:
        kind, seq, payload = pickle.loads(data)
    except Exception as error:  # truncated pickle, wrong shape, ...
        raise FrameError(f"undecodable control payload: {error}") from None
    if not isinstance(kind, str) or not isinstance(seq, int):
        raise FrameError(
            f"malformed control payload (kind={type(kind).__name__}, "
            f"seq={type(seq).__name__})"
        )
    return kind, seq, payload
