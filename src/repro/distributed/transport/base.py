"""The ``Transport`` seam between the chief and its employee workers.

PR 5's :class:`~repro.distributed.procpool.ProcessEmployeePool` spoke the
SYNC/EXPLORE/MINIBATCH/SHUTDOWN protocol directly over ``multiprocessing``
pipes plus :class:`~repro.distributed.shm.TensorSlab` shared memory.  This
module extracts that protocol behind three small interfaces so the same
pool (and therefore the same trainer, quorum logic and health
bookkeeping) can drive workers over any medium:

* :class:`Transport` — the factory owning shared resources (a listener
  socket, metric counters); builds one :class:`ChiefChannel` per
  employee index.
* :class:`ChiefChannel` — the chief's view of one worker: send commands
  and weight broadcasts, collect replies and gradient returns, and
  manage the worker's spawn/revive lifecycle.
* :class:`WorkerEndpoint` — the worker's mirror image, built inside the
  worker process from a picklable :class:`EndpointSpec` (never from
  inherited chief state — the same RPL011 discipline as
  :class:`~repro.distributed.procpool.WorkerSpec`).

Failure is part of the interface: any operation may raise
:class:`ChannelClosed` when the peer is unreachable (pipe EOF, socket
reset, heartbeat loss).  The pool translates that — and only that — into
:class:`~repro.distributed.procpool.WorkerDied`, which the trainer
already maps onto its crash/restart/degraded-quorum bookkeeping.  A
``None`` return from :meth:`ChiefChannel.recv_reply` means *timeout with
the command still in flight* (the straggler path), which the pool turns
into the same ``FuturesTimeoutError`` the thread backend raises.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ChannelClosed",
    "ChiefChannel",
    "EndpointSpec",
    "Transport",
    "TransportError",
    "WorkerEndpoint",
]


class TransportError(RuntimeError):
    """Base class for transport-layer failures."""


class ChannelClosed(TransportError):
    """The peer is unreachable: EOF, reset, or heartbeat loss.

    The pool maps this onto ``WorkerDied`` so every transport's failure
    mode lands in the same trainer bookkeeping.
    """


@dataclass(frozen=True)
class EndpointSpec:
    """Picklable recipe for building a worker-side endpoint.

    ``kind`` selects the implementation; the remaining fields are a
    union (local transports fill the slab names, socket transports the
    address/token/generation).  The spec crosses the process boundary
    inside :class:`~repro.distributed.procpool.WorkerSpec`, so it must
    stay free of live handles — sockets are opened and slabs attached
    *inside* the worker.
    """

    kind: str
    index: int
    shapes: Tuple[Tuple[int, ...], ...] = ()
    # -- local (pipe + shared-memory) fields ---------------------------
    weights_slab: str = ""
    grads_slab: str = ""
    # -- socket fields -------------------------------------------------
    address: Tuple[str, int] = ("", 0)
    token: str = ""
    generation: int = 0
    wire_dtype: str = "float64"
    heartbeat_interval: float = 0.5
    connect_timeout: float = 10.0
    connect_backoff: float = 0.05
    connect_backoff_cap: float = 1.0
    read_timeout: float = 30.0


class ChiefChannel(abc.ABC):
    """The chief's command/payload channel to one employee worker."""

    index: int

    #: Estimated chief-minus-worker wall-clock offset in seconds.  Seeded
    #: from the HELLO handshake where the transport has one (sockets) and
    #: refreshed by the pool from the ``clock`` stamp on every reply, so
    #: worker span timestamps can be skew-corrected *at merge time* —
    #: raw worker records are never rewritten.  Plain attribute, benign
    #: to race: readers only ever see an older estimate.
    clock_offset: float = 0.0

    # -- lifecycle -----------------------------------------------------
    @abc.abstractmethod
    def arm(self) -> object:
        """Prepare for one (re)spawn; returns the spawn handle.

        The handle is passed to the worker entrypoint alongside the
        spec: the pipe's child end for local transports, ``None`` for
        sockets (the worker dials in instead).
        """

    @abc.abstractmethod
    def post_spawn(self, spawn_handle: object) -> None:
        """Release the chief's copy of the spawn handle after fork."""

    @abc.abstractmethod
    def endpoint_spec(self) -> EndpointSpec:
        """The spec the *next* spawned worker should build its endpoint from."""

    @abc.abstractmethod
    def reset_for_revive(self) -> None:
        """Invalidate everything a dead/stale worker could still touch.

        Local transports allocate fresh slabs (and eagerly unlink the
        stale ones) so a wedged predecessor scribbling into shared
        memory cannot corrupt its replacement; socket transports bump
        the generation number so a reconnecting stale worker is refused.
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Release every chief-side resource (idempotent)."""

    # -- protocol ------------------------------------------------------
    @abc.abstractmethod
    def send_command(
        self,
        op: str,
        seq: int,
        payload: object,
        episode: int = -1,
        round_index: int = -1,
    ) -> None:
        """Ship one command; ``episode``/``round_index`` are fault-plan hints."""

    @abc.abstractmethod
    def send_weights(
        self, arrays: Sequence[np.ndarray], seq: int, episode: int
    ) -> int:
        """Stage/ship the weight broadcast for ``seq``; returns payload bytes."""

    @abc.abstractmethod
    def recv_reply(
        self, timeout: Optional[float]
    ) -> Optional[Tuple[str, int, object]]:
        """The next ``(status, seq, payload)`` reply, or ``None`` on timeout.

        Raises :class:`ChannelClosed` when the worker is gone (EOF /
        reset / heartbeat loss) — never hangs forever: even a ``None``
        timeout is bounded by peer-death detection.
        """

    @abc.abstractmethod
    def read_gradients(
        self, expected_seq: int
    ) -> Tuple[List[np.ndarray], int]:
        """The gradient arrays stamped ``expected_seq`` plus payload bytes."""

    # -- introspection -------------------------------------------------
    def slab_names(self) -> List[str]:
        """Shared-memory segment names owned by this channel (may be empty)."""
        return []


class WorkerEndpoint(abc.ABC):
    """The worker-side mirror of a :class:`ChiefChannel`."""

    @abc.abstractmethod
    def recv_command(self) -> Optional[Tuple[str, int, object]]:
        """Block for the next ``(op, seq, payload)``; ``None`` means exit.

        ``None`` is returned when the chief is permanently gone (EOF
        with no reconnect possible) — the worker's serve loop treats it
        like SHUTDOWN.
        """

    @abc.abstractmethod
    def send_reply(self, status: str, seq: int, payload: object) -> None:
        """Ship one reply triple for the command stamped ``seq``."""

    @abc.abstractmethod
    def read_weights(self, expected_seq: int) -> Sequence[np.ndarray]:
        """The weight arrays stamped ``expected_seq`` (views allowed)."""

    @abc.abstractmethod
    def send_gradients(
        self,
        arrays: Sequence[np.ndarray],
        seq: int,
        episode: int,
        round_index: int,
    ) -> None:
        """Ship/stage the gradient return for the command stamped ``seq``."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release every worker-side resource (idempotent)."""


class Transport(abc.ABC):
    """Factory for the per-employee channels of one pool."""

    name: str = "abstract"

    @abc.abstractmethod
    def create_channel(self, index: int) -> ChiefChannel:
        """Build the channel for employee ``index`` (called once per index)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release shared transport resources after every channel closed."""
