"""Single-host transport: duplex pipes + shared-memory tensor slabs.

This is the PR 5 data path verbatim, re-housed behind the
:class:`~repro.distributed.transport.base.Transport` interface:
commands and small replies cross a ``multiprocessing`` duplex pipe,
tensor payloads travel through preallocated per-worker
:class:`~repro.distributed.shm.TensorSlab` pairs, seq-stamped and
verified on read.  Nothing about ordering, serialization or slab
layout changed, which is what keeps the process backend bitwise-frozen
against its PR 5 behaviour (the backend-equivalence tests enforce it).

The one behavioural addition is slab hygiene on revive:
:meth:`LocalChiefChannel.reset_for_revive` allocates *fresh* slabs for
the replacement worker and eagerly unlinks the stale pair.  A respawn
happens because the old worker is dead *or wedged*; a wedged-but-alive
predecessor still holds a mapping of the old segments and may scribble
into them mid-straggle, so the replacement must never share its memory.
Eager unlink also keeps ``/dev/shm`` flat across arbitrarily many
revive cycles instead of parking stale segments until ``atexit``.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..shm import TensorSlab, slab_name
from .base import ChannelClosed, ChiefChannel, EndpointSpec, Transport, WorkerEndpoint

__all__ = ["LocalChiefChannel", "LocalTransport", "LocalWorkerEndpoint"]


class LocalChiefChannel(ChiefChannel):
    """Chief side of one pipe + slab-pair worker link."""

    def __init__(self, index: int, shapes: Tuple[Tuple[int, ...], ...], ctx):
        self.index = index
        self.shapes = shapes
        self._ctx = ctx
        self._conn = None
        self._weights = TensorSlab.create(slab_name(index, "w"), shapes)
        self._grads = TensorSlab.create(slab_name(index, "g"), shapes)
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def arm(self):
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._conn = parent_conn
        return child_conn

    def post_spawn(self, spawn_handle) -> None:
        # Close the chief's copy of the child end: the chief must observe
        # EOF the instant the worker dies, not hold the pipe open against
        # itself.
        spawn_handle.close()

    def endpoint_spec(self) -> EndpointSpec:
        return EndpointSpec(
            kind="local",
            index=self.index,
            shapes=self.shapes,
            weights_slab=self._weights.name,
            grads_slab=self._grads.name,
        )

    def reset_for_revive(self) -> None:
        stale = (self._weights, self._grads)
        self._weights = TensorSlab.create(slab_name(self.index, "w"), self.shapes)
        self._grads = TensorSlab.create(slab_name(self.index, "g"), self.shapes)
        for slab in stale:
            slab.unlink()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        self._weights.unlink()
        self._grads.unlink()

    # -- protocol ------------------------------------------------------
    def send_command(
        self,
        op: str,
        seq: int,
        payload: object,
        episode: int = -1,
        round_index: int = -1,
    ) -> None:
        try:
            self._conn.send((op, seq, payload))
        except (BrokenPipeError, OSError) as error:
            raise ChannelClosed(
                f"employee {self.index}: pipe closed while sending {op}"
            ) from error

    def send_weights(
        self, arrays: Sequence[np.ndarray], seq: int, episode: int
    ) -> int:
        return self._weights.write(arrays, seq=seq, episode=episode)

    def recv_reply(
        self, timeout: Optional[float]
    ) -> Optional[Tuple[str, int, object]]:
        try:
            if not self._conn.poll(timeout):
                return None
            return self._conn.recv()
        except (EOFError, OSError, ConnectionResetError) as error:
            raise ChannelClosed(
                f"employee {self.index}: pipe EOF (worker process died)"
            ) from error

    def read_gradients(self, expected_seq: int) -> Tuple[List[np.ndarray], int]:
        arrays = self._grads.read(expected_seq=expected_seq, copy=True)
        return arrays, self._grads.nbytes

    # -- introspection -------------------------------------------------
    def slab_names(self) -> List[str]:
        return [self._weights.name, self._grads.name]


class LocalWorkerEndpoint(WorkerEndpoint):
    """Worker side: the pipe's child end plus attached slabs."""

    def __init__(self, spec: EndpointSpec, conn):
        if conn is None:
            raise ValueError("local endpoints need the pipe's child end")
        self._conn = conn
        self._weights = TensorSlab.attach(spec.weights_slab, spec.shapes)
        self._grads = TensorSlab.attach(spec.grads_slab, spec.shapes)
        self._closed = False

    def recv_command(self) -> Optional[Tuple[str, int, object]]:
        try:
            return self._conn.recv()
        except (EOFError, OSError):
            return None  # chief is gone; exit quietly

    def send_reply(self, status: str, seq: int, payload: object) -> None:
        self._conn.send((status, seq, payload))

    def read_weights(self, expected_seq: int) -> Sequence[np.ndarray]:
        return self._weights.read(expected_seq=expected_seq, copy=False)

    def send_gradients(
        self,
        arrays: Sequence[np.ndarray],
        seq: int,
        episode: int,
        round_index: int,
    ) -> None:
        self._grads.write(arrays, seq=seq, episode=episode, round_index=round_index)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._weights.close()
        self._grads.close()
        self._conn.close()


class LocalTransport(Transport):
    """Factory for pipe + shared-memory channels (the PR 5 data path)."""

    name = "local"

    def __init__(self, shapes: Sequence[Tuple[int, ...]], ctx=None):
        self.shapes = tuple(tuple(int(d) for d in shape) for shape in shapes)
        self._ctx = ctx if ctx is not None else multiprocessing.get_context("fork")
        self._channels: List[LocalChiefChannel] = []

    def create_channel(self, index: int) -> LocalChiefChannel:
        channel = LocalChiefChannel(index, self.shapes, self._ctx)
        self._channels.append(channel)
        return channel

    def close(self) -> None:
        for channel in self._channels:
            channel.close()
