"""``repro.distributed.transport`` — the chief↔employee transport fabric.

The PR 5 command protocol (SYNC/EXPLORE/MINIBATCH/SHUTDOWN with seq-echo
and tensor payloads) lives behind the :class:`Transport` /
:class:`ChiefChannel` / :class:`WorkerEndpoint` interfaces defined in
:mod:`.base`.  Two implementations ship:

* :class:`LocalTransport` — duplex pipes + shared-memory
  :class:`~repro.distributed.shm.TensorSlab` pairs; the single-host data
  path, bitwise-frozen against its pre-refactor behaviour;
* :class:`SocketTransport` — framed TCP (:mod:`.framing`, :mod:`.wire`)
  with heartbeats, generation-numbered reconnects, command
  retransmission and seeded network chaos (:mod:`.netfaults`).

:func:`build_worker_endpoint` is the worker-process entry: it turns the
picklable :class:`EndpointSpec` (plus the pipe's child end, for local
transports) into a live endpoint.
"""

from __future__ import annotations

from .base import (
    ChannelClosed,
    ChiefChannel,
    EndpointSpec,
    Transport,
    TransportError,
    WorkerEndpoint,
)
from .framing import (
    FrameAssembler,
    FrameError,
    MAX_FRAME_BYTES,
    decode_control,
    encode_control,
    encode_frame,
    split_frames,
)
from .local import LocalChiefChannel, LocalTransport, LocalWorkerEndpoint
from .netfaults import (
    CorruptFrameFault,
    DelayFrameFault,
    DropFrameFault,
    DuplicateFrameFault,
    NetworkFaultInjector,
    NetworkFaultPlan,
    PartitionFault,
)
from .socket_transport import (
    ANY_GENERATION,
    SocketChiefChannel,
    SocketTransport,
    SocketWorkerEndpoint,
)
from .wire import WIRE_DTYPES, TensorMessage, decode_tensors, encode_tensors

__all__ = [
    "ANY_GENERATION",
    "ChannelClosed",
    "ChiefChannel",
    "CorruptFrameFault",
    "DelayFrameFault",
    "DropFrameFault",
    "DuplicateFrameFault",
    "EndpointSpec",
    "FrameAssembler",
    "FrameError",
    "LocalChiefChannel",
    "LocalTransport",
    "LocalWorkerEndpoint",
    "MAX_FRAME_BYTES",
    "NetworkFaultInjector",
    "NetworkFaultPlan",
    "PartitionFault",
    "SocketChiefChannel",
    "SocketTransport",
    "SocketWorkerEndpoint",
    "TensorMessage",
    "Transport",
    "TransportError",
    "WIRE_DTYPES",
    "WorkerEndpoint",
    "build_worker_endpoint",
    "decode_control",
    "decode_tensors",
    "encode_control",
    "encode_frame",
    "encode_tensors",
    "split_frames",
]


def build_worker_endpoint(spec: EndpointSpec, conn=None) -> WorkerEndpoint:
    """Build the worker-side endpoint described by ``spec``.

    ``conn`` is the pipe's child end for local transports (handed to the
    forked entrypoint alongside the spec); socket transports dial in and
    ignore it.
    """
    if spec.kind == "local":
        return LocalWorkerEndpoint(spec, conn)
    if spec.kind == "socket":
        return SocketWorkerEndpoint(spec)
    raise ValueError(f"unknown transport kind {spec.kind!r}")
