"""Tensor wire encoding for TENSORS frames.

Both ends of a channel know the parameter layout (the same
``shapes`` list the :class:`~repro.distributed.shm.TensorSlab` uses),
so a tensor message never ships shapes — only a small fixed header and
the concatenated array payloads in layout order::

    offset  size  field
    ------  ----  ---------------------------------------------
    0       8     seq (big-endian signed)   — slab-stamp equivalent
    8       8     episode (big-endian signed)
    16      8     round (big-endian signed)
    24      1     wire-dtype code (0 = float64, 1 = float32)
    25      7     reserved (zero)
    32      n     array payloads, contiguous, layout order

Wire dtype
----------
``float64`` is the default and the only encoding compatible with the
repo's bitwise-equivalence contract: every weight broadcast and gradient
return round-trips the exact bytes NumPy holds in memory.  ``float32``
is an explicit opt-in that halves wire bytes at the cost of precision:
for any finite ``x`` within float32 range, the round-trip
``float64(float32(x))`` satisfies ``|x - rt(x)| <= 2**-24 * |x|`` (half
an ulp of the 24-bit significand; values beyond ~3.4e38 overflow to
inf).  That bound is asserted by the codec property tests — narrowed
transports are for bandwidth-starved deployments, never for runs whose
results must be comparable across backends.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .framing import FrameError

__all__ = [
    "TENSOR_HEADER",
    "TensorMessage",
    "WIRE_DTYPES",
    "decode_tensors",
    "encode_tensors",
    "payload_nbytes",
]

TENSOR_HEADER = struct.Struct(">qqqB7x")

#: Supported wire encodings, name -> (code, numpy dtype).
WIRE_DTYPES = {
    "float64": (0, np.dtype(np.float64)),
    "float32": (1, np.dtype(np.float32)),
}
_CODE_TO_DTYPE = {code: dtype for code, dtype in WIRE_DTYPES.values()}


def _resolve(wire_dtype: str) -> Tuple[int, np.dtype]:
    try:
        return WIRE_DTYPES[wire_dtype]
    except KeyError:
        raise ValueError(
            f"wire_dtype must be one of {sorted(WIRE_DTYPES)}, got {wire_dtype!r}"
        ) from None


def payload_nbytes(shapes: Sequence[Tuple[int, ...]], wire_dtype: str = "float64") -> int:
    """Payload size (header included) of one tensor message for ``shapes``."""
    __, dtype = _resolve(wire_dtype)
    elems = sum(int(np.prod(shape, dtype=np.int64)) for shape in shapes)
    return TENSOR_HEADER.size + elems * dtype.itemsize


@dataclass(frozen=True)
class TensorMessage:
    """A decoded TENSORS payload: stamped metadata plus float64 arrays."""

    seq: int
    episode: int
    round: int
    wire_dtype: str
    arrays: Tuple[np.ndarray, ...]
    nbytes: int


def encode_tensors(
    arrays: Sequence[np.ndarray],
    seq: int,
    episode: int = -1,
    round_index: int = -1,
    wire_dtype: str = "float64",
) -> bytes:
    """Serialize ``arrays`` into one TENSORS payload.

    The caller's arrays are float64 (the trainer's native dtype);
    ``wire_dtype="float32"`` narrows them on the way out.
    """
    code, dtype = _resolve(wire_dtype)
    chunks = [TENSOR_HEADER.pack(int(seq), int(episode), int(round_index), code)]
    for array in arrays:
        # The float32 path deliberately narrows for wire bandwidth
        # (explicit opt-in; the receiver widens back, bound tested).
        data = np.ascontiguousarray(array, dtype=dtype)
        chunks.append(data.tobytes())
    return b"".join(chunks)


def decode_tensors(
    payload: bytes, shapes: Sequence[Tuple[int, ...]]
) -> TensorMessage:
    """Parse one TENSORS payload into float64 arrays shaped as ``shapes``.

    Raises :class:`FrameError` when the payload does not match the layout
    both sides agreed on — a length mismatch means the peers disagree
    about the model architecture and nothing downstream can be trusted.
    """
    if len(payload) < TENSOR_HEADER.size:
        raise FrameError(
            f"tensor payload of {len(payload)} bytes is shorter than the "
            f"{TENSOR_HEADER.size}-byte header"
        )
    seq, episode, round_index, code = TENSOR_HEADER.unpack_from(payload)
    dtype = _CODE_TO_DTYPE.get(code)
    if dtype is None:
        raise FrameError(f"unknown wire-dtype code {code}")
    wire_name = "float64" if dtype.itemsize == 8 else "float32"
    expected = payload_nbytes(shapes, wire_name)
    if len(payload) != expected:
        raise FrameError(
            f"tensor payload is {len(payload)} bytes but the agreed layout "
            f"needs {expected} ({len(shapes)} arrays, {wire_name} wire)"
        )
    arrays: List[np.ndarray] = []
    offset = TENSOR_HEADER.size
    for shape in shapes:
        elems = int(np.prod(shape, dtype=np.int64))
        flat = np.frombuffer(payload, dtype=dtype, count=elems, offset=offset)
        arrays.append(flat.astype(np.float64).reshape(shape))
        offset += elems * dtype.itemsize
    return TensorMessage(
        seq=int(seq),
        episode=int(episode),
        round=int(round_index),
        wire_dtype=wire_name,
        arrays=tuple(arrays),
        nbytes=len(payload),
    )
