"""Synchronous chief–employee training (Section V-A, Algorithms 1-2).

One **chief** owns the global model and its optimizers.  ``M`` **employees**
each own a structurally identical local model and a local environment.
Every episode proceeds exactly as the pseudocode prescribes:

1. employees copy the global parameters;
2. each employee rolls one episode with its local policy into its replay
   buffer ``D`` (exploration);
3. for each of ``K`` update rounds, every employee samples a minibatch,
   computes gradients w.r.t. its local model, and pushes them to the PPO /
   curiosity gradient buffers; the chief waits for all ``M`` contributions,
   sums them, applies one Adam step to the global model, clears the
   buffers, and notifies the employees to re-copy parameters.

The paper argues for this *synchronous* design over asynchronous A3C-style
updates to avoid policy-lag.  The semantics are sequential-equivalent, so
this module offers four drivers with bitwise-identical results given a
seed (``TrainConfig.backend``):

* ``backend="serial"`` (``mode="sequential"``) — deterministic, single
  thread (default for tests);
* ``backend="thread"`` — employees run in a thread pool (numpy releases
  the GIL inside matmuls, so exploration and gradient computation
  overlap — but the Python autograd dispatch itself stays serialized);
* ``backend="process"`` — each employee lives in its own worker process
  (:mod:`repro.distributed.procpool`), with weight broadcast and gradient
  return through shared-memory slabs; occupies multiple cores;
* ``backend="socket"`` — the same pool over framed TCP
  (:mod:`repro.distributed.transport`), with heartbeats, reconnect and
  command retransmission; workers may be forked locally or dialed in
  from other hosts (``python -m repro worker``).

Fault tolerance
---------------
The paper's barrier assumes every employee returns a gradient every round;
a single crashed or slow worker would stall it forever, and one NaN
contribution would silently poison the global Adam step.  This trainer
therefore layers a **resilient barrier** on top of the synchronous
semantics:

* per-employee task timeout (``employee_timeout``) with bounded retry and
  exponential backoff (``max_retries`` / ``retry_backoff``);
* a **degraded-quorum mode**: the chief proceeds once
  ``quorum_fraction * M`` contributions arrive, rescaling the summed
  gradient by ``M / count`` so the step magnitude matches the full-barrier
  expectation.  With the default ``quorum_fraction=1.0`` and no faults the
  scale factor is exactly 1 and the histories stay bitwise identical to
  the plain synchronous loop;
* **gradient quarantine** at the buffer (non-finite / norm-exploded
  contributions are rejected before touching the sum; see
  :mod:`repro.distributed.gradient_buffer`);
* a :class:`TrainerHealth` report tracking per-employee crashes, timeouts,
  quarantined gradients, restarts and consecutive failures.  A failed
  employee is *restarted* at the next episode boundary by the ordinary
  re-sync from the global model (its local parameters can never diverge,
  so a fresh copy is a full restart).

Deterministic fault injection (for tests and chaos drills) is wired via
:class:`repro.distributed.faults.FaultInjector`.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import nn
from ..agents.base import EpisodeResult
from ..agents.policy import GradientPack
from ..agents.sharding import (
    combine_shard_packs,
    compute_sharded_update,
    normalize_minibatch,
    split_minibatch,
)
from ..env.env import CrowdsensingEnv
from ..env.metrics import Metrics
from ..obs.federation import update_employee_lag
from ..obs.flight import auto_dump
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import event as trace_event
from ..obs.trace import span as trace_span
from .faults import EXPLORE_ROUND, FaultError, FaultInjector, InjectedCrash
from .gradient_buffer import GradientBuffer, GradientRejected
from .procpool import (
    OP_EXPLORE,
    OP_MINIBATCH,
    OP_SAMPLE,
    OP_SHARD,
    ProcessEmployeePool,
    WorkerDied,
)

_LOG = get_logger(__name__)

__all__ = [
    "TrainConfig",
    "EpisodeLog",
    "TrainingHistory",
    "EmployeeHealth",
    "TrainerHealth",
    "ChiefEmployeeTrainer",
]


@dataclass(frozen=True)
class TrainConfig:
    """Knobs of the distributed training loop.

    Attributes
    ----------
    num_employees:
        ``M`` — parallel employee threads (paper default: 8).
    episodes:
        Training episodes (each employee contributes one rollout per
        episode).
    k_updates:
        ``K`` — chief update rounds per episode (Algorithm 1, line 17).
    mode:
        Legacy spelling of :attr:`backend`: ``"sequential"``,
        ``"thread"`` or ``"process"`` (normalized in ``__post_init__``
        so ``mode`` and ``backend`` always agree).
    backend:
        Employee execution backend — ``"serial"`` (single thread, the
        default), ``"thread"`` (thread pool; GIL-bound) or ``"process"``
        (one worker process per employee with shared-memory tensor
        transport; see :mod:`repro.distributed.procpool`).  ``None``
        derives the backend from ``mode``.  All three produce
        bitwise-identical histories and checkpoints for a given seed.
    eval_every:
        Evaluate the global policy greedily every this many episodes
        (0 disables evaluation).
    seed:
        Master seed; employee RNGs derive from it.
    quorum_fraction:
        Fraction of ``M`` gradient contributions the chief requires before
        applying an update.  ``1.0`` (default) is the paper's strict
        barrier; lower values enable degraded-quorum progress under
        employee failures, with the summed gradient rescaled by
        ``M / count`` so the step magnitude is unbiased.
    employee_timeout:
        Per-task straggler timeout in seconds (``0`` disables).  In thread
        mode the chief stops waiting for a late worker; in sequential mode
        the result of an over-budget task is discarded after the fact.
    max_retries:
        How many times a crashed or timed-out employee task is retried
        within the same barrier before the employee is marked failed for
        the episode.
    retry_backoff:
        Base of the exponential backoff between retries, in seconds
        (sleep is ``retry_backoff * 2**(attempt-1)``; ``0`` disables).
    quarantine_max_norm:
        If ``> 0``, gradient contributions whose global L2 norm exceeds
        this are quarantined (non-finite values are always quarantined).
    """

    num_employees: int = 8
    episodes: int = 100
    k_updates: int = 4
    #: Intra-minibatch data parallelism: split each employee's PPO
    #: minibatch into this many contiguous row shards and compute their
    #: gradients in parallel (process/socket backends fan the shards out
    #: over the worker pool; serial/thread run the same shards in shard
    #: order).  Advantages are normalized over the full minibatch on the
    #: chief, each shard is weighted ``n_k / B`` and the partial
    #: gradients are tree-reduced in fixed shard order, so all four
    #: backends stay bitwise identical to each other.  The sharded
    #: result differs from the unsharded bits (float addition is not
    #: associative), which is why the default is 1 (off).  See
    #: :mod:`repro.agents.sharding`.
    shard_minibatch: int = 1
    mode: str = "sequential"
    eval_every: int = 0
    seed: int = 0
    quorum_fraction: float = 1.0
    employee_timeout: float = 0.0
    max_retries: int = 1
    retry_backoff: float = 0.0
    quarantine_max_norm: float = 0.0
    backend: Optional[str] = None
    #: Socket backend only: chief listen address ``(host, port)`` (port 0
    #: picks a free one), tensor wire encoding (``"float64"`` is the
    #: bitwise-exact default; ``"float32"`` halves wire bytes at the cost
    #: of the cross-backend equivalence guarantee), worker heartbeat
    #: cadence, silence threshold after which a worker is declared dead,
    #: and how many of the highest employee indices are *external*
    #: workers (started via ``python -m repro worker``) rather than
    #: forked locally.
    listen: Tuple[str, int] = ("127.0.0.1", 0)
    wire_dtype: str = "float64"
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 10.0
    remote_workers: int = 0
    #: Metrics federation: process/socket workers ship metric deltas
    #: piggy-backed on replies and the chief folds them into the main
    #: registry under ``worker``/``host`` labels, plus the
    #: ``repro_employee_lag_seconds`` straggler gauge.  Pure bookkeeping
    #: on values that already exist — disabling it (``--no-federate``)
    #: changes no training result, matching the obs bitwise contract.
    federate: bool = True

    #: mode spelling -> canonical backend name.
    _MODE_TO_BACKEND = {
        "sequential": "serial",
        "serial": "serial",
        "thread": "thread",
        "process": "process",
        "socket": "socket",
    }

    def __post_init__(self) -> None:
        if self.num_employees < 1:
            raise ValueError(f"need at least one employee, got {self.num_employees}")
        if self.episodes < 1:
            raise ValueError(f"episodes must be >= 1, got {self.episodes}")
        if self.k_updates < 1:
            raise ValueError(f"k_updates must be >= 1, got {self.k_updates}")
        if self.shard_minibatch < 1:
            raise ValueError(
                f"shard_minibatch must be >= 1, got {self.shard_minibatch}"
            )
        if self.mode not in self._MODE_TO_BACKEND:
            raise ValueError(
                f"mode must be 'sequential', 'thread', 'process' or 'socket', "
                f"got {self.mode!r}"
            )
        backend = (
            self.backend
            if self.backend is not None
            else self._MODE_TO_BACKEND[self.mode]
        )
        if backend not in ("serial", "thread", "process", "socket"):
            raise ValueError(
                f"backend must be 'serial', 'thread', 'process' or 'socket', "
                f"got {self.backend!r}"
            )
        # Normalize so mode and backend always agree (and a
        # dataclasses.replace() round-trip stays consistent).
        object.__setattr__(self, "backend", backend)
        object.__setattr__(
            self, "mode", "sequential" if backend == "serial" else backend
        )
        if self.eval_every < 0:
            raise ValueError(f"eval_every cannot be negative, got {self.eval_every}")
        if not (0.0 < self.quorum_fraction <= 1.0):
            raise ValueError(
                f"quorum_fraction must be in (0, 1], got {self.quorum_fraction}"
            )
        if self.employee_timeout < 0:
            raise ValueError(
                f"employee_timeout cannot be negative, got {self.employee_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries cannot be negative, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff cannot be negative, got {self.retry_backoff}"
            )
        if self.quarantine_max_norm < 0:
            raise ValueError(
                f"quarantine_max_norm cannot be negative, "
                f"got {self.quarantine_max_norm}"
            )
        if self.wire_dtype not in ("float64", "float32"):
            raise ValueError(
                f"wire_dtype must be 'float64' or 'float32', got {self.wire_dtype!r}"
            )
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                f"heartbeat_timeout ({self.heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval})"
            )
        if not (0 <= self.remote_workers <= self.num_employees):
            raise ValueError(
                f"remote_workers must be in [0, num_employees], "
                f"got {self.remote_workers}"
            )
        if self.remote_workers and backend != "socket":
            raise ValueError("remote_workers requires backend='socket'")

    @property
    def quorum_size(self) -> int:
        """Minimum contributions the chief accepts per update round."""
        return max(1, math.ceil(self.quorum_fraction * self.num_employees))


@dataclass
class EpisodeLog:
    """Per-episode training record (mean over contributing employees)."""

    episode: int
    extrinsic_reward: float
    intrinsic_reward: float
    kappa: float
    xi: float
    rho: float
    policy_loss: float
    value_loss: float
    entropy: float
    wall_time: float
    eval_metrics: Optional[Metrics] = None


@dataclass
class TrainingHistory:
    """Everything a training run produced."""

    logs: List[EpisodeLog] = field(default_factory=list)
    total_wall_time: float = 0.0

    def curve(self, key: str) -> List[float]:
        """Per-episode series of one scalar field (e.g. ``"kappa"``)."""
        return [getattr(log, key) for log in self.logs]

    def eval_curve(self, key: str) -> List[tuple[int, float]]:
        """(episode, value) pairs from the periodic greedy evaluations."""
        return [
            (log.episode, getattr(log.eval_metrics, key))
            for log in self.logs
            if log.eval_metrics is not None
        ]

    def final_eval(self) -> Optional[Metrics]:
        """The most recent periodic evaluation, if any ran."""
        for log in reversed(self.logs):
            if log.eval_metrics is not None:
                return log.eval_metrics
        return None

    def extend(self, other: "TrainingHistory") -> "TrainingHistory":
        """Append another history's logs (e.g. after a resumed run)."""
        self.logs.extend(other.logs)
        self.total_wall_time += other.total_wall_time
        return self

    _CSV_FIELDS = (
        "episode",
        "extrinsic_reward",
        "intrinsic_reward",
        "kappa",
        "xi",
        "rho",
        "policy_loss",
        "value_loss",
        "entropy",
        "wall_time",
    )

    def save_csv(self, path) -> None:
        """Write the per-episode logs as CSV (for external plotting)."""
        import csv
        import os

        directory = os.path.dirname(os.fspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._CSV_FIELDS)
            for log in self.logs:
                writer.writerow([getattr(log, field) for field in self._CSV_FIELDS])

    def publish_to(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Re-emit the per-episode logs through a metrics registry.

        The last episode's scalars land in ``repro_episode_*`` gauges and
        the episode count in ``repro_history_episodes``, so the registry
        snapshot is one consistent view of what the history recorded.
        """
        registry = registry if registry is not None else get_registry()
        registry.gauge(
            "repro_history_episodes", "Episodes recorded in the training history"
        ).set(len(self.logs))
        registry.gauge(
            "repro_history_wall_seconds", "Total wall time of the training run"
        ).set(self.total_wall_time)
        if not self.logs:
            return
        last = self.logs[-1]
        for key, name, help_text in (
            ("extrinsic_reward", "repro_episode_reward", "Mean extrinsic reward"),
            ("intrinsic_reward", "repro_episode_intrinsic_reward", "Mean intrinsic reward"),
            ("kappa", "repro_episode_collection_ratio", "Collection ratio kappa"),
            ("xi", "repro_episode_fairness", "Fairness xi"),
            ("rho", "repro_episode_energy_efficiency", "Energy efficiency rho"),
        ):
            registry.gauge(name, help_text).set(float(getattr(last, key)))

    @classmethod
    def load_csv(cls, path) -> "TrainingHistory":
        """Read logs written by :meth:`save_csv` (eval columns excluded)."""
        import csv

        history = cls()
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                history.logs.append(
                    EpisodeLog(
                        episode=int(row["episode"]),
                        extrinsic_reward=float(row["extrinsic_reward"]),
                        intrinsic_reward=float(row["intrinsic_reward"]),
                        kappa=float(row["kappa"]),
                        xi=float(row["xi"]),
                        rho=float(row["rho"]),
                        policy_loss=float(row["policy_loss"]),
                        value_loss=float(row["value_loss"]),
                        entropy=float(row["entropy"]),
                        wall_time=float(row["wall_time"]),
                    )
                )
        return history


# ----------------------------------------------------------------------
# Health reporting
# ----------------------------------------------------------------------
@dataclass
class EmployeeHealth:
    """Fault counters for one employee."""

    crashes: int = 0
    timeouts: int = 0
    rejected_policy_gradients: int = 0
    rejected_curiosity_gradients: int = 0
    restarts: int = 0
    consecutive_failures: int = 0

    @property
    def rejected_gradients(self) -> int:
        """Total quarantined contributions (policy + curiosity)."""
        return self.rejected_policy_gradients + self.rejected_curiosity_gradients


@dataclass
class TrainerHealth:
    """Aggregated fault-tolerance report of one trainer."""

    employees: Dict[int, EmployeeHealth] = field(default_factory=dict)
    degraded_rounds: int = 0
    degraded_episodes: int = 0
    curiosity_skipped_rounds: int = 0

    def employee(self, index: int) -> EmployeeHealth:
        """The (auto-created) per-employee counter block."""
        if index not in self.employees:
            self.employees[index] = EmployeeHealth()
        return self.employees[index]

    @property
    def total_crashes(self) -> int:
        return sum(e.crashes for e in self.employees.values())

    @property
    def total_timeouts(self) -> int:
        return sum(e.timeouts for e in self.employees.values())

    @property
    def total_rejected_gradients(self) -> int:
        return sum(e.rejected_gradients for e in self.employees.values())

    @property
    def total_restarts(self) -> int:
        return sum(e.restarts for e in self.employees.values())

    @property
    def healthy(self) -> bool:
        """True when no fault of any kind has been observed."""
        return (
            self.total_crashes == 0
            and self.total_timeouts == 0
            and self.total_rejected_gradients == 0
            and self.degraded_rounds == 0
        )

    def summary(self) -> Dict[str, int]:
        """Flat counters for logging/CLI output."""
        return {
            "crashes": self.total_crashes,
            "timeouts": self.total_timeouts,
            "rejected_gradients": self.total_rejected_gradients,
            "restarts": self.total_restarts,
            "degraded_rounds": self.degraded_rounds,
            "degraded_episodes": self.degraded_episodes,
            "curiosity_skipped_rounds": self.curiosity_skipped_rounds,
        }

    def publish_to(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Re-emit the fault counters through a metrics registry.

        Gauges are *set* (not incremented), so re-publishing after every
        episode keeps the registry an idempotent view of this report:
        ``repro_health_<counter>`` for the aggregate summary and
        ``repro_health_employee_<counter>{employee=...}`` per employee.
        """
        registry = registry if registry is not None else get_registry()
        for key, value in self.summary().items():
            registry.gauge(
                f"repro_health_{key}", f"TrainerHealth aggregate counter {key!r}"
            ).set(value)
        per_employee = registry.gauge(
            "repro_health_employee_rejected_gradients",
            "Quarantined gradient contributions per employee",
            labelnames=("employee",),
        )
        per_crashes = registry.gauge(
            "repro_health_employee_crashes",
            "Crashes per employee",
            labelnames=("employee",),
        )
        per_restarts = registry.gauge(
            "repro_health_employee_restarts",
            "Restarts per employee",
            labelnames=("employee",),
        )
        for index, employee in sorted(self.employees.items()):
            per_employee.labels(employee=index).set(employee.rejected_gradients)
            per_crashes.labels(employee=index).set(employee.crashes)
            per_restarts.labels(employee=index).set(employee.restarts)


def _trainer_metrics(registry: Optional[MetricsRegistry] = None) -> Dict[str, object]:
    """Get-or-create the live trainer metrics in ``registry``.

    These stay hot during training (locked adds only — no clock reads
    happen inside the registry; durations are measured by the trainer
    with ``time.perf_counter``), so a metrics snapshot at any point
    reflects the run so far.
    """
    registry = registry if registry is not None else get_registry()
    return {
        "rejected": registry.counter(
            "repro_gradients_rejected_total",
            "Gradient contributions quarantined by the chief",
            labelnames=("kind", "employee"),
        ),
        "crashes": registry.counter(
            "repro_employee_crashes_total",
            "Employee task crashes absorbed by the resilient barrier",
            labelnames=("employee",),
        ),
        "timeouts": registry.counter(
            "repro_employee_timeouts_total",
            "Employee straggler timeouts absorbed by the resilient barrier",
            labelnames=("employee",),
        ),
        "restarts": registry.counter(
            "repro_employee_restarts_total",
            "Employee restarts at episode boundaries",
            labelnames=("employee",),
        ),
        "degraded": registry.counter(
            "repro_degraded_rounds_total",
            "Update rounds applied below the full employee barrier",
        ),
        "episodes": registry.counter(
            "repro_episodes_total", "Training episodes completed"
        ),
        "phase_seconds": registry.histogram(
            "repro_phase_seconds",
            "Wall time of one barrier phase (explore or one gradient round)",
            labelnames=("phase",),
            # Federation folds worker-side phase timings into this same
            # metric under fleet labels; chief-side observations leave the
            # extras empty so the plain rendering is unchanged.
            extra_labelnames=("worker", "host"),
        ),
        "barrier_wait": registry.histogram(
            "repro_barrier_wait_seconds",
            "Chief wait time collecting employee results at the barrier",
            labelnames=("phase",),
        ),
        "intrinsic": registry.gauge(
            "repro_intrinsic_reward",
            "Mean per-episode intrinsic (curiosity) reward",
        ),
    }


class _Employee:
    """One employee thread's local state."""

    def __init__(self, agent, env: CrowdsensingEnv, rng: np.random.Generator):
        self.agent = agent
        self.env = env
        self.rng = rng
        self.rollout = None
        # Serializes this employee's work so an abandoned (timed-out) task
        # can never race a retry or the next episode's sync on the shared
        # agent / env / rng state.  Allocated through the module attribute
        # (not a from-import) so `repro.analysis.lockwatch` can instrument
        # it: the factory is resolved at construction time, after a
        # lockwatch enable() has patched it.
        self.lock = threading.Lock()

    def sync(self, global_agent) -> None:
        with self.lock:
            self.agent.copy_parameters_from(global_agent)

    def explore(self) -> EpisodeResult:
        # Lock discipline (RPL005): the chief's _guarded_task holds
        # self.lock for the full task, so this access is externally
        # serialized — the intra-class checker cannot see the caller.
        self.rollout, result = self.agent.collect_episode(self.env, self.rng)  # reprolint: disable=RPL005
        return result

    def sample_minibatch(self, batch_size: int):
        """One minibatch draw — the exact RNG consumption of a gradient round."""
        # Lock held by the caller via _guarded_task (see explore()).
        return next(iter(self.rollout.minibatches(batch_size, self.rng, epochs=1)))  # reprolint: disable=RPL005

    def one_minibatch(self, batch_size: int) -> GradientPack:
        batch = self.sample_minibatch(batch_size)
        # Lock held by the caller via _guarded_task (see explore()).
        return self.agent.compute_gradients(batch)  # reprolint: disable=RPL005

    def sharded_minibatch(self, batch_size: int, num_shards: int) -> GradientPack:
        """Sharded-update reference path: sample once, shards in order."""
        batch = self.sample_minibatch(batch_size)
        # Lock held by the caller via _guarded_task (see explore()).
        return compute_sharded_update(self.agent, batch, num_shards)  # reprolint: disable=RPL005


class _EmployeeMirror:
    """Chief-side stand-in for an employee living in a worker process.

    The real agent/env/rollout live across the fork; the chief keeps only
    the **authoritative RNG mirror** (updated from every worker reply, fed
    back on every SYNC and on respawn).  Exposing ``rng`` and a no-op
    ``sync`` keeps the checkpoint machinery
    (:func:`repro.distributed.checkpoint.save_checkpoint` /
    ``load_checkpoint``) byte-compatible across backends: the saved
    employee RNG states are exactly the worker states, and a restore
    reaches the workers through the next episode's weight broadcast.
    """

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def sync(self, global_agent) -> None:
        """No-op: process workers sync via the shared-memory broadcast."""


class ChiefEmployeeTrainer:
    """The chief: owns the global agent, optimizers and the training loop.

    Parameters
    ----------
    global_agent:
        The global model (a :class:`~repro.agents.policy.PPOWorkerAgent`,
        :class:`~repro.agents.cews.CEWSAgent`, … or any agent implementing
        the collect/compute-gradients protocol).
    agent_factory:
        ``f(employee_index) -> agent`` building a structurally identical
        local agent for each employee.
    env_factory:
        ``f(employee_index) -> CrowdsensingEnv`` building each employee's
        local environment (same scenario, per the paper's setup).
    config:
        Loop configuration.
    eval_env:
        Optional environment for the periodic greedy evaluations.
    fault_injector:
        Optional :class:`~repro.distributed.faults.FaultInjector` driving
        deterministic crash/straggler/corruption events (tests and chaos
        drills); ``None`` leaves every fault path dormant.
    net_fault_injector:
        Optional
        :class:`~repro.distributed.transport.NetworkFaultInjector`
        dropping/delaying/corrupting frames at the socket-transport layer
        (chaos tests); ignored by the in-process backends.
    """

    def __init__(
        self,
        global_agent,
        agent_factory: Callable[[int], object],
        env_factory: Callable[[int], CrowdsensingEnv],
        config: Optional[TrainConfig] = None,
        eval_env: Optional[CrowdsensingEnv] = None,
        fault_injector: Optional[FaultInjector] = None,
        net_fault_injector=None,
    ):
        self.config = config if config is not None else TrainConfig()
        self.global_agent = global_agent
        self.eval_env = eval_env
        self.fault_injector = fault_injector
        self.net_fault_injector = net_fault_injector
        self.health = TrainerHealth()

        master = np.random.SeedSequence(self.config.seed)
        child_seeds = master.spawn(self.config.num_employees + 1)
        if self.config.backend in ("process", "socket"):
            # Agents/envs are built *inside* the worker processes by the
            # same factories; the chief keeps only the RNG mirrors.  The
            # seed derivation is identical to the in-process backends.
            self.employees = [
                _EmployeeMirror(rng=np.random.default_rng(child_seeds[i]))
                for i in range(self.config.num_employees)
            ]
        else:
            self.employees = [
                _Employee(
                    agent=agent_factory(i),
                    env=env_factory(i),
                    rng=np.random.default_rng(child_seeds[i]),
                )
                for i in range(self.config.num_employees)
            ]
        self._eval_rng = np.random.default_rng(child_seeds[-1])
        self._episodes_done = 0
        self._pending_restart: Set[int] = set()
        #: Last explore-phase wall time per employee (in-process backends;
        #: the process pool keeps its own ``explore_durations``).  Feeds
        #: the ``repro_employee_lag_seconds`` straggler gauge.
        self._explore_durations: Dict[int, float] = {}
        #: The most recent episode's log (for on_episode_end consumers
        #: such as the ASCII dashboard).
        self.last_episode_log: Optional[EpisodeLog] = None

        policy_params = global_agent.policy_parameters()
        curiosity_params = global_agent.curiosity_parameters()
        lr = global_agent.ppo.learning_rate
        self.policy_optimizer = nn.Adam(policy_params, lr=lr)
        self.curiosity_optimizer = (
            nn.Adam(curiosity_params, lr=global_agent.ppo.effective_curiosity_lr)
            if curiosity_params
            else None
        )
        self.ppo_buffer = GradientBuffer(
            len(policy_params),
            shapes=[p.data.shape for p in policy_params],
            max_norm=self.config.quarantine_max_norm,
        )
        self.curiosity_buffer = GradientBuffer(
            len(curiosity_params),
            shapes=[p.data.shape for p in curiosity_params],
            max_norm=self.config.quarantine_max_norm,
        )
        self._pool: Optional[ThreadPoolExecutor] = None
        self._proc_pool: Optional[ProcessEmployeePool] = None
        #: Global parameters in slab order: policy first, curiosity after.
        self._param_tensors = list(policy_params) + list(curiosity_params)
        if self.config.backend == "thread":
            self._pool = ThreadPoolExecutor(max_workers=self.config.num_employees)
        elif self.config.backend in ("process", "socket"):
            transport_options: Dict[str, object] = {}
            remote_indices: Sequence[int] = ()
            if self.config.backend == "socket":
                transport_options = {
                    "listen": tuple(self.config.listen),
                    "wire_dtype": self.config.wire_dtype,
                    "heartbeat_interval": self.config.heartbeat_interval,
                    "heartbeat_timeout": self.config.heartbeat_timeout,
                    "injector": self.net_fault_injector,
                }
                remote_indices = range(
                    self.config.num_employees - self.config.remote_workers,
                    self.config.num_employees,
                )
            self._proc_pool = ProcessEmployeePool(
                agent_factory,
                env_factory,
                self.config.num_employees,
                shapes=[tuple(p.data.shape) for p in self._param_tensors],
                num_policy_params=len(policy_params),
                initial_rng_states=[
                    e.rng.bit_generator.state for e in self.employees
                ],
                plan=(
                    self.fault_injector.plan
                    if self.fault_injector is not None
                    else None
                ),
                transport="local" if self.config.backend == "process" else "socket",
                transport_options=transport_options,
                remote_indices=remote_indices,
                federate=self.config.federate,
            )
        self._metrics = _trainer_metrics()

    # ------------------------------------------------------------------
    @property
    def episodes_completed(self) -> int:
        """Global episode counter (advances across ``train`` calls)."""
        return self._episodes_done

    # ------------------------------------------------------------------
    # Resilient barrier
    # ------------------------------------------------------------------
    def _guarded_task(
        self, index: int, episode: int, round_index: int, fn, phase: str = "task"
    ):
        employee = self.employees[index]
        with employee.lock:
            if self.fault_injector is not None:
                self.fault_injector.before_task(index, episode, round_index)
            start = time.perf_counter()
            try:
                with trace_span(
                    f"employee.{phase}",
                    employee=index,
                    episode=episode,
                    round=round_index,
                ):
                    return fn(employee)
            finally:
                if phase == "explore":
                    # Benign to race under the thread pool: each index is
                    # written by at most one live task per phase.
                    self._explore_durations[index] = (
                        time.perf_counter() - start
                    )

    def _note_crash(self, index: int, episode: int, round_index: int, phase: str) -> None:
        self.health.employee(index).crashes += 1
        self._metrics["crashes"].labels(employee=index).inc()
        trace_event(
            "fault.crash", employee=index, episode=episode, round=round_index, phase=phase
        )
        auto_dump("crash", employee=index, episode=episode, phase=phase)
        _LOG.warning(
            "employee %d crashed during %s (episode %d, round %d)",
            index,
            phase,
            episode,
            round_index,
        )

    def _note_timeout(self, index: int, episode: int, round_index: int, phase: str) -> None:
        self.health.employee(index).timeouts += 1
        self._metrics["timeouts"].labels(employee=index).inc()
        trace_event(
            "fault.timeout",
            employee=index,
            episode=episode,
            round=round_index,
            phase=phase,
        )
        _LOG.warning(
            "employee %d timed out during %s (episode %d, round %d)",
            index,
            phase,
            episode,
            round_index,
        )

    def _run_phase(
        self,
        fn: Callable[[_Employee], object],
        candidates: Sequence[int],
        episode: int,
        round_index: int,
        phase: str = "task",
        batch_size: Optional[int] = None,
    ) -> Tuple[Dict[int, object], Set[int]]:
        """Run one barrier phase over ``candidates`` with retry + timeout.

        Returns ``(results, failed)`` where ``results`` maps employee index
        to the task's return value and ``failed`` holds employees that
        exhausted every retry.  Only injected crashes, straggler timeouts
        and (process backend) real worker deaths are absorbed; genuine
        exceptions propagate unchanged.  ``fn`` drives the in-process
        backends; the process backend dispatches on ``phase`` and
        ``batch_size`` instead (the employee objects live across a fork).
        """
        config = self.config
        results: Dict[int, object] = {}
        pending = list(candidates)
        carried: Dict[int, object] = {}  # still-running futures of stragglers
        lost: Set[int] = set()  # dead workers that cannot retry this phase
        attempt = 0
        phase_start = time.perf_counter()
        while pending and attempt <= config.max_retries:
            if attempt and config.retry_backoff > 0:
                time.sleep(config.retry_backoff * (2 ** (attempt - 1)))
            failures: List[int] = []
            if self._proc_pool is not None:
                failures = self._run_phase_process(
                    pending, results, lost, episode, round_index, phase, batch_size
                )
            elif self._pool is not None:
                futures = {
                    index: carried.pop(index)
                    if index in carried
                    else self._pool.submit(
                        self._guarded_task, index, episode, round_index, fn, phase
                    )
                    for index in pending
                }
                timeout = config.employee_timeout if config.employee_timeout > 0 else None
                wait_start = time.perf_counter()
                for index in sorted(futures):
                    try:
                        results[index] = futures[index].result(timeout=timeout)
                    except FuturesTimeoutError:
                        # Straggler: keep the future — the retry waits for
                        # the same task instead of racing a duplicate.
                        self._note_timeout(index, episode, round_index, phase)
                        carried[index] = futures[index]
                        failures.append(index)
                    except InjectedCrash:
                        self._note_crash(index, episode, round_index, phase)
                        failures.append(index)
                self._metrics["barrier_wait"].labels(phase=phase).observe(
                    time.perf_counter() - wait_start
                )
            else:
                for index in pending:
                    task_start = time.perf_counter()
                    try:
                        outcome = self._guarded_task(
                            index, episode, round_index, fn, phase
                        )
                    except InjectedCrash:
                        self._note_crash(index, episode, round_index, phase)
                        failures.append(index)
                        continue
                    elapsed = time.perf_counter() - task_start
                    if config.employee_timeout > 0 and elapsed > config.employee_timeout:
                        # Sequential driver cannot preempt: the over-budget
                        # result is discarded after the fact.
                        self._note_timeout(index, episode, round_index, phase)
                        failures.append(index)
                    else:
                        results[index] = outcome
            pending = failures
            attempt += 1
        # Phase-exit drain: an abandoned straggler task may still be
        # running; it must never leak into (and interleave with) the next
        # phase's work on the same employee.
        if self._proc_pool is not None:
            for index, state in self._proc_pool.drain(range(config.num_employees)):
                # Fold the abandoned task's RNG consumption into the
                # mirror — matching the thread backend, where the
                # abandoned task mutates its employee's generator.
                self.employees[index].rng.bit_generator.state = state
        elif carried:
            self._drain_carried(carried, phase)
        self._metrics["phase_seconds"].labels(phase=phase).observe(
            time.perf_counter() - phase_start
        )
        return results, set(pending) | lost

    def _run_phase_process(
        self,
        pending: Sequence[int],
        results: Dict[int, object],
        lost: Set[int],
        episode: int,
        round_index: int,
        phase: str,
        batch_size: Optional[int],
    ) -> List[int]:
        """One attempt of a barrier phase against the process pool.

        Mirrors the thread branch of :meth:`_run_phase`: commands go out
        to every pending worker first, results are collected in index
        order, and the pool's exceptions map onto the same bookkeeping —
        ``FuturesTimeoutError`` -> timeout (command stays in flight, the
        retry waits for the same task), ``InjectedCrash`` -> crash (fired
        worker-side in ``before_task``, RNG mirror untouched),
        :class:`WorkerDied` -> crash + immediate respawn from the mirror.
        A worker that died during a gradient round lost its rollout and
        is marked ``lost`` (failed without retry) for this phase.
        """
        pool = self._proc_pool
        config = self.config
        op = OP_EXPLORE if phase == "explore" else OP_MINIBATCH
        failures: List[int] = []
        for index in pending:
            if not pool.has_in_flight(index):
                pool.submit(index, op, episode, round_index, batch_size=batch_size)
        timeout = config.employee_timeout if config.employee_timeout > 0 else None
        wait_start = time.perf_counter()
        for index in sorted(pending):
            try:
                outcome, rng_state = pool.wait(index, timeout, phase)
            except FuturesTimeoutError:
                self._note_timeout(index, episode, round_index, phase)
                failures.append(index)
            except InjectedCrash:
                self._note_crash(index, episode, round_index, phase)
                failures.append(index)
            except WorkerDied:
                self._note_crash(index, episode, round_index, phase)
                pool.revive(
                    index,
                    [p.data for p in self._param_tensors],
                    self.employees[index].rng.bit_generator.state,
                    episode,
                )
                if op == OP_EXPLORE:
                    failures.append(index)  # the respawn can retry exploration
                else:
                    lost.add(index)  # the fresh process has no rollout
            else:
                results[index] = outcome
                self.employees[index].rng.bit_generator.state = rng_state
        self._metrics["barrier_wait"].labels(phase=phase).observe(
            time.perf_counter() - wait_start
        )
        return failures

    def _sharded_round_process(
        self,
        active: Sequence[int],
        episode: int,
        round_index: int,
        batch_size: int,
    ) -> Tuple[Dict[int, object], Set[int]]:
        """One sharded gradient round against the process pool.

        Two sub-phases:

        1. **SAMPLE** — every active employee draws its minibatch in its
           own worker (byte-identical RNG consumption to an unsharded
           round) and ships the batch to the chief.  Retry, timeout,
           injected-crash and worker-death handling mirror
           :meth:`_run_phase_process`; the deterministic fault surface
           (``before_task``) fires here, once per employee per round.
        2. **SHARD** — the chief normalizes advantages over each full
           minibatch, splits it into contiguous shards and fans the
           shard tasks out over the workers that completed sampling, in
           waves (one in-flight command per worker).  Shard compute
           consumes no worker RNG, so any worker may compute any shard.
           A worker that dies mid-shard is revived, its shard resubmitted
           to the remaining workers (bounded by ``max_retries`` per
           shard) and the dead worker marked lost for later rounds (its
           rollout died with it).  Shard waits are blocking — straggler
           timeouts apply to the sample step only.

        Combining uses the same weighted fixed-order tree reduce as the
        in-process backends (:mod:`repro.agents.sharding`), so the
        per-employee contributions are bitwise identical across all four
        backends.
        """
        pool = self._proc_pool
        config = self.config
        phase = "gradients"
        phase_start = time.perf_counter()
        lost: Set[int] = set()

        batches: Dict[int, object] = {}
        pending = list(active)
        attempt = 0
        while pending and attempt <= config.max_retries:
            if attempt and config.retry_backoff > 0:
                time.sleep(config.retry_backoff * (2 ** (attempt - 1)))
            failures: List[int] = []
            for index in pending:
                if not pool.has_in_flight(index):
                    pool.submit(
                        index, OP_SAMPLE, episode, round_index, batch_size=batch_size
                    )
            timeout = config.employee_timeout if config.employee_timeout > 0 else None
            wait_start = time.perf_counter()
            for index in sorted(pending):
                try:
                    batch, rng_state = pool.wait(index, timeout, phase)
                except FuturesTimeoutError:
                    self._note_timeout(index, episode, round_index, phase)
                    failures.append(index)
                except InjectedCrash:
                    self._note_crash(index, episode, round_index, phase)
                    failures.append(index)
                except WorkerDied:
                    self._note_crash(index, episode, round_index, phase)
                    pool.revive(
                        index,
                        [p.data for p in self._param_tensors],
                        self.employees[index].rng.bit_generator.state,
                        episode,
                    )
                    lost.add(index)  # the fresh process has no rollout
                else:
                    batches[index] = batch
                    self.employees[index].rng.bit_generator.state = rng_state
            self._metrics["barrier_wait"].labels(phase=phase).observe(
                time.perf_counter() - wait_start
            )
            pending = failures
            attempt += 1
        # Abandoned sample stragglers must be absorbed (and their RNG
        # consumption mirrored) before any shard payload goes out.
        for index, state in pool.drain(range(config.num_employees)):
            self.employees[index].rng.bit_generator.state = state

        ppo_config = self.global_agent.ppo
        shards: Dict[int, List] = {
            index: split_minibatch(
                normalize_minibatch(batches[index], ppo_config),
                config.shard_minibatch,
            )
            for index in sorted(batches)
        }
        shard_packs: Dict[int, List] = {
            index: [None] * len(shards[index]) for index in shards
        }
        #: Compute pool: workers that completed sampling (alive, synced).
        workers = sorted(batches)
        queue = [(i, j) for i in sorted(shards) for j in range(len(shards[i]))]
        attempts: Dict[Tuple[int, int], int] = {}
        failed_shard: Set[int] = set()
        while queue and workers:
            wave, queue = queue[: len(workers)], queue[len(workers) :]
            submitted: List[Tuple[int, Tuple[int, int]]] = []
            for worker, (i, j) in zip(workers, wave):
                if i in failed_shard:
                    continue
                pool.submit(
                    worker, OP_SHARD, episode, round_index, shard=shards[i][j]
                )
                submitted.append((worker, (i, j)))
            retry: List[Tuple[int, int]] = []
            for worker, (i, j) in submitted:
                try:
                    pack, __ = pool.wait(worker, None, phase)
                except WorkerDied:
                    self._note_crash(worker, episode, round_index, phase)
                    pool.revive(
                        worker,
                        [p.data for p in self._param_tensors],
                        self.employees[worker].rng.bit_generator.state,
                        episode,
                    )
                    lost.add(worker)  # its rollout died with it
                    if worker in workers:
                        workers.remove(worker)
                    count = attempts.get((i, j), 0) + 1
                    attempts[(i, j)] = count
                    if count <= config.max_retries:
                        retry.append((i, j))
                    else:
                        failed_shard.add(i)
                else:
                    shard_packs[i][j] = pack
            queue = retry + queue
        failed_shard |= {
            index
            for index in shards
            if any(pack is None for pack in shard_packs[index])
        }

        results: Dict[int, object] = {}
        for index in sorted(shards):
            if index in failed_shard:
                continue
            results[index] = combine_shard_packs(
                shard_packs[index], [len(shard) for shard in shards[index]]
            )
        self._metrics["phase_seconds"].labels(phase=phase).observe(
            time.perf_counter() - phase_start
        )
        return results, set(pending) | lost | failed_shard

    def _drain_carried(self, carried: Dict[int, object], phase: str) -> None:
        """Cancel or finish abandoned straggler futures at phase exit.

        Without this, a future whose retries were exhausted kept running
        in the thread pool and could interleave with the next phase's
        work on the same employee (its task holds the employee lock, but
        the *ordering* of RNG consumption against the next phase was
        nondeterministic).  Queued futures are cancelled; running ones
        are waited out and their late results discarded.
        """
        for index in sorted(carried):
            future = carried[index]
            if future.cancel():
                continue
            try:
                future.result()
            except FaultError:
                continue  # late injected crash: already accounted
            except Exception:
                _LOG.exception(
                    "abandoned %s task of employee %d failed while draining",
                    phase,
                    index,
                )

    def _note_quarantine(
        self, index: int, episode: int, round_index: int, kind: str
    ) -> None:
        health = self.health.employee(index)
        if kind == "policy":
            health.rejected_policy_gradients += 1
        else:
            health.rejected_curiosity_gradients += 1
        self._metrics["rejected"].labels(kind=kind, employee=index).inc()
        trace_event(
            "fault.quarantine",
            employee=index,
            episode=episode,
            round=round_index,
            kind=kind,
        )
        auto_dump("quarantine", employee=index, episode=episode, kind=kind)
        _LOG.warning(
            "quarantined %s gradient from employee %d (episode %d, round %d)",
            kind,
            index,
            episode,
            round_index,
        )

    def _sync_employees(self, episode: int) -> None:
        """Broadcast the global parameters (Algorithm 1's sync), any backend.

        The process backend also ships each employee's RNG mirror and may
        discover dead workers here; those are respawned immediately and
        recorded as a crash + restart (the respawn *is* the restart).
        """
        if self._proc_pool is not None:
            arrays = [p.data for p in self._param_tensors]
            states = [e.rng.bit_generator.state for e in self.employees]
            respawned = self._proc_pool.sync(arrays, states, episode)
            for index in respawned:
                self._note_crash(index, episode, EXPLORE_ROUND, "sync")
                self.health.employee(index).restarts += 1
                self._metrics["restarts"].labels(employee=index).inc()
                trace_event("fault.restart", employee=index, episode=episode)
        else:
            for employee in self.employees:
                employee.sync(self.global_agent)

    def _require_quorum(self, count: int, what: str, episode: int) -> None:
        required = self.config.quorum_size
        if count < required:
            raise RuntimeError(
                f"episode {episode}: only {count}/{self.config.num_employees} "
                f"employees completed {what}; quorum requires {required} "
                f"(quorum_fraction={self.config.quorum_fraction})"
            )

    # ------------------------------------------------------------------
    # Gradient application
    # ------------------------------------------------------------------
    def _apply_policy_gradients(self, episode: int) -> None:
        with trace_span("chief.apply_gradients", kind="policy", episode=episode):
            grads, count = self.ppo_buffer.drain()
            num_employees = self.config.num_employees
            self._require_quorum(count, "a PPO gradient round", episode)
            if count != num_employees:
                # Degraded quorum: unbias the partial sum so the expected step
                # matches the full-barrier sum of M contributions.
                scale = num_employees / count
                grads = [grad * scale for grad in grads]
                self.health.degraded_rounds += 1
                self._metrics["degraded"].inc()
                trace_event(
                    "barrier.degraded", episode=episode, count=count, of=num_employees
                )
            params = self.global_agent.policy_parameters()
            max_norm = self.global_agent.ppo.max_grad_norm
            for param, grad in zip(params, grads):
                param.grad = grad
            nn.clip_grad_norm(params, max_norm)
            self.policy_optimizer.step()

    def _apply_curiosity_gradients(self, episode: int) -> None:
        if self.curiosity_optimizer is None:
            self.curiosity_buffer.clear()
            return
        if self.curiosity_buffer.count == 0:
            return
        with trace_span("chief.apply_gradients", kind="curiosity", episode=episode):
            grads, count = self.curiosity_buffer.drain()
            num_employees = self.config.num_employees
            if count < self.config.quorum_size:
                # The curiosity model is auxiliary: below quorum we skip the
                # round rather than stall the whole barrier.
                self.health.curiosity_skipped_rounds += 1
                return
            if count != num_employees:
                scale = num_employees / count
                grads = [grad * scale for grad in grads]
            self.curiosity_optimizer.apply_gradients(grads)

    # ------------------------------------------------------------------
    # One episode of the synchronous loop
    # ------------------------------------------------------------------
    def _train_one_episode(self, episode: int, batch_size: int) -> EpisodeLog:
        episode_start = time.perf_counter()
        all_indices = list(range(self.config.num_employees))

        # Employees copy the global parameters (Algorithm 1, line 22 /
        # initial sync).  For employees that failed last episode this very
        # re-sync *is* the restart: their entire mutable state is the
        # parameter copy plus a fresh rollout.
        for index in sorted(self._pending_restart):
            self.health.employee(index).restarts += 1
            self._metrics["restarts"].labels(employee=index).inc()
            trace_event("fault.restart", employee=index, episode=episode)
            _LOG.warning(
                "employee %d restarted at episode %d boundary "
                "(consecutive failures: %d)",
                index,
                episode,
                self.health.employee(index).consecutive_failures,
            )
        self._pending_restart.clear()
        with trace_span("phase.sync", episode=episode):
            self._sync_employees(episode)

        # Exploration phase (parallel in thread mode).
        self._explore_durations.clear()
        if self._proc_pool is not None:
            self._proc_pool.explore_durations.clear()
        with trace_span("phase.explore", episode=episode):
            explore_results, failed = self._run_phase(
                lambda e: e.explore(),
                all_indices,
                episode,
                EXPLORE_ROUND,
                phase="explore",
            )
        if self.config.federate:
            durations = (
                self._proc_pool.explore_durations
                if self._proc_pool is not None
                else self._explore_durations
            )
            stragglers = update_employee_lag(durations)
            for index in stragglers:
                trace_event(
                    "fleet.straggler",
                    employee=index,
                    episode=episode,
                    dur=durations[index],
                )
        active = sorted(explore_results)
        self._require_quorum(len(active), "exploration", episode)
        results: List[EpisodeResult] = [explore_results[i] for i in active]

        # K synchronous update rounds (Algorithm 1 lines 17-23 /
        # Algorithm 2).
        stats_accum = []
        num_shards = self.config.shard_minibatch
        for round_index in range(self.config.k_updates):
            with trace_span("phase.gradients", episode=episode, round=round_index):
                if num_shards > 1 and self._proc_pool is not None:
                    packs, round_failed = self._sharded_round_process(
                        active, episode, round_index, batch_size
                    )
                elif num_shards > 1:
                    packs, round_failed = self._run_phase(
                        lambda e: e.sharded_minibatch(batch_size, num_shards),
                        active,
                        episode,
                        round_index,
                        phase="gradients",
                        batch_size=batch_size,
                    )
                else:
                    packs, round_failed = self._run_phase(
                        lambda e: e.one_minibatch(batch_size),
                        active,
                        episode,
                        round_index,
                        phase="gradients",
                        batch_size=batch_size,
                    )
            if round_failed:
                failed |= round_failed
                active = [i for i in active if i not in round_failed]
            for index in sorted(packs):
                pack: GradientPack = packs[index]
                if self.fault_injector is not None:
                    self.fault_injector.corrupt_arrays(
                        index, episode, round_index, pack.policy, "policy"
                    )
                    self.fault_injector.corrupt_arrays(
                        index, episode, round_index, pack.curiosity, "curiosity"
                    )
                accepted = True
                try:
                    self.ppo_buffer.add(pack.policy, employee=index)
                except GradientRejected:
                    self._note_quarantine(index, episode, round_index, "policy")
                    accepted = False
                if pack.curiosity:
                    try:
                        self.curiosity_buffer.add(pack.curiosity, employee=index)
                    except GradientRejected:
                        self._note_quarantine(index, episode, round_index, "curiosity")
                if accepted:
                    stats_accum.append(pack.stats)
            self._apply_policy_gradients(episode)
            self._apply_curiosity_gradients(episode)
            with trace_span("phase.sync", episode=episode, round=round_index):
                self._sync_employees(episode)

        # Failure bookkeeping: contributors reset their streak, everyone
        # else extends it and is restarted at the next episode boundary.
        if failed:
            self.health.degraded_episodes += 1
        for index in all_indices:
            if index in failed:
                self.health.employee(index).consecutive_failures += 1
                self._pending_restart.add(index)
            elif index in self.health.employees:
                self.health.employees[index].consecutive_failures = 0

        eval_metrics = None
        if (
            self.config.eval_every
            and self.eval_env is not None
            and (episode + 1) % self.config.eval_every == 0
        ):
            from ..agents.base import evaluate_policy

            with trace_span("phase.eval", episode=episode):
                eval_metrics = evaluate_policy(
                    self.global_agent, self.eval_env, self._eval_rng
                )

        return EpisodeLog(
            episode=episode,
            extrinsic_reward=float(np.mean([r.extrinsic_reward for r in results])),
            intrinsic_reward=float(np.mean([r.intrinsic_reward for r in results])),
            kappa=float(np.mean([r.metrics.kappa for r in results])),
            xi=float(np.mean([r.metrics.xi for r in results])),
            rho=float(np.mean([r.metrics.rho for r in results])),
            policy_loss=float(np.mean([s.policy_loss for s in stats_accum])),
            value_loss=float(np.mean([s.value_loss for s in stats_accum])),
            entropy=float(np.mean([s.entropy for s in stats_accum])),
            wall_time=time.perf_counter() - episode_start,
            eval_metrics=eval_metrics,
        )

    # ------------------------------------------------------------------
    def train(
        self,
        episodes: Optional[int] = None,
        on_episode_end: Optional[Callable[["ChiefEmployeeTrainer", int], None]] = None,
    ) -> TrainingHistory:
        """Run the full synchronous loop; returns the training history.

        ``on_episode_end(trainer, episode)`` is invoked after each episode
        (used by the checkpointing driver in
        :func:`repro.experiments.training.resume_or_start`); the global
        episode counter advances across successive ``train`` calls so a
        restored trainer continues numbering where the checkpoint left off.
        """
        episodes = episodes if episodes is not None else self.config.episodes
        history = TrainingHistory()
        start = time.perf_counter()
        batch_size = self.global_agent.ppo.batch_size

        for __ in range(episodes):
            episode = self._episodes_done
            with trace_span("episode", episode=episode):
                log = self._train_one_episode(episode, batch_size)
            history.logs.append(log)
            self.last_episode_log = log
            self._episodes_done += 1
            self._metrics["episodes"].inc()
            self._metrics["intrinsic"].set(log.intrinsic_reward)
            if on_episode_end is not None:
                on_episode_end(self, episode)
        history.total_wall_time = time.perf_counter() - start
        history.publish_to()
        self.health.publish_to()
        return history

    def close(self) -> None:
        """Shut down worker pools and slabs (no-op for the serial driver)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._proc_pool is not None:
            self._proc_pool.shutdown()
            self._proc_pool = None

    def __enter__(self) -> "ChiefEmployeeTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
