"""Synchronous chief–employee training (Section V-A, Algorithms 1-2).

One **chief** owns the global model and its optimizers.  ``M`` **employees**
each own a structurally identical local model and a local environment.
Every episode proceeds exactly as the pseudocode prescribes:

1. employees copy the global parameters;
2. each employee rolls one episode with its local policy into its replay
   buffer ``D`` (exploration);
3. for each of ``K`` update rounds, every employee samples a minibatch,
   computes gradients w.r.t. its local model, and pushes them to the PPO /
   curiosity gradient buffers; the chief waits for all ``M`` contributions,
   sums them, applies one Adam step to the global model, clears the
   buffers, and notifies the employees to re-copy parameters.

The paper argues for this *synchronous* design over asynchronous A3C-style
updates to avoid policy-lag.  The semantics are sequential-equivalent, so
this module offers two drivers with identical results given a seed:

* ``mode="sequential"`` — deterministic, single thread (default for tests);
* ``mode="thread"`` — employees run in a thread pool (numpy releases the
  GIL inside matmuls, so exploration and gradient computation overlap).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..agents.base import EpisodeResult
from ..agents.policy import GradientPack
from ..env.env import CrowdsensingEnv
from ..env.metrics import Metrics
from .gradient_buffer import GradientBuffer

__all__ = ["TrainConfig", "EpisodeLog", "TrainingHistory", "ChiefEmployeeTrainer"]


@dataclass(frozen=True)
class TrainConfig:
    """Knobs of the distributed training loop.

    Attributes
    ----------
    num_employees:
        ``M`` — parallel employee threads (paper default: 8).
    episodes:
        Training episodes (each employee contributes one rollout per
        episode).
    k_updates:
        ``K`` — chief update rounds per episode (Algorithm 1, line 17).
    mode:
        ``"sequential"`` or ``"thread"``.
    eval_every:
        Evaluate the global policy greedily every this many episodes
        (0 disables evaluation).
    seed:
        Master seed; employee RNGs derive from it.
    """

    num_employees: int = 8
    episodes: int = 100
    k_updates: int = 4
    mode: str = "sequential"
    eval_every: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_employees < 1:
            raise ValueError(f"need at least one employee, got {self.num_employees}")
        if self.episodes < 1:
            raise ValueError(f"episodes must be >= 1, got {self.episodes}")
        if self.k_updates < 1:
            raise ValueError(f"k_updates must be >= 1, got {self.k_updates}")
        if self.mode not in ("sequential", "thread"):
            raise ValueError(f"mode must be 'sequential' or 'thread', got {self.mode!r}")
        if self.eval_every < 0:
            raise ValueError(f"eval_every cannot be negative, got {self.eval_every}")


@dataclass
class EpisodeLog:
    """Per-episode training record (mean over employees)."""

    episode: int
    extrinsic_reward: float
    intrinsic_reward: float
    kappa: float
    xi: float
    rho: float
    policy_loss: float
    value_loss: float
    entropy: float
    wall_time: float
    eval_metrics: Optional[Metrics] = None


@dataclass
class TrainingHistory:
    """Everything a training run produced."""

    logs: List[EpisodeLog] = field(default_factory=list)
    total_wall_time: float = 0.0

    def curve(self, key: str) -> List[float]:
        """Per-episode series of one scalar field (e.g. ``"kappa"``)."""
        return [getattr(log, key) for log in self.logs]

    def eval_curve(self, key: str) -> List[tuple[int, float]]:
        """(episode, value) pairs from the periodic greedy evaluations."""
        return [
            (log.episode, getattr(log.eval_metrics, key))
            for log in self.logs
            if log.eval_metrics is not None
        ]

    def final_eval(self) -> Optional[Metrics]:
        """The most recent periodic evaluation, if any ran."""
        for log in reversed(self.logs):
            if log.eval_metrics is not None:
                return log.eval_metrics
        return None

    _CSV_FIELDS = (
        "episode",
        "extrinsic_reward",
        "intrinsic_reward",
        "kappa",
        "xi",
        "rho",
        "policy_loss",
        "value_loss",
        "entropy",
        "wall_time",
    )

    def save_csv(self, path) -> None:
        """Write the per-episode logs as CSV (for external plotting)."""
        import csv
        import os

        directory = os.path.dirname(os.fspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._CSV_FIELDS)
            for log in self.logs:
                writer.writerow([getattr(log, field) for field in self._CSV_FIELDS])

    @classmethod
    def load_csv(cls, path) -> "TrainingHistory":
        """Read logs written by :meth:`save_csv` (eval columns excluded)."""
        import csv

        history = cls()
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                history.logs.append(
                    EpisodeLog(
                        episode=int(row["episode"]),
                        extrinsic_reward=float(row["extrinsic_reward"]),
                        intrinsic_reward=float(row["intrinsic_reward"]),
                        kappa=float(row["kappa"]),
                        xi=float(row["xi"]),
                        rho=float(row["rho"]),
                        policy_loss=float(row["policy_loss"]),
                        value_loss=float(row["value_loss"]),
                        entropy=float(row["entropy"]),
                        wall_time=float(row["wall_time"]),
                    )
                )
        return history


class _Employee:
    """One employee thread's local state."""

    def __init__(self, agent, env: CrowdsensingEnv, rng: np.random.Generator):
        self.agent = agent
        self.env = env
        self.rng = rng
        self.rollout = None

    def sync(self, global_agent) -> None:
        self.agent.copy_parameters_from(global_agent)

    def explore(self) -> EpisodeResult:
        self.rollout, result = self.agent.collect_episode(self.env, self.rng)
        return result

    def one_minibatch(self, batch_size: int) -> GradientPack:
        batch = next(iter(self.rollout.minibatches(batch_size, self.rng, epochs=1)))
        return self.agent.compute_gradients(batch)


class ChiefEmployeeTrainer:
    """The chief: owns the global agent, optimizers and the training loop.

    Parameters
    ----------
    global_agent:
        The global model (a :class:`~repro.agents.policy.PPOWorkerAgent`,
        :class:`~repro.agents.cews.CEWSAgent`, … or any agent implementing
        the collect/compute-gradients protocol).
    agent_factory:
        ``f(employee_index) -> agent`` building a structurally identical
        local agent for each employee.
    env_factory:
        ``f(employee_index) -> CrowdsensingEnv`` building each employee's
        local environment (same scenario, per the paper's setup).
    config:
        Loop configuration.
    eval_env:
        Optional environment for the periodic greedy evaluations.
    """

    def __init__(
        self,
        global_agent,
        agent_factory: Callable[[int], object],
        env_factory: Callable[[int], CrowdsensingEnv],
        config: Optional[TrainConfig] = None,
        eval_env: Optional[CrowdsensingEnv] = None,
    ):
        self.config = config if config is not None else TrainConfig()
        self.global_agent = global_agent
        self.eval_env = eval_env

        master = np.random.SeedSequence(self.config.seed)
        child_seeds = master.spawn(self.config.num_employees + 1)
        self.employees = [
            _Employee(
                agent=agent_factory(i),
                env=env_factory(i),
                rng=np.random.default_rng(child_seeds[i]),
            )
            for i in range(self.config.num_employees)
        ]
        self._eval_rng = np.random.default_rng(child_seeds[-1])

        policy_params = global_agent.policy_parameters()
        curiosity_params = global_agent.curiosity_parameters()
        lr = global_agent.ppo.learning_rate
        self.policy_optimizer = nn.Adam(policy_params, lr=lr)
        self.curiosity_optimizer = (
            nn.Adam(curiosity_params, lr=global_agent.ppo.effective_curiosity_lr)
            if curiosity_params
            else None
        )
        self.ppo_buffer = GradientBuffer(len(policy_params))
        self.curiosity_buffer = GradientBuffer(len(curiosity_params))
        self._pool: Optional[ThreadPoolExecutor] = None
        if self.config.mode == "thread":
            self._pool = ThreadPoolExecutor(max_workers=self.config.num_employees)

    # ------------------------------------------------------------------
    def _map(self, fn, items):
        if self._pool is None:
            return [fn(item) for item in items]
        return list(self._pool.map(fn, items))

    def _apply_policy_gradients(self) -> None:
        grads, count = self.ppo_buffer.drain()
        if count != self.config.num_employees:
            raise RuntimeError(
                f"chief expected {self.config.num_employees} PPO contributions, "
                f"got {count}"
            )
        params = self.global_agent.policy_parameters()
        max_norm = self.global_agent.ppo.max_grad_norm
        for param, grad in zip(params, grads):
            param.grad = grad
        nn.clip_grad_norm(params, max_norm)
        self.policy_optimizer.step()

    def _apply_curiosity_gradients(self) -> None:
        if self.curiosity_optimizer is None:
            self.curiosity_buffer.clear()
            return
        grads, count = self.curiosity_buffer.drain()
        if count != self.config.num_employees:
            raise RuntimeError(
                f"chief expected {self.config.num_employees} curiosity "
                f"contributions, got {count}"
            )
        self.curiosity_optimizer.apply_gradients(grads)

    # ------------------------------------------------------------------
    def train(self, episodes: Optional[int] = None) -> TrainingHistory:
        """Run the full synchronous loop; returns the training history."""
        episodes = episodes if episodes is not None else self.config.episodes
        history = TrainingHistory()
        start = time.perf_counter()
        batch_size = self.global_agent.ppo.batch_size

        for episode in range(episodes):
            episode_start = time.perf_counter()

            # Employees copy the global parameters (Algorithm 1, line 22 /
            # initial sync) and explore in parallel.
            for employee in self.employees:
                employee.sync(self.global_agent)
            results: List[EpisodeResult] = self._map(
                lambda e: e.explore(), self.employees
            )

            # K synchronous update rounds (Algorithm 1 lines 17-23 /
            # Algorithm 2).
            stats_accum = []
            for __ in range(self.config.k_updates):
                packs: List[GradientPack] = self._map(
                    lambda e: e.one_minibatch(batch_size), self.employees
                )
                for pack in packs:
                    self.ppo_buffer.add(pack.policy)
                    if pack.curiosity:
                        self.curiosity_buffer.add(pack.curiosity)
                    stats_accum.append(pack.stats)
                self._apply_policy_gradients()
                if self.curiosity_buffer.count:
                    self._apply_curiosity_gradients()
                for employee in self.employees:
                    employee.sync(self.global_agent)

            eval_metrics = None
            if (
                self.config.eval_every
                and self.eval_env is not None
                and (episode + 1) % self.config.eval_every == 0
            ):
                from ..agents.base import evaluate_policy

                eval_metrics = evaluate_policy(
                    self.global_agent, self.eval_env, self._eval_rng
                )

            history.logs.append(
                EpisodeLog(
                    episode=episode,
                    extrinsic_reward=float(
                        np.mean([r.extrinsic_reward for r in results])
                    ),
                    intrinsic_reward=float(
                        np.mean([r.intrinsic_reward for r in results])
                    ),
                    kappa=float(np.mean([r.metrics.kappa for r in results])),
                    xi=float(np.mean([r.metrics.xi for r in results])),
                    rho=float(np.mean([r.metrics.rho for r in results])),
                    policy_loss=float(np.mean([s.policy_loss for s in stats_accum])),
                    value_loss=float(np.mean([s.value_loss for s in stats_accum])),
                    entropy=float(np.mean([s.entropy for s in stats_accum])),
                    wall_time=time.perf_counter() - episode_start,
                    eval_metrics=eval_metrics,
                )
            )
        history.total_wall_time = time.perf_counter() - start
        return history

    def close(self) -> None:
        """Shut down the thread pool (no-op for the sequential driver)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ChiefEmployeeTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
