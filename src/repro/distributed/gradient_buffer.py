"""Global gradient buffers (Fig. 1, center).

Two of these sit between the employees and the chief: the **PPO gradient
buffer** (policy, value and CNN gradients) and the **curiosity gradient
buffer** (forward-model gradients).  Each "accepts the gradient sent by
employee threads ..., sums them up, and sends them to chief".

The buffer is thread-safe so the threaded driver's employees can push
concurrently; the chief drains it once all contributions have arrived.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["GradientBuffer"]


class GradientBuffer:
    """Thread-safe accumulator of aligned gradient lists."""

    def __init__(self, num_params: int):
        if num_params < 0:
            raise ValueError(f"num_params cannot be negative, got {num_params}")
        self.num_params = num_params
        self._lock = threading.Lock()
        self._sum: Optional[List[np.ndarray]] = None
        self._count = 0

    @property
    def count(self) -> int:
        """Number of employee contributions currently accumulated."""
        with self._lock:
            return self._count

    def add(self, grads: Sequence[np.ndarray]) -> None:
        """Add one employee's gradient list (summed elementwise)."""
        if len(grads) != self.num_params:
            raise ValueError(
                f"expected {self.num_params} gradient arrays, got {len(grads)}"
            )
        with self._lock:
            if self._sum is None:
                self._sum = [np.array(g, dtype=np.float64, copy=True) for g in grads]
            else:
                for acc, grad in zip(self._sum, grads):
                    if acc.shape != np.shape(grad):
                        raise ValueError(
                            f"gradient shape {np.shape(grad)} does not match "
                            f"accumulated shape {acc.shape}"
                        )
                    acc += grad
            self._count += 1

    def drain(self) -> tuple[List[np.ndarray], int]:
        """Return (summed gradients, contribution count) and clear.

        Raises if the buffer is empty — the chief must never apply a
        phantom update.
        """
        with self._lock:
            if self._sum is None:
                raise RuntimeError("drain() called on an empty gradient buffer")
            summed, count = self._sum, self._count
            self._sum = None
            self._count = 0
        return summed, count

    def clear(self) -> None:
        """Discard any accumulated gradients without applying them."""
        with self._lock:
            self._sum = None
            self._count = 0
