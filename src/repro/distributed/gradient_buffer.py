"""Global gradient buffers (Fig. 1, center).

Two of these sit between the employees and the chief: the **PPO gradient
buffer** (policy, value and CNN gradients) and the **curiosity gradient
buffer** (forward-model gradients).  Each "accepts the gradient sent by
employee threads ..., sums them up, and sends them to chief".

The buffer is thread-safe so the threaded driver's employees can push
concurrently; the chief drains it once all contributions have arrived.

Beyond the paper's happy path, the buffer is the natural **quarantine
point** for poisoned updates: a single NaN/Inf array summed into the
global gradient silently destroys the Adam state of every parameter it
touches.  ``add`` therefore validates each contribution *before* any of
it reaches the running sum — non-finite values are always rejected, and
an optional ``max_norm`` rejects norm-exploded contributions.  Rejections
raise :class:`GradientRejected` and are tallied per employee in
:attr:`GradientBuffer.rejections` so the trainer's health report can
attribute blame.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["GradientBuffer", "GradientRejected"]


class GradientRejected(ValueError):
    """A gradient contribution failed quarantine and was not accumulated."""


class GradientBuffer:
    """Thread-safe accumulator of aligned gradient lists.

    Parameters
    ----------
    num_params:
        Length of every contributed gradient list.
    shapes:
        Optional authoritative per-parameter shapes.  When given, every
        contribution (including the first) is validated against them and a
        mismatch names the offending parameter index.  Without it the first
        accepted contribution's shapes become authoritative.
    max_norm:
        If ``> 0``, reject contributions whose global L2 norm exceeds this
        threshold (norm-explosion quarantine).  ``0`` disables the check.
    """

    def __init__(
        self,
        num_params: int,
        shapes: Optional[Sequence[Tuple[int, ...]]] = None,
        max_norm: float = 0.0,
    ):
        if num_params < 0:
            raise ValueError(f"num_params cannot be negative, got {num_params}")
        if shapes is not None and len(shapes) != num_params:
            raise ValueError(
                f"shapes has {len(shapes)} entries but num_params={num_params}"
            )
        if max_norm < 0:
            raise ValueError(f"max_norm cannot be negative, got {max_norm}")
        self.num_params = num_params
        self.max_norm = float(max_norm)
        self._shapes = tuple(tuple(s) for s in shapes) if shapes is not None else None
        self._lock = threading.Lock()
        self._sum: Optional[List[np.ndarray]] = None
        self._count = 0
        self._rejections: Dict[int, int] = {}

    @property
    def count(self) -> int:
        """Number of employee contributions currently accumulated."""
        with self._lock:
            return self._count

    @property
    def rejections(self) -> Dict[int, int]:
        """Per-employee quarantine-rejection counts (-1 = anonymous)."""
        with self._lock:
            return dict(self._rejections)

    # ------------------------------------------------------------------
    def _validate(self, grads: Sequence[np.ndarray]) -> None:
        """Raise before anything touches the sum; the buffer stays intact."""
        if len(grads) != self.num_params:
            raise ValueError(
                f"expected {self.num_params} gradient arrays, got {len(grads)}"
            )
        expected = self._shapes
        if expected is None and self._sum is not None:
            expected = tuple(acc.shape for acc in self._sum)
        for index, grad in enumerate(grads):
            shape = np.shape(grad)
            if expected is not None and shape != expected[index]:
                raise ValueError(
                    f"gradient shape mismatch at parameter index {index}: "
                    f"got {shape}, expected {expected[index]}"
                )
        # Quarantine checks (never mutate state; caller may retry/skip).
        for index, grad in enumerate(grads):
            if not np.all(np.isfinite(grad)):
                raise GradientRejected(
                    f"non-finite gradient at parameter index {index} "
                    f"(quarantined before accumulation)"
                )
        if self.max_norm > 0.0:
            total = 0.0
            for grad in grads:
                total += float(np.sum(np.asarray(grad, dtype=np.float64) ** 2))
            norm = float(np.sqrt(total))
            if norm > self.max_norm:
                raise GradientRejected(
                    f"gradient norm {norm:.3e} exceeds quarantine threshold "
                    f"{self.max_norm:.3e}"
                )

    def add(self, grads: Sequence[np.ndarray], employee: int = -1) -> None:
        """Add one employee's gradient list (summed elementwise).

        Raises
        ------
        ValueError
            On a count or per-parameter shape mismatch (names the index).
        GradientRejected
            When the contribution fails quarantine (non-finite values or
            norm explosion).  The rejection is tallied against
            ``employee`` and the accumulated sum is left untouched.
        """
        with self._lock:
            try:
                self._validate(grads)
            except GradientRejected:
                self._rejections[employee] = self._rejections.get(employee, 0) + 1
                raise
            if self._sum is None:
                self._sum = [np.array(g, dtype=np.float64, copy=True) for g in grads]
            else:
                for acc, grad in zip(self._sum, grads):
                    acc += grad
            self._count += 1

    def drain(self) -> tuple[List[np.ndarray], int]:
        """Return (summed gradients, contribution count) and clear.

        Raises if the buffer is empty — the chief must never apply a
        phantom update.
        """
        with self._lock:
            if self._sum is None:
                raise RuntimeError("drain() called on an empty gradient buffer")
            summed, count = self._sum, self._count
            self._sum = None
            self._count = 0
        return summed, count

    def clear(self) -> None:
        """Discard any accumulated gradients without applying them."""
        with self._lock:
            self._sum = None
            self._count = 0

    def clear_rejections(self) -> None:
        """Reset the per-employee rejection tallies."""
        with self._lock:
            self._rejections = {}
