"""Shared-memory tensor transport for the process-backed employee backend.

The process backend (:mod:`repro.distributed.procpool`) must move two
kinds of tensor payloads every update round: the chief's weight broadcast
(global parameters -> every worker) and each worker's gradient return
(local gradients -> chief).  Pickling those lists of float64 arrays
through a pipe would copy every byte twice per hop (serialize +
deserialize) and burn the wall-clock wins process parallelism exists to
buy, so both directions go through **preallocated**
:class:`multiprocessing.shared_memory.SharedMemory` slabs instead:

* one :class:`TensorSlab` per direction per worker, sized once from the
  parameter shapes (gradient shapes equal parameter shapes);
* a tiny int64 header ``(seq, episode, round, payload_elems)`` followed by
  one flat float64 payload; each parameter is a contiguous sub-view at a
  fixed offset (see :class:`SlabLayout`);
* the command pipe provides the synchronization: a side only reads a slab
  after receiving the message that announces ``seq``, and the header
  ``seq`` is verified on read so stale or torn payloads are detected
  instead of silently consumed.

Lifecycle discipline (the acceptance criterion "no leaked segments"):

* the **creating** process (the chief) owns every segment: creation
  registers the slab in a module registry and an ``atexit`` hook unlinks
  whatever is still live at interpreter exit (normal exit *and*
  KeyboardInterrupt), guarded by the creator pid so a forked child that
  inherits the registry can never unlink the chief's segments;
* the **attaching** process (a worker) explicitly unregisters the segment
  from :mod:`multiprocessing.resource_tracker` — otherwise the tracker of
  an exiting worker "helpfully" destroys segments the chief still uses.

Segment names carry the ``repro-shm-<pid>-`` prefix so tests can scan
``/dev/shm`` for leaks attributable to one process.
"""

from __future__ import annotations

import atexit
import os
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.log import get_logger

_LOG = get_logger(__name__)

__all__ = ["SHM_PREFIX", "SlabLayout", "SlabStale", "TensorSlab", "slab_name"]

#: Name prefix of every segment this module creates (leak tests scan for it).
SHM_PREFIX = "repro-shm"

#: Header layout: four int64 slots before the float64 payload.
HEADER_FIELDS = ("seq", "episode", "round", "payload_elems")
_HEADER_BYTES = len(HEADER_FIELDS) * np.dtype(np.int64).itemsize


class SlabStale(RuntimeError):
    """A slab read observed a header ``seq`` other than the expected one."""


def slab_name(index: int, kind: str) -> str:
    """A unique segment name: ``repro-shm-<pid>-e<index><kind>-<token>``.

    The pid is the *creator's* pid, so a leak scan can attribute segments
    to the process that owns them; the random token makes names unique
    across trainers in one process.
    """
    return f"{SHM_PREFIX}-{os.getpid()}-e{index}{kind}-{secrets.token_hex(4)}"


class SlabLayout:
    """Fixed offsets of an ordered list of float64 tensors in one slab."""

    def __init__(self, shapes: Sequence[Tuple[int, ...]]):
        self.shapes: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(int(d) for d in shape) for shape in shapes
        )
        self.sizes: Tuple[int, ...] = tuple(
            int(np.prod(shape, dtype=np.int64)) if shape else 1
            for shape in self.shapes
        )
        offsets: List[int] = []
        cursor = 0
        for size in self.sizes:
            offsets.append(cursor)
            cursor += size
        self.offsets: Tuple[int, ...] = tuple(offsets)
        #: Total float64 elements in the payload.
        self.total_elems = cursor
        #: Total bytes including the header.
        self.total_bytes = _HEADER_BYTES + cursor * np.dtype(np.float64).itemsize

    def __len__(self) -> int:
        return len(self.shapes)


# ----------------------------------------------------------------------
# Live-segment registry (creator side)
# ----------------------------------------------------------------------
#: name -> (creator pid, SharedMemory) for every segment this process created
#: and has not yet unlinked.
_LIVE: Dict[str, Tuple[int, shared_memory.SharedMemory]] = {}
_ATEXIT_REGISTERED = False


def _unlink_live_segments() -> None:
    """atexit hook: unlink every still-live segment *we* created.

    The pid guard matters because ``fork`` children inherit the module
    state; a worker must never unlink the chief's segments on its way out
    (multiprocessing's fork path skips ``atexit`` hooks, but the guard
    keeps this safe even for exotic exit paths).
    """
    pid = os.getpid()
    for name in list(_LIVE):
        creator, segment = _LIVE[name]
        if creator != pid:
            continue
        del _LIVE[name]
        _retrack(segment)
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:
            continue


def _register_live(name: str, segment: shared_memory.SharedMemory) -> None:
    global _ATEXIT_REGISTERED
    _LIVE[name] = (os.getpid(), segment)
    if not _ATEXIT_REGISTERED:
        atexit.register(_unlink_live_segments)
        _ATEXIT_REGISTERED = True


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from unlinking an *attached* segment.

    CPython's tracker assumes whoever touches a segment owns it; an
    attaching worker exiting would otherwise unlink (or warn about) the
    chief's slab.  Ownership here is explicit: only the creator unlinks.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except (AttributeError, KeyError, ValueError):
        _LOG.warning("could not unregister %s from the resource tracker", segment.name)


def _retrack(segment: shared_memory.SharedMemory) -> None:
    """Re-register a segment with the tracker just before unlinking it.

    With the ``fork`` start method every worker shares the creator's
    tracker process, so a worker's :func:`_untrack` removes the *shared*
    cache entry; ``SharedMemory.unlink`` then double-unregisters and the
    tracker prints a spurious ``KeyError`` traceback.  Re-adding the name
    (idempotent — the cache is a set) keeps the unlink clean without ever
    leaving a stale entry behind.
    """
    try:
        resource_tracker.register(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except (AttributeError, ValueError):
        _LOG.warning("could not re-register %s with the resource tracker", segment.name)


class TensorSlab:
    """One shared-memory segment holding a header plus flat float64 tensors.

    Use :meth:`create` in the owning (chief) process and :meth:`attach` in
    workers; both sides agree on the layout via the parameter ``shapes``.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        layout: SlabLayout,
        owner: bool,
    ):
        self.segment = segment
        self.layout = layout
        self.owner = owner
        self._closed = False
        self._header = np.ndarray(
            (len(HEADER_FIELDS),), dtype=np.int64, buffer=segment.buf, offset=0
        )
        self._payload = np.ndarray(
            (layout.total_elems,),
            dtype=np.float64,
            buffer=segment.buf,
            offset=_HEADER_BYTES,
        )
        self._views: List[np.ndarray] = [
            self._payload[offset : offset + size].reshape(shape)
            for offset, size, shape in zip(layout.offsets, layout.sizes, layout.shapes)
        ]

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.segment.name

    @property
    def nbytes(self) -> int:
        return self.layout.total_bytes

    @classmethod
    def create(cls, name: str, shapes: Sequence[Tuple[int, ...]]) -> "TensorSlab":
        """Allocate a new segment (registered for atexit unlink)."""
        layout = SlabLayout(shapes)
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(layout.total_bytes, 1)
        )
        _register_live(name, segment)
        slab = cls(segment, layout, owner=True)
        slab._header[:] = -1
        return slab

    @classmethod
    def attach(cls, name: str, shapes: Sequence[Tuple[int, ...]]) -> "TensorSlab":
        """Map an existing segment (worker side); never unlinks it."""
        layout = SlabLayout(shapes)
        segment = shared_memory.SharedMemory(name=name)
        _untrack(segment)
        return cls(segment, layout, owner=False)

    # ------------------------------------------------------------------
    def write(
        self,
        arrays: Sequence[np.ndarray],
        seq: int,
        episode: int = -1,
        round_index: int = -1,
    ) -> int:
        """Copy ``arrays`` into the slab and stamp the header; returns bytes.

        The payload is written before the header so a reader that checks
        ``seq`` (after pipe synchronization) never sees a stamped header
        over torn data.
        """
        if len(arrays) != len(self._views):
            raise ValueError(
                f"slab holds {len(self._views)} tensors, got {len(arrays)}"
            )
        for view, array in zip(self._views, arrays):
            if np.shape(array) != view.shape:
                raise ValueError(
                    f"shape mismatch writing slab: got {np.shape(array)}, "
                    f"slab expects {view.shape}"
                )
            view[...] = array
        self._header[1] = episode
        self._header[2] = round_index
        self._header[3] = self.layout.total_elems
        self._header[0] = seq
        return self.nbytes

    def read(self, expected_seq: int, copy: bool = True) -> List[np.ndarray]:
        """The tensor list stamped with ``expected_seq``.

        ``copy=False`` returns live views into the slab — only safe when
        the consumer finishes with them before the next write (the
        worker's parameter sync copies into ``p.data`` immediately).
        """
        seq = int(self._header[0])
        if seq != expected_seq:
            raise SlabStale(
                f"slab {self.name}: header seq {seq} != expected {expected_seq}"
            )
        if not copy:
            return list(self._views)
        return [view.copy() for view in self._views]

    def header(self) -> Dict[str, int]:
        """The current header as a dict (diagnostics and tests)."""
        return {field: int(value) for field, value in zip(HEADER_FIELDS, self._header)}

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (both sides)."""
        if self._closed:
            return
        self._closed = True
        # Release the exported numpy views before closing the mapping.
        self._views = []
        self._header = None  # type: ignore[assignment]
        self._payload = None  # type: ignore[assignment]
        try:
            self.segment.close()
        except (BufferError, OSError):
            _LOG.warning("could not close shared-memory segment %s", self.name)

    def unlink(self) -> None:
        """Destroy the segment (creator side only; idempotent)."""
        self.close()
        if not self.owner:
            return
        _LIVE.pop(self.name, None)
        _retrack(self.segment)
        try:
            self.segment.unlink()
        except FileNotFoundError:
            return
