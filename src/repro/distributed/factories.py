"""Convenience constructors wiring agents, environments and the trainer.

The experiment harness builds many near-identical training setups (method
x scenario x hyperparameters); these factories centralize that wiring so
every table/figure runner stays small.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..agents.cews import CEWSAgent
from ..agents.dppo import DPPOAgent
from ..agents.edics import EdicsAgent
from ..agents.policy import PPOWorkerAgent
from ..agents.ppo import PPOConfig
from ..curiosity.base import NullCuriosity
from ..curiosity.icm import ICMCuriosity
from ..curiosity.rnd import RNDCuriosity
from ..curiosity.spatial import SpatialCuriosity
from ..env.config import ScenarioConfig
from ..env.env import CrowdsensingEnv
from ..env.generator import Scenario, generate_scenario
from ..env.state import STATE_CHANNELS
from .async_trainer import AsyncActorLearner, AsyncConfig
from .faults import FaultInjector
from .trainer import ChiefEmployeeTrainer, TrainConfig

__all__ = ["build_agent", "build_trainer", "build_async_trainer", "TRAINABLE_METHODS"]

TRAINABLE_METHODS = ("cews", "dppo", "edics")


def build_agent(
    method: str,
    config: ScenarioConfig,
    scenario: Optional[Scenario] = None,
    ppo: Optional[PPOConfig] = None,
    seed: int = 0,
    curiosity: Optional[str] = None,
    reward: Optional[str] = None,
    eta: float = 0.3,
    feature: str = "embedding",
    structure: str = "shared",
):
    """Build one trainable agent.

    Parameters
    ----------
    method:
        ``"cews"``, ``"dppo"`` or ``"edics"``.
    curiosity:
        Override the method's default curiosity: ``None`` (method default),
        ``"spatial"``, ``"icm"``, ``"rnd"`` or ``"none"``.  Used by the
        Fig. 4 / Fig. 5 ablations.
    reward:
        Override the training reward mode (``"sparse"`` / ``"dense"``);
        stored on the agent as ``reward_mode``.
    feature, structure:
        Spatial-curiosity variants (Fig. 4): feature in
        {"embedding", "direct"}, structure in {"shared", "independent"}.
    """
    if method not in TRAINABLE_METHODS:
        raise ValueError(f"method must be one of {TRAINABLE_METHODS}, got {method!r}")
    scenario = scenario if scenario is not None else generate_scenario(config)

    if method == "edics":
        agent = EdicsAgent(config, ppo=ppo, seed=seed)
    elif method == "dppo":
        agent = DPPOAgent(config, ppo=ppo, seed=seed)
    else:
        agent = CEWSAgent(
            config,
            scenario=scenario,
            ppo=ppo,
            eta=eta,
            feature=feature,
            structure=structure,
            seed=seed,
        )

    if curiosity is not None and method != "edics":
        if curiosity == "none":
            agent.curiosity = NullCuriosity()
        elif curiosity == "spatial":
            agent.curiosity = SpatialCuriosity(
                scenario.space,
                feature=feature,
                structure=structure,
                num_workers=config.num_workers,
                eta=eta,
                seed=seed,
                feature_seed=config.seed,
            )
        elif curiosity == "icm":
            agent.curiosity = ICMCuriosity(
                STATE_CHANNELS, config.grid, config.num_workers, eta=eta, seed=seed
            )
        elif curiosity == "rnd":
            agent.curiosity = RNDCuriosity(
                STATE_CHANNELS, config.grid, eta=eta, seed=seed,
                target_seed=config.seed,
            )
        else:
            raise ValueError(f"unknown curiosity override {curiosity!r}")
        agent._needs_states = not isinstance(agent.curiosity, NullCuriosity)

    if reward is not None:
        if reward not in ("sparse", "dense"):
            raise ValueError(f"reward must be 'sparse' or 'dense', got {reward!r}")
        agent.reward_mode = reward
    return agent


def build_worker_factories(
    method: str,
    config: ScenarioConfig,
    ppo: Optional[PPOConfig] = None,
    seed: int = 0,
    **agent_kwargs,
):
    """``(agent_factory, env_factory)`` matching :func:`build_trainer`.

    An external worker (``python -m repro worker``) must build the same
    per-employee agents and environments the chief's forked workers
    would: the same deterministic scenario from ``config`` and the same
    ``seed + 1000 + index`` agent seeding.  Launch it with the same
    ``--method/--scale/--seed`` as the chief and the factories line up.
    """
    scenario = generate_scenario(config)
    probe = build_agent(method, config, scenario=scenario, ppo=ppo, seed=seed, **agent_kwargs)
    reward_mode = getattr(probe, "reward_mode", "dense")

    def agent_factory(index: int):
        return build_agent(
            method,
            config,
            scenario=scenario,
            ppo=ppo,
            seed=seed + 1000 + index,
            **agent_kwargs,
        )

    def env_factory(index: int) -> CrowdsensingEnv:
        return CrowdsensingEnv(config, reward_mode=reward_mode, scenario=scenario)

    return agent_factory, env_factory


def build_trainer(
    method: str,
    config: ScenarioConfig,
    train: Optional[TrainConfig] = None,
    ppo: Optional[PPOConfig] = None,
    seed: int = 0,
    fault_injector: Optional[FaultInjector] = None,
    net_fault_injector=None,
    **agent_kwargs,
) -> ChiefEmployeeTrainer:
    """Build a ready-to-run chief–employee trainer for ``method``.

    The global agent and every employee share one generated scenario (the
    same map); each employee gets its own environment instance over it.
    ``fault_injector`` (tests / chaos drills) threads a deterministic
    fault schedule into the trainer's barrier; ``net_fault_injector``
    does the same for frames at the socket-transport layer.  Extra
    keyword arguments are forwarded to :func:`build_agent`.
    """
    train = train if train is not None else TrainConfig()
    scenario = generate_scenario(config)

    global_agent = build_agent(
        method, config, scenario=scenario, ppo=ppo, seed=seed, **agent_kwargs
    )
    reward_mode = getattr(global_agent, "reward_mode", "dense")

    def agent_factory(index: int):
        return build_agent(
            method,
            config,
            scenario=scenario,
            ppo=ppo,
            seed=seed + 1000 + index,
            **agent_kwargs,
        )

    def env_factory(index: int) -> CrowdsensingEnv:
        return CrowdsensingEnv(config, reward_mode=reward_mode, scenario=scenario)

    eval_env = CrowdsensingEnv(config, reward_mode=reward_mode, scenario=scenario)
    return ChiefEmployeeTrainer(
        global_agent=global_agent,
        agent_factory=agent_factory,
        env_factory=env_factory,
        config=train,
        eval_env=eval_env,
        fault_injector=fault_injector,
        net_fault_injector=net_fault_injector,
    )


def build_async_trainer(
    method: str,
    config: ScenarioConfig,
    async_config: Optional[AsyncConfig] = None,
    ppo: Optional[PPOConfig] = None,
    seed: int = 0,
    fault_injector: Optional[FaultInjector] = None,
    **agent_kwargs,
) -> AsyncActorLearner:
    """Build the asynchronous actor-learner alternative for ``method``.

    Mirrors :func:`build_trainer` but wires an :class:`AsyncActorLearner`
    (Section V-A's rejected design, with optional V-trace correction).
    ``edics`` is not supported — its per-worker networks have no single
    learner-side joint policy to correct.
    """
    if method == "edics":
        raise ValueError("the asynchronous trainer does not support 'edics'")
    async_config = async_config if async_config is not None else AsyncConfig()
    scenario = generate_scenario(config)

    learner = build_agent(
        method, config, scenario=scenario, ppo=ppo, seed=seed, **agent_kwargs
    )
    reward_mode = getattr(learner, "reward_mode", "dense")

    def actor_factory(index: int):
        return build_agent(
            method,
            config,
            scenario=scenario,
            ppo=ppo,
            seed=seed + 2000 + index,
            **agent_kwargs,
        )

    def env_factory(index: int) -> CrowdsensingEnv:
        return CrowdsensingEnv(config, reward_mode=reward_mode, scenario=scenario)

    return AsyncActorLearner(
        learner_agent=learner,
        actor_factory=actor_factory,
        env_factory=env_factory,
        config=async_config,
        fault_injector=fault_injector,
    )
