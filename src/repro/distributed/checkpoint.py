"""Training checkpoints: save and resume a chief–employee run.

Section VI-D: "In a training process, the parameters in DNNs are
periodically saved for testing."  A checkpoint captures everything needed
to resume exactly — the global agent's parameters (policy + curiosity) and
both Adam optimizers' moment state — as one ``.npz`` archive.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Union

import numpy as np

from .trainer import ChiefEmployeeTrainer

__all__ = ["save_checkpoint", "load_checkpoint"]

PathLike = Union[str, os.PathLike]

_NONE_SENTINEL = "__none__"


def _pack_optimizer(prefix: str, state: Dict, arrays: Dict[str, np.ndarray]) -> Dict:
    """Flatten an Adam state dict into the npz array table + a manifest."""
    manifest = {"step_count": state["step_count"], "m": [], "v": []}
    for kind in ("m", "v"):
        for i, moment in enumerate(state[kind]):
            if moment is None:
                manifest[kind].append(_NONE_SENTINEL)
            else:
                key = f"{prefix}.{kind}.{i}"
                arrays[key] = moment
                manifest[kind].append(key)
    return manifest


def _unpack_optimizer(manifest: Dict, archive) -> Dict:
    state = {"step_count": manifest["step_count"], "m": [], "v": []}
    for kind in ("m", "v"):
        for key in manifest[kind]:
            state[kind].append(None if key == _NONE_SENTINEL else archive[key])
    return state


def save_checkpoint(trainer: ChiefEmployeeTrainer, path: PathLike) -> None:
    """Write the trainer's resumable state to ``path`` (.npz)."""
    arrays: Dict[str, np.ndarray] = {}
    for key, value in trainer.global_agent.state_dict().items():
        arrays[f"agent.{key}"] = value

    manifest = {
        "policy_optimizer": _pack_optimizer(
            "opt.policy", trainer.policy_optimizer.state_dict(), arrays
        ),
    }
    if trainer.curiosity_optimizer is not None:
        manifest["curiosity_optimizer"] = _pack_optimizer(
            "opt.curiosity", trainer.curiosity_optimizer.state_dict(), arrays
        )
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8
    )

    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)


def load_checkpoint(trainer: ChiefEmployeeTrainer, path: PathLike) -> None:
    """Restore a trainer (global agent + optimizer state) in place.

    The trainer must be structurally identical to the one that saved the
    checkpoint (same method, scenario geometry and optimizer layout).
    """
    with np.load(path) as archive:
        manifest = json.loads(bytes(archive["__manifest__"]).decode())
        agent_state = {
            key[len("agent."):]: archive[key].copy()
            for key in archive.files
            if key.startswith("agent.")
        }
        trainer.global_agent.load_state_dict(agent_state)
        trainer.policy_optimizer.load_state_dict(
            _unpack_optimizer(manifest["policy_optimizer"], archive)
        )
        has_curiosity_state = "curiosity_optimizer" in manifest
        if trainer.curiosity_optimizer is not None:
            if not has_curiosity_state:
                raise ValueError(
                    "checkpoint has no curiosity optimizer state but the "
                    "trainer expects one"
                )
            trainer.curiosity_optimizer.load_state_dict(
                _unpack_optimizer(manifest["curiosity_optimizer"], archive)
            )
        elif has_curiosity_state:
            raise ValueError(
                "checkpoint contains curiosity optimizer state but the "
                "trainer has no curiosity optimizer"
            )
    # Employees re-sync from the restored global model on the next episode.
    for employee in trainer.employees:
        employee.sync(trainer.global_agent)
