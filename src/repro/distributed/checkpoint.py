"""Training checkpoints: crash-safe save and resume of a chief–employee run.

Section VI-D: "In a training process, the parameters in DNNs are
periodically saved for testing."  A checkpoint captures everything needed
to resume *bitwise exactly* — the global agent's parameters (policy +
curiosity), both Adam optimizers' moment state, the global episode
counter, and every RNG state (employees + eval) — as one ``.npz`` archive.

Crash safety
------------
``np.savez`` writes in place, so a crash mid-write used to leave a
truncated, unloadable archive *and* destroy the previous good checkpoint
at the same path.  Saves are now atomic: the archive is written to a
``<path>.tmp`` sibling, fsynced, and moved over the target with
``os.replace`` (atomic on POSIX).  A kill at any instant leaves either the
old complete file or the new complete file — never a hybrid.  Writing
through an explicit file handle also stops ``np.savez`` from silently
appending ``.npz`` to suffix-less paths, so ``load_checkpoint`` always
round-trips the exact path given to ``save_checkpoint``.

Every archive embeds a SHA-256 checksum over its array payload; loads
verify it and raise :class:`CheckpointCorruptError` on mismatch, so a
corrupted file is detected instead of silently resuming from garbage.

:class:`CheckpointManager` adds a rolling ``keep_last=N`` scheme with an
atomically-updated ``latest`` pointer and checksum-validated fallback:
``restore_latest`` walks back through older checkpoints until one loads
cleanly.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zipfile
from typing import Dict, List, Optional, Union

import numpy as np

from ..obs.log import get_logger
from ..obs.trace import span as trace_span
from .faults import FaultInjector
from .trainer import ChiefEmployeeTrainer

_LOG = get_logger(__name__)

__all__ = [
    "CheckpointCorruptError",
    "save_checkpoint",
    "load_checkpoint",
    "verify_checkpoint",
    "CheckpointManager",
]

PathLike = Union[str, os.PathLike]

_NONE_SENTINEL = "__none__"
_CKPT_PATTERN = re.compile(r"^ckpt-(\d+)\.npz$")


class CheckpointCorruptError(RuntimeError):
    """The checkpoint failed checksum / structural validation on load."""


def _pack_optimizer(prefix: str, state: Dict, arrays: Dict[str, np.ndarray]) -> Dict:
    """Flatten an Adam state dict into the npz array table + a manifest."""
    manifest = {"step_count": state["step_count"], "m": [], "v": []}
    for kind in ("m", "v"):
        for i, moment in enumerate(state[kind]):
            if moment is None:
                manifest[kind].append(_NONE_SENTINEL)
            else:
                key = f"{prefix}.{kind}.{i}"
                arrays[key] = moment
                manifest[kind].append(key)
    return manifest


def _unpack_optimizer(manifest: Dict, archive) -> Dict:
    state = {"step_count": manifest["step_count"], "m": [], "v": []}
    for kind in ("m", "v"):
        for key in manifest[kind]:
            state[kind].append(None if key == _NONE_SENTINEL else archive[key])
    return state


def _payload_checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over every non-manifest array (name, dtype, shape, bytes)."""
    digest = hashlib.sha256()
    for key in sorted(arrays):
        if key == "__manifest__":
            continue
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def _rng_states(trainer: ChiefEmployeeTrainer) -> Dict:
    return {
        "employees": [e.rng.bit_generator.state for e in trainer.employees],
        "eval": trainer._eval_rng.bit_generator.state,
    }


def save_checkpoint(
    trainer: ChiefEmployeeTrainer,
    path: PathLike,
    fault_injector: Optional[FaultInjector] = None,
) -> str:
    """Atomically write the trainer's resumable state to ``path`` (.npz).

    Returns the exact path written.  ``fault_injector`` (tests only) may
    interrupt the write between the temp file and the atomic rename; the
    previous checkpoint at ``path`` is untouched in that case.
    """
    path = os.fspath(path)
    arrays: Dict[str, np.ndarray] = {}
    for key, value in trainer.global_agent.state_dict().items():
        arrays[f"agent.{key}"] = value

    manifest = {
        "policy_optimizer": _pack_optimizer(
            "opt.policy", trainer.policy_optimizer.state_dict(), arrays
        ),
        "episodes_completed": trainer.episodes_completed,
        "rng": _rng_states(trainer),
    }
    if trainer.curiosity_optimizer is not None:
        manifest["curiosity_optimizer"] = _pack_optimizer(
            "opt.curiosity", trainer.curiosity_optimizer.state_dict(), arrays
        )
    manifest["checksum"] = _payload_checksum(arrays)
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8
    )

    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    try:
        with trace_span("checkpoint.save", path=os.path.basename(path)):
            with open(tmp_path, "wb") as handle:
                # An explicit handle keeps np.savez from appending '.npz'.
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            if fault_injector is not None:
                fault_injector.on_checkpoint_write(tmp_path)
            os.replace(tmp_path, path)  # atomic on POSIX
            _fsync_dir(os.path.dirname(path))
    except BaseException:
        # Leave no stray temp file behind on any failure path; the
        # previous checkpoint at ``path`` stays valid either way.
        if os.path.exists(tmp_path):
            try:
                os.remove(tmp_path)
            except OSError:
                pass
        raise
    return path


def _fsync_dir(directory: str) -> None:
    """Make a rename durable: fsync the *directory* holding the entry.

    ``os.replace`` is atomic but not durable — after a crash the
    directory may still hold the old entry unless the directory inode
    itself was fsynced.  Platforms whose directories cannot be opened or
    fsynced (Windows) are skipped.
    """
    if not directory:
        directory = "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


def _resolve_load_path(path: PathLike) -> str:
    """The exact path, with a legacy '.npz'-appended fallback."""
    path = os.fspath(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        return path + ".npz"  # archives written by the pre-atomic np.savez
    return path


def load_checkpoint(
    trainer: ChiefEmployeeTrainer,
    path: PathLike,
    verify: bool = True,
) -> Optional[int]:
    """Restore a trainer (agent, optimizers, RNGs, episode counter) in place.

    The trainer must be structurally identical to the one that saved the
    checkpoint (same method, scenario geometry and optimizer layout).
    Returns the checkpoint's completed-episode count (``None`` for legacy
    archives without one).  Raises :class:`CheckpointCorruptError` when
    ``verify`` is on and the archive fails checksum or structural checks.
    """
    path = _resolve_load_path(path)
    with trace_span("checkpoint.restore", path=os.path.basename(path)):
        try:
            archive_ctx = np.load(path)
        except (zipfile.BadZipFile, OSError, ValueError) as error:
            raise CheckpointCorruptError(f"unreadable checkpoint {path!r}: {error}")
        with archive_ctx as archive:
            try:
                manifest = json.loads(bytes(archive["__manifest__"]).decode())
                arrays = {key: archive[key] for key in archive.files}
            except (KeyError, ValueError, zipfile.BadZipFile, OSError) as error:
                raise CheckpointCorruptError(
                    f"checkpoint {path!r} has no readable manifest: {error}"
                )
    if verify and "checksum" in manifest:
        del arrays["__manifest__"]
        actual = _payload_checksum(arrays)
        if actual != manifest["checksum"]:
            raise CheckpointCorruptError(
                f"checkpoint {path!r} failed checksum validation "
                f"(expected {manifest['checksum'][:12]}…, got {actual[:12]}…)"
            )
        arrays["__manifest__"] = None  # keep key space consistent

    agent_state = {
        key[len("agent."):]: value.copy()
        for key, value in arrays.items()
        if key.startswith("agent.")
    }
    trainer.global_agent.load_state_dict(agent_state)
    trainer.policy_optimizer.load_state_dict(
        _unpack_optimizer(manifest["policy_optimizer"], arrays)
    )
    has_curiosity_state = "curiosity_optimizer" in manifest
    if trainer.curiosity_optimizer is not None:
        if not has_curiosity_state:
            raise ValueError(
                "checkpoint has no curiosity optimizer state but the "
                "trainer expects one"
            )
        trainer.curiosity_optimizer.load_state_dict(
            _unpack_optimizer(manifest["curiosity_optimizer"], arrays)
        )
    elif has_curiosity_state:
        raise ValueError(
            "checkpoint contains curiosity optimizer state but the "
            "trainer has no curiosity optimizer"
        )

    # RNG + episode-counter restore (new archives only): this is what makes
    # a resumed run bitwise-identical to an uninterrupted one.
    rng = manifest.get("rng")
    if rng is not None:
        states = rng.get("employees", [])
        if len(states) != len(trainer.employees):
            raise ValueError(
                f"checkpoint has {len(states)} employee RNG states but the "
                f"trainer has {len(trainer.employees)} employees"
            )
        for employee, state in zip(trainer.employees, states):
            employee.rng.bit_generator.state = state
        trainer._eval_rng.bit_generator.state = rng["eval"]
    episodes_completed = manifest.get("episodes_completed")
    if episodes_completed is not None:
        trainer._episodes_done = int(episodes_completed)

    # Employees re-sync from the restored global model on the next episode.
    for employee in trainer.employees:
        employee.sync(trainer.global_agent)
    return episodes_completed


def verify_checkpoint(path: PathLike) -> bool:
    """True iff ``path`` is a readable checkpoint with a valid checksum."""
    path = _resolve_load_path(path)
    try:
        with np.load(path) as archive:
            manifest = json.loads(bytes(archive["__manifest__"]).decode())
            arrays = {
                key: archive[key] for key in archive.files if key != "__manifest__"
            }
    except (KeyError, ValueError, OSError, zipfile.BadZipFile):
        return False
    if "checksum" not in manifest:
        return True  # legacy archive: structurally readable is the best bar
    return _payload_checksum(arrays) == manifest["checksum"]


class CheckpointManager:
    """Rolling, crash-safe checkpoint directory.

    Layout::

        <directory>/ckpt-00000012.npz   # one archive per saved episode
        <directory>/latest              # pointer file (atomic replace)

    ``keep_last`` bounds disk usage; ``restore_latest`` follows the pointer
    and falls back through older archives whenever validation fails, so a
    corrupted or half-written newest checkpoint never blocks recovery.
    """

    def __init__(
        self,
        directory: PathLike,
        keep_last: int = 3,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = os.fspath(directory)
        self.keep_last = keep_last
        self.fault_injector = fault_injector
        os.makedirs(self.directory, exist_ok=True)

    # -- paths ----------------------------------------------------------
    def _path_for(self, episode: int) -> str:
        return os.path.join(self.directory, f"ckpt-{episode:08d}.npz")

    @property
    def latest_pointer(self) -> str:
        return os.path.join(self.directory, "latest")

    def checkpoints(self) -> List[str]:
        """All checkpoint paths, oldest first."""
        entries = []
        for name in os.listdir(self.directory):
            match = _CKPT_PATTERN.match(name)
            if match:
                entries.append((int(match.group(1)), name))
        return [os.path.join(self.directory, name) for __, name in sorted(entries)]

    def latest(self) -> Optional[str]:
        """The pointer target if valid, else the newest archive on disk."""
        try:
            with open(self.latest_pointer) as handle:
                name = handle.read().strip()
            candidate = os.path.join(self.directory, name)
            if name and os.path.exists(candidate):
                return candidate
        except OSError:
            pass
        paths = self.checkpoints()
        return paths[-1] if paths else None

    # -- write path -----------------------------------------------------
    def save(self, trainer: ChiefEmployeeTrainer, episode: Optional[int] = None) -> str:
        """Checkpoint ``trainer``, advance the pointer, prune old archives."""
        episode = episode if episode is not None else trainer.episodes_completed
        path = save_checkpoint(trainer, self._path_for(episode), self.fault_injector)
        tmp_pointer = self.latest_pointer + ".tmp"
        with open(tmp_pointer, "w") as handle:
            handle.write(os.path.basename(path))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_pointer, self.latest_pointer)
        _fsync_dir(self.directory)
        self._prune()
        return path

    def _prune(self) -> None:
        paths = self.checkpoints()
        for path in paths[: max(len(paths) - self.keep_last, 0)]:
            try:
                os.remove(path)
            except OSError:
                pass

    # -- read path ------------------------------------------------------
    def restore_latest(self, trainer: ChiefEmployeeTrainer) -> Optional[int]:
        """Restore the newest *valid* checkpoint; returns its episode count.

        Walks from the pointer target backwards through older archives,
        skipping any that fail checksum/structural validation.  Returns
        ``None`` (trainer untouched) when nothing valid exists.
        """
        candidates: List[str] = []
        pointed = self.latest()
        if pointed is not None:
            candidates.append(pointed)
        for path in reversed(self.checkpoints()):
            if path not in candidates:
                candidates.append(path)
        for path in candidates:
            try:
                episodes = load_checkpoint(trainer, path, verify=True)
            except (CheckpointCorruptError, KeyError) as error:
                _LOG.warning(
                    "skipping invalid checkpoint %s: %s", os.path.basename(path), error
                )
                continue
            if episodes is None:
                match = _CKPT_PATTERN.match(os.path.basename(path))
                episodes = int(match.group(1)) if match else 0
                trainer._episodes_done = episodes
            return episodes
        return None
