"""Process-backed employee pool: true multi-core chief–employee training.

Why processes
-------------
The paper's synchronous chief–employee architecture (Section V-A, Fig. 1)
exists to parallelize employee exploration and gradient computation, and
DPPO-style distributed PPO gets its wall-clock wins from workers
computing gradients concurrently.  Our autograd substrate is numpy-on-
Python: the per-op Python dispatch holds the GIL, so the
``ThreadPoolExecutor`` backend overlaps only the slices of time numpy
spends inside C kernels — on small CEWS networks that is a minority of
the step, and the "distributed" trainer runs at roughly serial speed.
This module gives each :class:`~repro.distributed.trainer._Employee` its
own **worker process**, so M employees genuinely occupy M cores.

Protocol
--------
Each worker is driven over a duplex pipe by a four-command protocol::

    SYNC      chief -> worker   read weights slab (seq-stamped), optionally
                                re-seed the worker RNG; ack'd
    EXPLORE   chief -> worker   roll one episode into the local buffer;
                                reply carries the EpisodeResult + RNG state
    MINIBATCH chief -> worker   sample one minibatch, compute gradients,
                                write them to the gradients slab; reply
                                carries PPOStats + RNG state
    SHUTDOWN  chief -> worker   ack and exit

Commands are strictly serial per worker (at most one outstanding), each
stamped with a monotonically increasing ``seq`` echoed by the reply and
verified against the slab headers — a stale or torn payload raises
instead of being consumed.  Replies are small (floats, RNG state dicts);
**tensor payloads never cross the pipe**: the weight broadcast and the
gradient return travel through preallocated per-worker
:class:`~repro.distributed.shm.TensorSlab` pairs (flat float64 views per
parameter, ``(seq, episode, round, len)`` header — no per-round pickling
of Tensors).

Determinism contract
--------------------
The chief keeps the **authoritative RNG mirror** for every employee:
each successful (or drained) task reply returns the worker's post-task
``bit_generator.state`` and the chief stores it; every SYNC ships the
mirror state back.  Fault-free runs are therefore bitwise-identical to
the serial and thread backends (same seed derivation, same consumption
order), checkpoints capture exact employee RNG states, and a respawned
worker resumes from the last known-good state — exactly like a restarted
thread employee, whose injected crash also fires *before* any RNG
consumption.

Fault tolerance
---------------
The :class:`~repro.distributed.faults.FaultPlan` is forwarded to each
worker, which drives its own :class:`FaultInjector` for stragglers and
crashes (``before_task``); injected crashes come back as ``"crash"``
replies and map onto the trainer's existing ``_note_crash`` path.
Corruption and checkpoint faults stay chief-side (unchanged code paths).
Real worker death (SIGKILL, OOM, hard bug) surfaces as pipe EOF and
raises :class:`WorkerDied`; the chief records a crash, respawns the
worker against the *same* slabs and re-seeds it from the mirror.

Lifecycle
---------
The pool is a context manager; :meth:`shutdown` (also registered via
``atexit``) terminates workers and unlinks every slab, so no
``/dev/shm`` segments leak after normal exit, KeyboardInterrupt or an
injected worker crash.  Workers are ``fork``-started: the factories the
trainer already uses are closures over the scenario, which ``fork``
inherits for free (a ``spawn`` backend would need every factory to be
picklable).  Worker entrypoints receive *explicit* seeds and configs —
never module globals — which reprolint rule RPL011 enforces.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
import traceback
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..agents.policy import GradientPack
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import record_span
from ..obs.trace import reset_after_fork as _trace_reset_after_fork
from .faults import EXPLORE_ROUND, FaultInjector, FaultPlan, InjectedCrash
from .shm import TensorSlab, slab_name

_LOG = get_logger(__name__)

__all__ = ["ProcessEmployeePool", "WorkerDied", "WorkerSpec"]

# Command opcodes (chief -> worker).
OP_SYNC = "sync"
OP_EXPLORE = "explore"
OP_MINIBATCH = "minibatch"
OP_SHUTDOWN = "shutdown"

# Reply statuses (worker -> chief).
_OK = "ok"
_CRASH = "crash"  # injected (deterministic) crash; worker stays alive
_ERROR = "error"  # genuine exception; traceback re-raised chief-side


class WorkerDied(RuntimeError):
    """The worker process died for real (pipe EOF / SIGKILL / OOM)."""


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs, passed *explicitly* (RPL011).

    A forked worker inherits the chief's entire module state — module
    RNGs, singletons, half-open resources.  Reading any of it post-fork
    is a determinism and correctness hazard, so the entrypoint receives
    this frozen spec instead: its own factories, its exact RNG state, the
    (immutable) fault plan and the slab names/layout.
    """

    index: int
    agent_factory: Callable[[int], object]
    env_factory: Callable[[int], object]
    initial_rng_state: dict
    plan: Optional[FaultPlan]
    weights_slab: str
    grads_slab: str
    shapes: Tuple[Tuple[int, ...], ...]
    num_policy_params: int


def _employee_worker_main(spec: WorkerSpec, conn) -> None:
    """Worker-process entrypoint: serve the command protocol until EOF.

    Every input is taken from ``spec`` / the pipe / the slabs; nothing is
    read from inherited module globals (see :class:`WorkerSpec`).
    """
    _trace_reset_after_fork()
    agent = spec.agent_factory(spec.index)
    env = spec.env_factory(spec.index)
    rng = np.random.default_rng(0)
    rng.bit_generator.state = spec.initial_rng_state
    injector = FaultInjector(spec.plan) if spec.plan is not None else None
    params = list(agent.policy_parameters()) + list(agent.curiosity_parameters())
    weights = TensorSlab.attach(spec.weights_slab, spec.shapes)
    grads = TensorSlab.attach(spec.grads_slab, spec.shapes)
    rollout = None
    try:
        while True:
            try:
                op, seq, payload = conn.recv()
            except (EOFError, OSError):
                break  # chief is gone; exit quietly
            if op == OP_SHUTDOWN:
                conn.send((_OK, seq, None))
                break
            try:
                if op == OP_SYNC:
                    arrays = weights.read(expected_seq=seq, copy=False)
                    for param, array in zip(params, arrays):
                        param.data[...] = array
                    state = payload.get("rng_state")
                    if state is not None:
                        rng.bit_generator.state = state
                    conn.send((_OK, seq, None))
                elif op == OP_EXPLORE:
                    episode = payload["episode"]
                    start = time.perf_counter()
                    if injector is not None:
                        injector.before_task(spec.index, episode, EXPLORE_ROUND)
                    rollout, result = agent.collect_episode(env, rng)
                    conn.send(
                        (
                            _OK,
                            seq,
                            {
                                "result": result,
                                "rng_state": rng.bit_generator.state,
                                "dur": time.perf_counter() - start,
                            },
                        )
                    )
                elif op == OP_MINIBATCH:
                    episode = payload["episode"]
                    round_index = payload["round"]
                    start = time.perf_counter()
                    if injector is not None:
                        injector.before_task(spec.index, episode, round_index)
                    if rollout is None:
                        raise RuntimeError(
                            f"worker {spec.index}: MINIBATCH before a "
                            f"successful EXPLORE"
                        )
                    batch = next(
                        iter(rollout.minibatches(payload["batch_size"], rng, epochs=1))
                    )
                    pack = agent.compute_gradients(batch)
                    grads.write(
                        list(pack.policy) + list(pack.curiosity),
                        seq=seq,
                        episode=episode,
                        round_index=round_index,
                    )
                    conn.send(
                        (
                            _OK,
                            seq,
                            {
                                "stats": pack.stats,
                                "rng_state": rng.bit_generator.state,
                                "dur": time.perf_counter() - start,
                            },
                        )
                    )
                else:
                    raise RuntimeError(f"unknown opcode {op!r}")
            except InjectedCrash:
                # Deterministic injected crash: fired in before_task, so
                # the RNG is untouched; the worker itself stays healthy.
                conn.send((_CRASH, seq, {"rng_state": rng.bit_generator.state}))
            except Exception:
                conn.send((_ERROR, seq, traceback.format_exc()))
    finally:
        weights.close()
        grads.close()
        conn.close()


class _WorkerHandle:
    """Chief-side bookkeeping for one worker process."""

    __slots__ = ("process", "conn", "weights", "grads", "seq", "in_flight")

    def __init__(self, process, conn, weights: TensorSlab, grads: TensorSlab):
        self.process = process
        self.conn = conn
        self.weights = weights
        self.grads = grads
        self.seq = 0
        #: (seq, op, episode, round_index) of the outstanding command.
        self.in_flight: Optional[Tuple[int, str, int, int]] = None

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


class ProcessEmployeePool:
    """M employee worker processes plus their shared-memory transport.

    Parameters
    ----------
    agent_factory, env_factory:
        The trainer's per-employee factories (called *inside* the worker
        after fork, so each process builds its own local model).
    num_employees:
        Pool size ``M``.
    shapes:
        Parameter shapes — policy parameters first, curiosity parameters
        after — shared by the weight and gradient slabs.
    num_policy_params:
        How many leading entries of ``shapes`` are policy parameters.
    initial_rng_states:
        Per-employee ``bit_generator.state`` dicts seeding the workers
        (the chief's authoritative mirrors).
    plan:
        Optional fault plan forwarded verbatim to every worker.
    """

    def __init__(
        self,
        agent_factory: Callable[[int], object],
        env_factory: Callable[[int], object],
        num_employees: int,
        shapes: Sequence[Tuple[int, ...]],
        num_policy_params: int,
        initial_rng_states: Sequence[dict],
        plan: Optional[FaultPlan] = None,
    ):
        if num_employees < 1:
            raise ValueError(f"need at least one employee, got {num_employees}")
        if len(initial_rng_states) != num_employees:
            raise ValueError(
                f"{len(initial_rng_states)} RNG states for "
                f"{num_employees} employees"
            )
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - platform-specific
            raise RuntimeError(
                "the process backend requires the 'fork' start method "
                "(the trainer's factories are closures over the scenario); "
                "use backend='thread' on platforms without fork"
            ) from error
        self.num_employees = num_employees
        self.shapes = tuple(tuple(int(d) for d in shape) for shape in shapes)
        self.num_policy_params = int(num_policy_params)
        self._plan = plan
        self._agent_factory = agent_factory
        self._env_factory = env_factory
        self._closed = False
        registry = get_registry()
        self._ipc_bytes = registry.counter(
            "repro_ipc_bytes_total",
            "Bytes moved through the shared-memory tensor slabs",
            labelnames=("direction",),
        )
        self._ipc_wait = registry.histogram(
            "repro_ipc_wait_seconds",
            "Chief wait time on worker pipe replies",
            labelnames=("phase",),
        )
        self._workers: List[_WorkerHandle] = []
        for index in range(num_employees):
            weights = TensorSlab.create(slab_name(index, "w"), self.shapes)
            grads = TensorSlab.create(slab_name(index, "g"), self.shapes)
            handle = self._spawn(index, weights, grads, initial_rng_states[index])
            self._workers.append(handle)
        atexit.register(self._atexit_shutdown)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(
        self, index: int, weights: TensorSlab, grads: TensorSlab, rng_state: dict
    ) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        spec = WorkerSpec(
            index=index,
            agent_factory=self._agent_factory,
            env_factory=self._env_factory,
            initial_rng_state=rng_state,
            plan=self._plan,
            weights_slab=weights.name,
            grads_slab=grads.name,
            shapes=self.shapes,
            num_policy_params=self.num_policy_params,
        )
        process = self._ctx.Process(
            target=_employee_worker_main,
            args=(spec, child_conn),
            name=f"repro-employee-{index}",
            daemon=True,
        )
        process.start()
        # Close our copy of the child end: the chief must observe EOF the
        # instant the worker dies, not hold the pipe open against itself.
        child_conn.close()
        return _WorkerHandle(process, parent_conn, weights, grads)

    def pid(self, index: int) -> int:
        """The worker's OS pid (fault tests kill it for real)."""
        return self._workers[index].process.pid

    def slab_names(self) -> List[str]:
        """Names of every live segment (leak tests scan for these)."""
        names: List[str] = []
        for handle in self._workers:
            names.extend([handle.weights.name, handle.grads.name])
        return names

    def alive(self, index: int) -> bool:
        return self._workers[index].process.is_alive()

    def revive(
        self, index: int, arrays: Sequence[np.ndarray], rng_state: dict, episode: int
    ) -> None:
        """Respawn a dead worker against the same slabs and re-seed it.

        The worker is re-seeded from the chief's RNG mirror (its last
        known-good state) and re-synced with the current global
        parameters, so a respawn is observationally identical to a
        restarted thread employee.
        """
        handle = self._workers[index]
        handle.in_flight = None
        try:
            handle.conn.close()
        except OSError:
            _LOG.warning("closing pipe of dead employee worker %d failed", index)
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5.0)
        fresh = self._spawn(index, handle.weights, handle.grads, rng_state)
        self._workers[index] = fresh
        self._sync_one(fresh, arrays, rng_state, episode)
        _LOG.warning("employee worker %d respawned (pid %d)", index, fresh.process.pid)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def _sync_one(
        self,
        handle: _WorkerHandle,
        arrays: Sequence[np.ndarray],
        rng_state: Optional[dict],
        episode: int,
    ) -> int:
        seq = handle.next_seq()
        nbytes = handle.weights.write(arrays, seq=seq, episode=episode)
        self._ipc_bytes.labels(direction="broadcast").inc(nbytes)
        handle.conn.send((OP_SYNC, seq, {"rng_state": rng_state}))
        handle.in_flight = (seq, OP_SYNC, episode, EXPLORE_ROUND)
        return seq

    def sync(
        self,
        arrays: Sequence[np.ndarray],
        rng_states: Sequence[Optional[dict]],
        episode: int,
    ) -> List[int]:
        """Broadcast weights (and RNG mirrors) to every worker; barrier.

        The slab write + SYNC goes out to all workers first, then the
        acks are collected, so the broadcast overlaps across workers.
        Returns the indices of workers that were found dead and respawned
        (the trainer records those as crashes).
        """
        respawned: List[int] = []
        for handle, state in zip(self._workers, rng_states):
            self._sync_one(handle, arrays, state, episode)
        for index, (handle, state) in enumerate(zip(self._workers, rng_states)):
            try:
                self._await_reply(index, None, phase="sync")
            except WorkerDied:
                self.revive(index, arrays, state or {}, episode)
                respawned.append(index)
        return respawned

    def submit(
        self,
        index: int,
        op: str,
        episode: int,
        round_index: int = EXPLORE_ROUND,
        batch_size: Optional[int] = None,
    ) -> None:
        """Send one EXPLORE/MINIBATCH command (non-blocking)."""
        handle = self._workers[index]
        if handle.in_flight is not None:
            raise RuntimeError(
                f"worker {index} already has command {handle.in_flight} in flight"
            )
        seq = handle.next_seq()
        if op == OP_EXPLORE:
            payload: Dict[str, object] = {"episode": episode}
        elif op == OP_MINIBATCH:
            payload = {"episode": episode, "round": round_index, "batch_size": batch_size}
        else:
            raise ValueError(f"submit cannot send opcode {op!r}")
        handle.conn.send((op, seq, payload))
        handle.in_flight = (seq, op, episode, round_index)

    def has_in_flight(self, index: int) -> bool:
        return self._workers[index].in_flight is not None

    def _await_reply(
        self, index: int, timeout: Optional[float], phase: str
    ) -> Tuple[str, object, Tuple[int, str, int, int]]:
        """Block (with optional timeout) for the outstanding reply.

        Raises ``FuturesTimeoutError`` (command left in flight) or
        :class:`WorkerDied` (in-flight command discarded).  Protocol
        errors — a genuine worker exception or a seq mismatch — raise
        ``RuntimeError``.
        """
        handle = self._workers[index]
        pending = handle.in_flight
        if pending is None:
            raise RuntimeError(f"worker {index} has no command in flight")
        wait_start = time.perf_counter()
        try:
            ready = handle.conn.poll(timeout)
            if ready:
                status, seq, payload = handle.conn.recv()
        except (EOFError, OSError, ConnectionResetError) as error:
            self._ipc_wait.labels(phase=phase).observe(time.perf_counter() - wait_start)
            handle.in_flight = None
            raise WorkerDied(
                f"employee worker {index} (pid {handle.process.pid}) died "
                f"during {phase}"
            ) from error
        self._ipc_wait.labels(phase=phase).observe(time.perf_counter() - wait_start)
        if not ready:
            # NOTE: ``FuturesTimeoutError`` aliases the builtin
            # ``TimeoutError`` (an ``OSError``) on 3.11+, so it must be
            # raised *outside* the pipe-death translation above.
            raise FuturesTimeoutError(
                f"worker {index} exceeded {timeout}s during {phase}"
            )
        if seq != pending[0]:
            handle.in_flight = None
            raise RuntimeError(
                f"worker {index} protocol violation: reply seq {seq} for "
                f"in-flight {pending}"
            )
        handle.in_flight = None
        if status == _ERROR:
            raise RuntimeError(
                f"employee worker {index} raised:\n{payload}"
            )
        return status, payload, pending

    def wait(
        self, index: int, timeout: Optional[float], phase: str
    ) -> Tuple[object, dict]:
        """Collect one EXPLORE/MINIBATCH result.

        Returns ``(outcome, rng_state)`` where ``outcome`` is the
        :class:`EpisodeResult` (explore) or assembled
        :class:`~repro.agents.policy.GradientPack` (minibatch).  Raises
        ``FuturesTimeoutError`` / :class:`InjectedCrash` /
        :class:`WorkerDied` exactly like the thread backend's futures, so
        the trainer's retry/quorum machinery applies unchanged.
        """
        status, payload, (seq, op, episode, round_index) = self._await_reply(
            index, timeout, phase
        )
        if status == _CRASH:
            # Mirrors the thread backend: before_task fired, RNG untouched.
            raise InjectedCrash(
                f"injected crash: employee {index}, episode {episode}, "
                f"round {round_index}"
            )
        rng_state = payload["rng_state"]
        record_span(
            f"employee.{phase}",
            payload["dur"],
            employee=index,
            episode=episode,
            round=round_index,
        )
        if op == OP_MINIBATCH:
            handle = self._workers[index]
            arrays = handle.grads.read(expected_seq=seq, copy=True)
            self._ipc_bytes.labels(direction="gather").inc(handle.grads.nbytes)
            pack = GradientPack(
                policy=arrays[: self.num_policy_params],
                curiosity=arrays[self.num_policy_params :],
                stats=payload["stats"],
            )
            return pack, rng_state
        return payload["result"], rng_state

    def drain(self, indices: Iterable[int]) -> List[Tuple[int, dict]]:
        """Absorb abandoned in-flight commands at a phase boundary.

        A worker whose retries were exhausted may still be computing; the
        chief must consume that (discarded) reply before the next slab
        write or command, and must fold the worker's post-task RNG state
        into the mirror — matching the thread backend, where an abandoned
        straggler also consumes its employee's RNG before the phase ends.
        Returns ``(index, rng_state)`` pairs for the trainer to apply.
        """
        drained: List[Tuple[int, dict]] = []
        for index in sorted(set(indices)):
            handle = self._workers[index]
            if handle.in_flight is None:
                continue
            try:
                status, payload, __ = self._await_reply(index, None, phase="drain")
            except WorkerDied:
                continue  # revived lazily by the next sync
            if status == _OK and isinstance(payload, dict) and "rng_state" in payload:
                drained.append((index, payload["rng_state"]))
            elif status == _CRASH and isinstance(payload, dict):
                drained.append((index, payload["rng_state"]))
        return drained

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker and unlink every slab (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self._atexit_shutdown)
        for index, handle in enumerate(self._workers):
            if handle.process.is_alive() and handle.in_flight is None:
                try:
                    handle.conn.send((OP_SHUTDOWN, handle.next_seq(), None))
                except (BrokenPipeError, OSError):
                    _LOG.warning("worker %d pipe already closed at shutdown", index)
        for handle in self._workers:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=timeout)
            try:
                handle.conn.close()
            except OSError:
                continue
        for handle in self._workers:
            handle.weights.unlink()
            handle.grads.unlink()

    def _atexit_shutdown(self) -> None:
        """Last-resort cleanup on interpreter exit (incl. KeyboardInterrupt)."""
        try:
            self.shutdown(timeout=1.0)
        except Exception:
            _LOG.warning("process pool atexit shutdown failed", exc_info=True)

    def __enter__(self) -> "ProcessEmployeePool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
