"""Process-backed employee pool: true multi-core chief–employee training.

Why processes
-------------
The paper's synchronous chief–employee architecture (Section V-A, Fig. 1)
exists to parallelize employee exploration and gradient computation, and
DPPO-style distributed PPO gets its wall-clock wins from workers
computing gradients concurrently.  Our autograd substrate is numpy-on-
Python: the per-op Python dispatch holds the GIL, so the
``ThreadPoolExecutor`` backend overlaps only the slices of time numpy
spends inside C kernels — on small CEWS networks that is a minority of
the step, and the "distributed" trainer runs at roughly serial speed.
This module gives each :class:`~repro.distributed.trainer._Employee` its
own **worker process**, so M employees genuinely occupy M cores.

Protocol
--------
Each worker is driven by a four-command protocol::

    SYNC      chief -> worker   read the seq-stamped weight broadcast,
                                optionally re-seed the worker RNG; ack'd
    EXPLORE   chief -> worker   roll one episode into the local buffer;
                                reply carries the EpisodeResult + RNG state
    MINIBATCH chief -> worker   sample one minibatch, compute gradients,
                                ship them back; reply carries PPOStats +
                                RNG state
    SAMPLE    chief -> worker   sample one minibatch exactly as MINIBATCH
                                would (same RNG consumption) but ship the
                                *batch* back instead of computing; the
                                chief shards it (sharded update mode)
    SHARD     chief -> worker   compute gradients for a chief-supplied
                                minibatch shard (``normalize_advantages``
                                already applied full-batch chief-side);
                                consumes no worker RNG and skips fault
                                injection — any worker can compute any
                                shard (see :mod:`repro.agents.sharding`)
    SHUTDOWN  chief -> worker   ack and exit

Commands are strictly serial per worker (at most one outstanding), each
stamped with a monotonically increasing ``seq`` echoed by the reply and
verified against the tensor payload stamps — a stale or torn payload
raises instead of being consumed.

The *medium* those commands travel over is pluggable: the pool drives a
:class:`~repro.distributed.transport.Transport`, one
:class:`~repro.distributed.transport.ChiefChannel` per worker.  The
default :class:`~repro.distributed.transport.LocalTransport` is the
PR 5 data path unchanged — commands over a duplex pipe, tensors through
preallocated per-worker :class:`~repro.distributed.shm.TensorSlab`
pairs.  The :class:`~repro.distributed.transport.SocketTransport` speaks
the same protocol over framed TCP (heartbeats, reconnect, retransmit)
and can cross host boundaries; ``remote_indices`` marks employees whose
worker process is started *externally* (``python -m repro worker``)
instead of forked here.

Determinism contract
--------------------
The chief keeps the **authoritative RNG mirror** for every employee:
each successful (or drained) task reply returns the worker's post-task
``bit_generator.state`` and the chief stores it; every SYNC ships the
mirror state back.  Fault-free runs are therefore bitwise-identical to
the serial and thread backends (same seed derivation, same consumption
order) — for *any* transport whose wire dtype is float64: commands are
serial, replies are collected in index order, and duplicate delivery is
suppressed worker-side so a command consumes worker RNG at most once.
Checkpoints capture exact employee RNG states, and a respawned worker
resumes from the last known-good state.

Fault tolerance
---------------
The :class:`~repro.distributed.faults.FaultPlan` is forwarded to each
worker, which drives its own :class:`FaultInjector` for stragglers and
crashes (``before_task``); injected crashes come back as ``"crash"``
replies and map onto the trainer's existing ``_note_crash`` path.
Corruption and checkpoint faults stay chief-side (unchanged code paths).
Real worker death — pipe EOF, socket reset, heartbeat silence — surfaces
as :class:`~repro.distributed.transport.ChannelClosed` from the channel
and is translated to :class:`WorkerDied` here; the chief records a
crash, invalidates everything the dead worker could still touch
(fresh slabs / bumped generation via ``reset_for_revive``), respawns the
worker and re-seeds it from the mirror.

Lifecycle
---------
The pool is a context manager; :meth:`shutdown` (also registered via
``atexit``) terminates workers and closes the transport, so no
``/dev/shm`` segments leak after normal exit, KeyboardInterrupt or an
injected worker crash.  Workers are ``fork``-started: the factories the
trainer already uses are closures over the scenario, which ``fork``
inherits for free (a ``spawn`` backend would need every factory to be
picklable).  Worker entrypoints receive *explicit* seeds and configs —
never module globals — which reprolint rule RPL011 enforces.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing
import os
import platform
import time
import traceback
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..agents.policy import GradientPack
from ..obs.federation import WorkerTelemetry, fold_into
from ..obs.flight import reset_after_fork as _flight_reset_after_fork
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import (
    Tracer,
    current_context,
    fold_worker_records,
    get_tracer,
    record_span,
    wall_clock,
)
from ..analysis.lockwatch import reset_after_fork as _lockwatch_reset_after_fork
from ..obs.trace import reset_after_fork as _trace_reset_after_fork
from .faults import EXPLORE_ROUND, FaultInjector, FaultPlan, InjectedCrash
from .transport import (
    ChannelClosed,
    ChiefChannel,
    EndpointSpec,
    LocalTransport,
    NetworkFaultInjector,
    SocketTransport,
    Transport,
    WorkerEndpoint,
    build_worker_endpoint,
)

_LOG = get_logger(__name__)

__all__ = ["ProcessEmployeePool", "WorkerDied", "WorkerSpec", "serve_employee"]

# Command opcodes (chief -> worker).
OP_SYNC = "sync"
OP_EXPLORE = "explore"
OP_MINIBATCH = "minibatch"
OP_SAMPLE = "sample"
OP_SHARD = "shard"
OP_SHUTDOWN = "shutdown"

# Reply statuses (worker -> chief).
_OK = "ok"
_CRASH = "crash"  # injected (deterministic) crash; worker stays alive
_ERROR = "error"  # genuine exception; traceback re-raised chief-side


class WorkerDied(RuntimeError):
    """The worker process died for real (EOF / SIGKILL / heartbeat loss)."""


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs, passed *explicitly* (RPL011).

    A forked worker inherits the chief's entire module state — module
    RNGs, singletons, half-open resources.  Reading any of it post-fork
    is a determinism and correctness hazard, so the entrypoint receives
    this frozen spec instead: its own factories, its exact RNG state, the
    (immutable) fault plan and the transport endpoint recipe.
    """

    index: int
    agent_factory: Callable[[int], object]
    env_factory: Callable[[int], object]
    initial_rng_state: dict
    plan: Optional[FaultPlan]
    endpoint: EndpointSpec
    shapes: Tuple[Tuple[int, ...], ...]
    num_policy_params: int
    #: Ship metric deltas back piggy-backed on replies (PR 8 federation).
    federate: bool = False


def _ensure_worker_tracer(
    tracer: Optional[Tracer], ctx: object
) -> Optional[Tracer]:
    """Lazily build the worker-side tracer on the first traced command.

    ``ctx`` is the chief's propagated ``{"trace_id", "parent"}`` context
    (absent while chief-side tracing is off, and ignored by old peers).
    The tracer is memory-only — spans ship back piggy-backed on replies
    via :meth:`Tracer.drain_ring`, never through a worker-side file — and
    adopts the chief's ``trace_id`` so the fleet shares one trace.
    """
    if tracer is not None or not isinstance(ctx, dict):
        return tracer
    trace_id = ctx.get("trace_id")
    fresh = Tracer(path=None, trace_id=str(trace_id) if trace_id else None)
    if get_tracer() is None:
        # Install so nested module-level span()/event() calls inside the
        # agent/env land in this ring too (forked workers cleared the
        # inherited chief tracer in reset_after_fork).
        fresh.install()
    return fresh


def _task_span(
    tracer: Optional[Tracer], name: str, index: int, episode: int, round_index: int
):
    if tracer is None:
        return contextlib.nullcontext()
    return tracer.span(name, employee=index, episode=episode, round=round_index)


def _attach_telemetry(
    reply: Dict[str, object],
    tracer: Optional[Tracer],
    telemetry: Optional[WorkerTelemetry],
    host: str,
    pid: int,
) -> Dict[str, object]:
    """Piggy-back clock/identity, drained spans and metric deltas on a reply."""
    reply["clock"] = wall_clock()
    reply["host"] = host
    reply["pid"] = pid
    if tracer is not None:
        spans = tracer.drain_ring()
        if spans:
            reply["spans"] = spans
    if telemetry is not None:
        delta = telemetry.collect()
        if delta is not None:
            reply["metrics"] = delta
    return reply


def serve_employee(spec: WorkerSpec, endpoint: WorkerEndpoint) -> None:
    """Serve the command protocol over ``endpoint`` until EOF/SHUTDOWN.

    Shared by the forked entrypoint and ``python -m repro worker``
    (external socket workers).  Every input comes from ``spec`` or the
    endpoint; nothing is read from module globals.
    """
    agent = spec.agent_factory(spec.index)
    env = spec.env_factory(spec.index)
    rng = np.random.default_rng(0)
    rng.bit_generator.state = spec.initial_rng_state
    injector = FaultInjector(spec.plan) if spec.plan is not None else None
    params = list(agent.policy_parameters()) + list(agent.curiosity_parameters())
    rollout = None
    host = platform.node()
    pid = os.getpid()
    telemetry = WorkerTelemetry() if spec.federate else None
    tracer: Optional[Tracer] = None
    try:
        while True:
            command = endpoint.recv_command()
            if command is None:
                break  # chief is gone; exit quietly
            op, seq, payload = command
            if op == OP_SHUTDOWN:
                endpoint.send_reply(_OK, seq, None)
                break
            try:
                if op == OP_SYNC:
                    arrays = endpoint.read_weights(seq)
                    for param, array in zip(params, arrays):
                        param.data[...] = array
                    state = payload.get("rng_state")
                    if state is not None:
                        rng.bit_generator.state = state
                    endpoint.send_reply(_OK, seq, None)
                elif op == OP_EXPLORE:
                    episode = payload["episode"]
                    tracer = _ensure_worker_tracer(tracer, payload.get("ctx"))
                    start = time.perf_counter()
                    if injector is not None:
                        injector.before_task(spec.index, episode, EXPLORE_ROUND)
                    with _task_span(
                        tracer, "employee.explore", spec.index, episode, EXPLORE_ROUND
                    ):
                        rollout, result = agent.collect_episode(env, rng)
                    dur = time.perf_counter() - start
                    if telemetry is not None:
                        telemetry.note_command(op)
                        telemetry.observe_phase("explore", dur)
                        telemetry.note_episode(result)
                    endpoint.send_reply(
                        _OK,
                        seq,
                        _attach_telemetry(
                            {
                                "result": result,
                                "rng_state": rng.bit_generator.state,
                                "dur": dur,
                            },
                            tracer,
                            telemetry,
                            host,
                            pid,
                        ),
                    )
                elif op == OP_MINIBATCH:
                    episode = payload["episode"]
                    round_index = payload["round"]
                    tracer = _ensure_worker_tracer(tracer, payload.get("ctx"))
                    start = time.perf_counter()
                    if injector is not None:
                        injector.before_task(spec.index, episode, round_index)
                    if rollout is None:
                        raise RuntimeError(
                            f"worker {spec.index}: MINIBATCH before a "
                            f"successful EXPLORE"
                        )
                    with _task_span(
                        tracer, "employee.gradients", spec.index, episode, round_index
                    ):
                        batch = next(
                            iter(
                                rollout.minibatches(
                                    payload["batch_size"], rng, epochs=1
                                )
                            )
                        )
                        pack = agent.compute_gradients(batch)
                    endpoint.send_gradients(
                        list(pack.policy) + list(pack.curiosity),
                        seq=seq,
                        episode=episode,
                        round_index=round_index,
                    )
                    dur = time.perf_counter() - start
                    if telemetry is not None:
                        telemetry.note_command(op)
                        telemetry.observe_phase("gradients", dur)
                        telemetry.note_stats(pack.stats)
                    endpoint.send_reply(
                        _OK,
                        seq,
                        _attach_telemetry(
                            {
                                "stats": pack.stats,
                                "rng_state": rng.bit_generator.state,
                                "dur": dur,
                            },
                            tracer,
                            telemetry,
                            host,
                            pid,
                        ),
                    )
                elif op == OP_SAMPLE:
                    episode = payload["episode"]
                    round_index = payload["round"]
                    tracer = _ensure_worker_tracer(tracer, payload.get("ctx"))
                    start = time.perf_counter()
                    if injector is not None:
                        injector.before_task(spec.index, episode, round_index)
                    if rollout is None:
                        raise RuntimeError(
                            f"worker {spec.index}: SAMPLE before a "
                            f"successful EXPLORE"
                        )
                    with _task_span(
                        tracer, "employee.sample", spec.index, episode, round_index
                    ):
                        # Byte-for-byte the MINIBATCH sampling step: the
                        # same generator draw, so the RNG mirror advances
                        # identically whether the round is sharded or not.
                        batch = next(
                            iter(
                                rollout.minibatches(
                                    payload["batch_size"], rng, epochs=1
                                )
                            )
                        )
                    dur = time.perf_counter() - start
                    if telemetry is not None:
                        telemetry.note_command(op)
                        telemetry.observe_phase("gradients", dur)
                    endpoint.send_reply(
                        _OK,
                        seq,
                        _attach_telemetry(
                            {
                                "batch": batch,
                                "rng_state": rng.bit_generator.state,
                                "dur": dur,
                            },
                            tracer,
                            telemetry,
                            host,
                            pid,
                        ),
                    )
                elif op == OP_SHARD:
                    episode = payload["episode"]
                    round_index = payload["round"]
                    tracer = _ensure_worker_tracer(tracer, payload.get("ctx"))
                    start = time.perf_counter()
                    # No injector.before_task here: shard compute consumes
                    # no RNG and may be re-dispatched to any worker, so
                    # the deterministic fault surface stays at the SAMPLE
                    # step (symmetric with the in-process backends, where
                    # the injector fires once per employee per round).
                    with _task_span(
                        tracer, "employee.shard", spec.index, episode, round_index
                    ):
                        pack = agent.compute_gradients(
                            payload["shard"], normalize_advantages=False
                        )
                    endpoint.send_gradients(
                        list(pack.policy) + list(pack.curiosity),
                        seq=seq,
                        episode=episode,
                        round_index=round_index,
                    )
                    dur = time.perf_counter() - start
                    if telemetry is not None:
                        telemetry.note_command(op)
                        telemetry.observe_phase("gradients", dur)
                        telemetry.note_stats(pack.stats)
                    endpoint.send_reply(
                        _OK,
                        seq,
                        _attach_telemetry(
                            {
                                "stats": pack.stats,
                                "rng_state": rng.bit_generator.state,
                                "dur": dur,
                            },
                            tracer,
                            telemetry,
                            host,
                            pid,
                        ),
                    )
                else:
                    raise RuntimeError(f"unknown opcode {op!r}")
            except InjectedCrash:
                # Deterministic injected crash: fired in before_task, so
                # the RNG is untouched; the worker itself stays healthy.
                endpoint.send_reply(
                    _CRASH,
                    seq,
                    {"rng_state": rng.bit_generator.state, "clock": wall_clock()},
                )
            except Exception:
                endpoint.send_reply(_ERROR, seq, traceback.format_exc())
    finally:
        if tracer is not None and tracer.installed:
            tracer.uninstall()
        endpoint.close()


def _employee_worker_main(spec: WorkerSpec, conn) -> None:
    """Forked worker-process entrypoint (see :class:`WorkerSpec`)."""
    _trace_reset_after_fork()
    _lockwatch_reset_after_fork()
    _flight_reset_after_fork()
    endpoint = build_worker_endpoint(spec.endpoint, conn)
    serve_employee(spec, endpoint)


class _WorkerHandle:
    """Chief-side bookkeeping for one worker process."""

    __slots__ = ("process", "channel", "seq", "in_flight", "ctx_parent")

    def __init__(self, process, channel: ChiefChannel):
        self.process = process
        self.channel = channel
        self.seq = 0
        #: (seq, op, episode, round_index) of the outstanding command.
        self.in_flight: Optional[Tuple[int, str, int, int]] = None
        #: Chief span id the outstanding command was issued under (the
        #: fold target for worker-propagated spans).
        self.ctx_parent: Optional[int] = None

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


class ProcessEmployeePool:
    """M employee worker processes plus their transport.

    Parameters
    ----------
    agent_factory, env_factory:
        The trainer's per-employee factories (called *inside* the worker
        after fork, so each process builds its own local model).
    num_employees:
        Pool size ``M``.
    shapes:
        Parameter shapes — policy parameters first, curiosity parameters
        after — shared by the weight and gradient payloads.
    num_policy_params:
        How many leading entries of ``shapes`` are policy parameters.
    initial_rng_states:
        Per-employee ``bit_generator.state`` dicts seeding the workers
        (the chief's authoritative mirrors).
    plan:
        Optional fault plan forwarded verbatim to every worker.
    transport:
        ``"local"`` (pipes + shared memory, the default) or ``"socket"``
        (framed TCP with heartbeats/reconnect).
    transport_options:
        Keyword arguments for the :class:`SocketTransport` constructor
        (listen address, wire dtype, heartbeat cadence, chaos injector).
    remote_indices:
        Employee indices whose worker is started externally
        (``python -m repro worker``) rather than forked — socket
        transport only.
    federate:
        Run a :class:`~repro.obs.federation.WorkerTelemetry` inside each
        worker and fold the shipped metric deltas into the chief's
        registry under ``worker``/``host`` labels.
    """

    def __init__(
        self,
        agent_factory: Callable[[int], object],
        env_factory: Callable[[int], object],
        num_employees: int,
        shapes: Sequence[Tuple[int, ...]],
        num_policy_params: int,
        initial_rng_states: Sequence[dict],
        plan: Optional[FaultPlan] = None,
        transport: str = "local",
        transport_options: Optional[Dict[str, object]] = None,
        remote_indices: Sequence[int] = (),
        federate: bool = False,
    ):
        if num_employees < 1:
            raise ValueError(f"need at least one employee, got {num_employees}")
        if len(initial_rng_states) != num_employees:
            raise ValueError(
                f"{len(initial_rng_states)} RNG states for "
                f"{num_employees} employees"
            )
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - platform-specific
            raise RuntimeError(
                "the process backend requires the 'fork' start method "
                "(the trainer's factories are closures over the scenario); "
                "use backend='thread' on platforms without fork"
            ) from error
        self.num_employees = num_employees
        self.shapes = tuple(tuple(int(d) for d in shape) for shape in shapes)
        self.num_policy_params = int(num_policy_params)
        self._plan = plan
        self._agent_factory = agent_factory
        self._env_factory = env_factory
        self._federate = bool(federate)
        #: Last explore latency per employee (feeds the straggler gauge).
        self.explore_durations: Dict[int, float] = {}
        self._closed = False
        self._remote = frozenset(int(i) for i in remote_indices)
        if self._remote and transport != "socket":
            raise ValueError("remote_indices requires transport='socket'")
        if any(i < 0 or i >= num_employees for i in self._remote):
            raise ValueError(
                f"remote_indices {sorted(self._remote)} out of range for "
                f"{num_employees} employees"
            )
        if transport == "local":
            self._transport: Transport = LocalTransport(self.shapes, ctx=self._ctx)
        elif transport == "socket":
            self._transport = SocketTransport(
                self.shapes, **(transport_options or {})
            )
        else:
            raise ValueError(
                f"transport must be 'local' or 'socket', got {transport!r}"
            )
        registry = get_registry()
        self._ipc_bytes = registry.counter(
            "repro_ipc_bytes_total",
            "Tensor payload bytes moved between chief and workers",
            labelnames=("direction",),
        )
        self._ipc_wait = registry.histogram(
            "repro_ipc_wait_seconds",
            "Chief wait time on worker replies",
            labelnames=("phase",),
        )
        self._workers: List[_WorkerHandle] = []
        for index in range(num_employees):
            channel = self._transport.create_channel(index)
            handle = self._spawn(index, channel, initial_rng_states[index])
            self._workers.append(handle)
        atexit.register(self._atexit_shutdown)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(
        self, index: int, channel: ChiefChannel, rng_state: dict
    ) -> _WorkerHandle:
        spawn_handle = channel.arm()
        spec = WorkerSpec(
            index=index,
            agent_factory=self._agent_factory,
            env_factory=self._env_factory,
            initial_rng_state=rng_state,
            plan=self._plan,
            endpoint=channel.endpoint_spec(),
            shapes=self.shapes,
            num_policy_params=self.num_policy_params,
            federate=self._federate,
        )
        if isinstance(self._transport, SocketTransport):
            # External workers (and reconnect debugging) bootstrap from
            # the WELCOME payload instead of a forked spec.
            self._transport.set_welcome_extra(
                index,
                {
                    "shapes": self.shapes,
                    "num_policy_params": self.num_policy_params,
                    "rng_state": rng_state,
                    "plan": self._plan,
                    "federate": self._federate,
                },
            )
        if index in self._remote:
            _LOG.warning(
                "employee %d is remote: waiting for `repro worker --connect "
                "%s:%d --index %d` to dial in",
                index,
                *self._transport.address,
                index,
            )
            return _WorkerHandle(None, channel)
        process = self._ctx.Process(
            target=_employee_worker_main,
            args=(spec, spawn_handle),
            name=f"repro-employee-{index}",
            daemon=True,
        )
        process.start()
        channel.post_spawn(spawn_handle)
        return _WorkerHandle(process, channel)

    def pid(self, index: int) -> int:
        """The worker's OS pid (fault tests kill it for real); -1 if remote."""
        process = self._workers[index].process
        return process.pid if process is not None else -1

    def slab_names(self) -> List[str]:
        """Names of every live segment (leak tests scan for these)."""
        names: List[str] = []
        for handle in self._workers:
            names.extend(handle.channel.slab_names())
        return names

    @property
    def transport(self) -> Transport:
        return self._transport

    def alive(self, index: int) -> bool:
        process = self._workers[index].process
        if process is not None:
            return process.is_alive()
        connected = getattr(self._workers[index].channel, "connected", None)
        return bool(connected()) if connected is not None else False

    def revive(
        self, index: int, arrays: Sequence[np.ndarray], rng_state: dict, episode: int
    ) -> None:
        """Respawn a dead worker and re-seed it from the chief's mirrors.

        ``reset_for_revive`` first invalidates everything the old worker
        could still touch: the local transport allocates fresh slabs and
        eagerly unlinks the stale pair (a wedged predecessor must never
        scribble into its replacement's shared memory, and ``/dev/shm``
        stays flat across revive cycles), the socket transport bumps the
        generation so a stale reconnect is refused.  The fresh worker is
        then re-synced with the current global parameters and the last
        known-good RNG state, so a respawn is observationally identical
        to a restarted thread employee.
        """
        handle = self._workers[index]
        handle.in_flight = None
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5.0)
        handle.channel.reset_for_revive()
        fresh = self._spawn(index, handle.channel, rng_state)
        self._workers[index] = fresh
        if index in self._remote:
            return  # nothing to sync until the operator restarts the worker
        try:
            self._sync_one(fresh, arrays, rng_state, episode)
            self._await_reply(index, None, phase="revive")
        except WorkerDied:
            # Even the fresh worker is unreachable (e.g. the partition is
            # still open).  Leave it; the next sync() retries the revive.
            _LOG.warning("employee %d unreachable after respawn", index)
        _LOG.warning("employee worker %d respawned (pid %d)", index, self.pid(index))

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def _sync_one(
        self,
        handle: _WorkerHandle,
        arrays: Sequence[np.ndarray],
        rng_state: Optional[dict],
        episode: int,
    ) -> int:
        seq = handle.next_seq()
        handle.in_flight = (seq, OP_SYNC, episode, EXPLORE_ROUND)
        try:
            nbytes = handle.channel.send_weights(arrays, seq=seq, episode=episode)
            self._ipc_bytes.labels(direction="broadcast").inc(nbytes)
            handle.channel.send_command(
                OP_SYNC,
                seq,
                {"rng_state": rng_state},
                episode=episode,
                round_index=EXPLORE_ROUND,
            )
        except ChannelClosed:
            # Dead at send time: the ack collection will raise WorkerDied
            # and the caller revives — same path as dead-at-reply.
            _LOG.warning(
                "employee %d unreachable while sending SYNC", handle.channel.index
            )
        return seq

    def sync(
        self,
        arrays: Sequence[np.ndarray],
        rng_states: Sequence[Optional[dict]],
        episode: int,
    ) -> List[int]:
        """Broadcast weights (and RNG mirrors) to every worker; barrier.

        The payload write + SYNC goes out to all workers first, then the
        acks are collected, so the broadcast overlaps across workers.
        Returns the indices of workers that were found dead and respawned
        (the trainer records those as crashes).
        """
        respawned: List[int] = []
        for handle, state in zip(self._workers, rng_states):
            self._sync_one(handle, arrays, state, episode)
        for index, (handle, state) in enumerate(zip(self._workers, rng_states)):
            try:
                self._await_reply(index, None, phase="sync")
            except WorkerDied:
                self.revive(index, arrays, state or {}, episode)
                respawned.append(index)
        return respawned

    def submit(
        self,
        index: int,
        op: str,
        episode: int,
        round_index: int = EXPLORE_ROUND,
        batch_size: Optional[int] = None,
        shard=None,
    ) -> None:
        """Send one EXPLORE/MINIBATCH/SAMPLE/SHARD command (non-blocking)."""
        handle = self._workers[index]
        if handle.in_flight is not None:
            raise RuntimeError(
                f"worker {index} already has command {handle.in_flight} in flight"
            )
        seq = handle.next_seq()
        if op == OP_EXPLORE:
            payload: Dict[str, object] = {"episode": episode}
        elif op in (OP_MINIBATCH, OP_SAMPLE):
            payload = {"episode": episode, "round": round_index, "batch_size": batch_size}
        elif op == OP_SHARD:
            payload = {"episode": episode, "round": round_index, "shard": shard}
        else:
            raise ValueError(f"submit cannot send opcode {op!r}")
        ctx = current_context()
        handle.ctx_parent = ctx.get("parent") if ctx is not None else None
        if ctx is not None:
            # Optional trace context: old workers never look at this key.
            payload["ctx"] = ctx
        handle.in_flight = (seq, op, episode, round_index)
        try:
            handle.channel.send_command(
                op, seq, payload, episode=episode, round_index=round_index
            )
        except ChannelClosed:
            # Dead at send time: wait() will raise WorkerDied for this
            # command and the trainer's revive path takes over.
            _LOG.warning("employee %d unreachable while sending %s", index, op)

    def has_in_flight(self, index: int) -> bool:
        return self._workers[index].in_flight is not None

    def _await_reply(
        self, index: int, timeout: Optional[float], phase: str
    ) -> Tuple[str, object, Tuple[int, str, int, int]]:
        """Block (with optional timeout) for the outstanding reply.

        Raises ``FuturesTimeoutError`` (command left in flight) or
        :class:`WorkerDied` (in-flight command discarded).  Protocol
        errors — a genuine worker exception or a seq mismatch — raise
        ``RuntimeError``.
        """
        handle = self._workers[index]
        pending = handle.in_flight
        if pending is None:
            raise RuntimeError(f"worker {index} has no command in flight")
        wait_start = time.perf_counter()
        try:
            reply = handle.channel.recv_reply(timeout)
        except ChannelClosed as error:
            self._ipc_wait.labels(phase=phase).observe(time.perf_counter() - wait_start)
            handle.in_flight = None
            raise WorkerDied(
                f"employee worker {index} died during {phase}: {error}"
            ) from error
        self._ipc_wait.labels(phase=phase).observe(time.perf_counter() - wait_start)
        if reply is None:
            # NOTE: ``FuturesTimeoutError`` aliases the builtin
            # ``TimeoutError`` (an ``OSError``) on 3.11+, so it must be
            # raised *outside* the channel-death translation above.
            raise FuturesTimeoutError(
                f"worker {index} exceeded {timeout}s during {phase}"
            )
        status, seq, payload = reply
        if isinstance(payload, dict):
            peer_clock = payload.get("clock")
            if peer_clock is not None:
                # Refresh the chief-minus-worker skew estimate per pump;
                # applied when worker spans are folded, never to raw data.
                handle.channel.clock_offset = wall_clock() - float(peer_clock)
        if seq != pending[0]:
            handle.in_flight = None
            raise RuntimeError(
                f"worker {index} protocol violation: reply seq {seq} for "
                f"in-flight {pending}"
            )
        handle.in_flight = None
        if status == _ERROR:
            raise RuntimeError(
                f"employee worker {index} raised:\n{payload}"
            )
        return status, payload, pending

    def _fold_reply_telemetry(
        self, index: int, handle: _WorkerHandle, payload: Dict[str, object]
    ) -> bool:
        """Fold piggy-backed spans/metric deltas from one reply.

        Returns True when worker-propagated spans were merged (the caller
        then skips its synthetic re-emission).
        """
        folded_spans = False
        spans = payload.get("spans")
        if spans:
            folded_spans = (
                fold_worker_records(
                    spans,
                    parent=handle.ctx_parent,
                    offset=handle.channel.clock_offset,
                    worker=index,
                    host=payload.get("host") or None,
                    pid=payload.get("pid"),
                )
                > 0
            )
        delta = payload.get("metrics")
        if delta:
            fold_into(
                get_registry(),
                delta,
                worker=index,
                host=payload.get("host", ""),
            )
        return folded_spans

    def wait(
        self, index: int, timeout: Optional[float], phase: str
    ) -> Tuple[object, dict]:
        """Collect one EXPLORE/MINIBATCH/SAMPLE/SHARD result.

        Returns ``(outcome, rng_state)`` where ``outcome`` is the
        :class:`EpisodeResult` (explore), assembled
        :class:`~repro.agents.policy.GradientPack` (minibatch / shard) or
        sampled :class:`~repro.agents.rollout.MiniBatch` (sample).  Raises
        ``FuturesTimeoutError`` / :class:`InjectedCrash` /
        :class:`WorkerDied` exactly like the thread backend's futures, so
        the trainer's retry/quorum machinery applies unchanged.
        """
        status, payload, (seq, op, episode, round_index) = self._await_reply(
            index, timeout, phase
        )
        if status == _CRASH:
            # Mirrors the thread backend: before_task fired, RNG untouched.
            raise InjectedCrash(
                f"injected crash: employee {index}, episode {episode}, "
                f"round {round_index}"
            )
        rng_state = payload["rng_state"]
        handle = self._workers[index]
        if not self._fold_reply_telemetry(index, handle, payload):
            # No worker-propagated spans (tracing-only run, old worker):
            # re-emit the shipped duration chief-side, marked synthetic so
            # a later merge with genuine worker spans never double-counts.
            record_span(
                f"employee.{phase}",
                payload["dur"],
                employee=index,
                episode=episode,
                round=round_index,
                synthetic=True,
            )
        if op == OP_EXPLORE:
            self.explore_durations[index] = float(payload["dur"])
        if op == OP_SAMPLE:
            return payload["batch"], rng_state
        if op in (OP_MINIBATCH, OP_SHARD):
            try:
                arrays, nbytes = handle.channel.read_gradients(seq)
            except ChannelClosed as error:
                raise WorkerDied(
                    f"employee worker {index} lost its gradient payload "
                    f"during {phase}: {error}"
                ) from error
            self._ipc_bytes.labels(direction="gather").inc(nbytes)
            pack = GradientPack(
                policy=arrays[: self.num_policy_params],
                curiosity=arrays[self.num_policy_params :],
                stats=payload["stats"],
            )
            return pack, rng_state
        return payload["result"], rng_state

    def drain(self, indices: Iterable[int]) -> List[Tuple[int, dict]]:
        """Absorb abandoned in-flight commands at a phase boundary.

        A worker whose retries were exhausted may still be computing; the
        chief must consume that (discarded) reply before the next payload
        write or command, and must fold the worker's post-task RNG state
        into the mirror — matching the thread backend, where an abandoned
        straggler also consumes its employee's RNG before the phase ends.
        Returns ``(index, rng_state)`` pairs for the trainer to apply.
        """
        drained: List[Tuple[int, dict]] = []
        for index in sorted(set(indices)):
            handle = self._workers[index]
            if handle.in_flight is None:
                continue
            try:
                status, payload, __ = self._await_reply(index, None, phase="drain")
            except WorkerDied:
                continue  # revived lazily by the next sync
            if isinstance(payload, dict):
                # Abandoned work still reports: its spans and metric
                # deltas are folded so the fleet view never loses them.
                self._fold_reply_telemetry(index, handle, payload)
            if status == _OK and isinstance(payload, dict) and "rng_state" in payload:
                drained.append((index, payload["rng_state"]))
            elif status == _CRASH and isinstance(payload, dict):
                drained.append((index, payload["rng_state"]))
        return drained

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker and release the transport (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self._atexit_shutdown)
        for index, handle in enumerate(self._workers):
            if self.alive(index) and handle.in_flight is None:
                try:
                    handle.channel.send_command(
                        OP_SHUTDOWN, handle.next_seq(), None
                    )
                except ChannelClosed:
                    _LOG.warning("worker %d already unreachable at shutdown", index)
        for handle in self._workers:
            if handle.process is None:
                continue
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=timeout)
        for handle in self._workers:
            handle.channel.close()
        self._transport.close()

    def _atexit_shutdown(self) -> None:
        """Last-resort cleanup on interpreter exit (incl. KeyboardInterrupt)."""
        try:
            self.shutdown(timeout=1.0)
        except Exception:
            _LOG.warning("process pool atexit shutdown failed", exc_info=True)

    def __enter__(self) -> "ProcessEmployeePool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
