"""External employee workers: ``python -m repro worker`` entry logic.

A remote worker is an employee process the chief did *not* fork: it is
started by an operator (possibly on another host), dials the chief's
:class:`~repro.distributed.transport.SocketTransport` listener, and then
serves exactly the same SYNC/EXPLORE/MINIBATCH/SHUTDOWN loop as a forked
worker (:func:`~repro.distributed.procpool.serve_employee`).

Bootstrap happens over the wire instead of over ``fork``: the WELCOME
payload carries everything a forked worker would have received inside
its :class:`~repro.distributed.procpool.WorkerSpec` — parameter shapes,
the policy/curiosity split, the worker's seeded RNG state (the chief's
authoritative mirror) and the fault plan.  The agent and environment are
rebuilt locally from the same deterministic factories, so a remote
worker is observationally identical to a forked one.
"""

from __future__ import annotations

from typing import Callable, Tuple

from .procpool import WorkerSpec, serve_employee
from .transport import ANY_GENERATION, EndpointSpec, SocketWorkerEndpoint

__all__ = ["run_remote_worker"]


def run_remote_worker(
    index: int,
    address: Tuple[str, int],
    token: str,
    agent_factory: Callable[[int], object],
    env_factory: Callable[[int], object],
    connect_timeout: float = 30.0,
) -> None:
    """Dial the chief and serve the employee protocol until SHUTDOWN.

    Raises :class:`~repro.distributed.transport.ChannelClosed` when the
    chief is unreachable or refuses the connection (bad token, unknown
    index); returns normally when the chief shuts the pool down or goes
    away for good.
    """
    spec = EndpointSpec(
        kind="socket",
        index=int(index),
        address=(address[0], int(address[1])),
        token=token,
        generation=ANY_GENERATION,
        connect_timeout=float(connect_timeout),
    )
    endpoint = SocketWorkerEndpoint(spec)
    welcome = endpoint.welcome
    worker_spec = WorkerSpec(
        index=int(index),
        agent_factory=agent_factory,
        env_factory=env_factory,
        initial_rng_state=welcome["rng_state"],
        plan=welcome.get("plan"),
        endpoint=spec,
        shapes=tuple(tuple(int(d) for d in s) for s in welcome["shapes"]),
        num_policy_params=int(welcome["num_policy_params"]),
        federate=bool(welcome.get("federate", False)),
    )
    serve_employee(worker_spec, endpoint)
