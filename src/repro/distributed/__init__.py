"""Distributed training: the paper's synchronous chief–employee
architecture, plus the asynchronous actor-learner (with V-trace
correction) it is contrasted against in Section V-A.

Fault tolerance (crash/straggler recovery, gradient quarantine,
crash-safe checkpointing and deterministic fault injection) lives in
:mod:`.faults`, :mod:`.gradient_buffer`, :mod:`.checkpoint` and the
trainer's resilient barrier.  The chief↔employee data path is
pluggable (:mod:`.transport`): shared-memory pipes on one host
(``LocalTransport``) or framed TCP with heartbeats, reconnects and
seeded network chaos (``SocketTransport``); :mod:`.remote` serves an
employee from another process or host (``python -m repro worker``)."""

from .async_trainer import AsyncActorLearner, AsyncConfig, AsyncHistory, AsyncLog
from .checkpoint import (
    CheckpointCorruptError,
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from .factories import (
    TRAINABLE_METHODS,
    build_agent,
    build_async_trainer,
    build_trainer,
    build_worker_factories,
)
from .faults import (
    CheckpointFault,
    CorruptionFault,
    CrashFault,
    FaultError,
    FaultInjector,
    FaultPlan,
    InjectedCheckpointInterrupt,
    InjectedCrash,
    StragglerFault,
)
from .gradient_buffer import GradientBuffer, GradientRejected
from .procpool import ProcessEmployeePool, WorkerDied, WorkerSpec
from .remote import run_remote_worker
from .shm import SHM_PREFIX, SlabLayout, SlabStale, TensorSlab
from .transport import (
    ChannelClosed,
    CorruptFrameFault,
    DelayFrameFault,
    DropFrameFault,
    DuplicateFrameFault,
    LocalTransport,
    NetworkFaultInjector,
    NetworkFaultPlan,
    PartitionFault,
    SocketTransport,
    Transport,
    TransportError,
)
from .trainer import (
    ChiefEmployeeTrainer,
    EmployeeHealth,
    EpisodeLog,
    TrainConfig,
    TrainerHealth,
    TrainingHistory,
)
from .vtrace import VTraceReturns, vtrace_targets

__all__ = [
    "GradientBuffer",
    "GradientRejected",
    "ChiefEmployeeTrainer",
    "EpisodeLog",
    "TrainConfig",
    "TrainingHistory",
    "EmployeeHealth",
    "TrainerHealth",
    "build_agent",
    "build_trainer",
    "build_async_trainer",
    "TRAINABLE_METHODS",
    "AsyncActorLearner",
    "AsyncConfig",
    "AsyncHistory",
    "AsyncLog",
    "VTraceReturns",
    "vtrace_targets",
    "save_checkpoint",
    "load_checkpoint",
    "verify_checkpoint",
    "CheckpointCorruptError",
    "CheckpointManager",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "CrashFault",
    "StragglerFault",
    "CorruptionFault",
    "CheckpointFault",
    "InjectedCrash",
    "InjectedCheckpointInterrupt",
    "ProcessEmployeePool",
    "WorkerDied",
    "WorkerSpec",
    "TensorSlab",
    "SlabLayout",
    "SlabStale",
    "SHM_PREFIX",
    "Transport",
    "TransportError",
    "ChannelClosed",
    "LocalTransport",
    "SocketTransport",
    "NetworkFaultInjector",
    "NetworkFaultPlan",
    "DropFrameFault",
    "DelayFrameFault",
    "DuplicateFrameFault",
    "CorruptFrameFault",
    "PartitionFault",
    "build_worker_factories",
    "run_remote_worker",
]
