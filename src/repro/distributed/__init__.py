"""Distributed training: the paper's synchronous chief–employee
architecture, plus the asynchronous actor-learner (with V-trace
correction) it is contrasted against in Section V-A."""

from .async_trainer import AsyncActorLearner, AsyncConfig, AsyncHistory, AsyncLog
from .checkpoint import load_checkpoint, save_checkpoint
from .factories import TRAINABLE_METHODS, build_agent, build_async_trainer, build_trainer
from .gradient_buffer import GradientBuffer
from .trainer import ChiefEmployeeTrainer, EpisodeLog, TrainConfig, TrainingHistory
from .vtrace import VTraceReturns, vtrace_targets

__all__ = [
    "GradientBuffer",
    "ChiefEmployeeTrainer",
    "EpisodeLog",
    "TrainConfig",
    "TrainingHistory",
    "build_agent",
    "build_trainer",
    "build_async_trainer",
    "TRAINABLE_METHODS",
    "AsyncActorLearner",
    "AsyncConfig",
    "AsyncHistory",
    "AsyncLog",
    "VTraceReturns",
    "vtrace_targets",
    "save_checkpoint",
    "load_checkpoint",
]
