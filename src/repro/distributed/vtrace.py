"""V-trace off-policy correction (Espeholt et al., IMPALA, 2018).

Section V-A of the paper discusses why asynchronous actor-learner setups
suffer *policy-lag* — the behaviour policy that generated a trajectory is
older than the policy being updated — and cites V-trace as the correction
IMPALA uses, before opting for a synchronous design.  This module
implements V-trace so the repository can also run the asynchronous
alternative (:mod:`repro.distributed.async_trainer`) and quantify the
trade-off the authors describe.

Given behaviour log-probs ``μ(a|s)`` and current-policy log-probs
``π(a|s)`` along a trajectory, define truncated importance weights

.. math::
    ρ_t = \\min(\\barρ, π/μ), \\qquad c_t = \\min(\\bar c, π/μ)

and the V-trace targets (computed backwards)

.. math::
    v_t = V(s_t) + δ_t + γ c_t (v_{t+1} - V(s_{t+1})),
    \\qquad δ_t = ρ_t (r_t + γ V(s_{t+1}) - V(s_t))

with policy-gradient advantages ``ρ_t (r_t + γ v_{t+1} - V(s_t))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VTraceReturns", "vtrace_targets"]


@dataclass(frozen=True)
class VTraceReturns:
    """Outputs of :func:`vtrace_targets`.

    Attributes
    ----------
    vs:
        (T,) value targets ``v_t`` for the critic regression.
    advantages:
        (T,) policy-gradient advantages ``ρ_t (r_t + γ v_{t+1} - V_t)``.
    rhos:
        (T,) the truncated importance weights actually used.
    """

    vs: np.ndarray
    advantages: np.ndarray
    rhos: np.ndarray


def vtrace_targets(
    behaviour_log_probs: np.ndarray,
    target_log_probs: np.ndarray,
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    gamma: float,
    bootstrap_value: float = 0.0,
    clip_rho: float = 1.0,
    clip_c: float = 1.0,
) -> VTraceReturns:
    """Compute V-trace value targets and advantages for one trajectory.

    Parameters
    ----------
    behaviour_log_probs, target_log_probs:
        (T,) log π_behaviour and log π_target of the taken actions.
    rewards, values:
        (T,) rewards and the current critic's value estimates ``V(s_t)``.
    dones:
        (T,) episode-termination flags; bootstrapping is cut at a done.
    gamma:
        Discount factor.
    bootstrap_value:
        ``V(s_T)`` for the step after the last, if the trajectory was
        truncated rather than terminated.
    clip_rho, clip_c:
        The truncation levels ρ̄ and c̄ (IMPALA defaults: 1.0).
    """
    behaviour_log_probs = np.asarray(behaviour_log_probs, dtype=np.float64)
    target_log_probs = np.asarray(target_log_probs, dtype=np.float64)
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    horizon = len(rewards)
    for name, arr in (
        ("behaviour_log_probs", behaviour_log_probs),
        ("target_log_probs", target_log_probs),
        ("values", values),
        ("dones", dones),
    ):
        if len(arr) != horizon:
            raise ValueError(f"{name} has length {len(arr)}, expected {horizon}")
    if not 0.0 < gamma <= 1.0:
        raise ValueError(f"gamma must be in (0, 1], got {gamma}")
    if clip_rho <= 0.0 or clip_c <= 0.0:
        raise ValueError("clip_rho and clip_c must be positive")

    with np.errstate(over="ignore"):
        ratios = np.exp(target_log_probs - behaviour_log_probs)
    rhos = np.minimum(clip_rho, ratios)
    cs = np.minimum(clip_c, ratios)

    # next_values[t] = V(s_{t+1}) with done cuts.
    next_values = np.empty(horizon)
    next_values[:-1] = values[1:]
    next_values[-1] = bootstrap_value
    next_values[dones] = 0.0

    deltas = rhos * (rewards + gamma * next_values - values)

    vs_minus_v = np.zeros(horizon)
    acc = 0.0
    for t in range(horizon - 1, -1, -1):
        if dones[t]:
            acc = 0.0
        acc = deltas[t] + gamma * cs[t] * acc
        vs_minus_v[t] = acc
    vs = values + vs_minus_v

    # vs_{t+1} for the advantage; done cuts again.
    next_vs = np.empty(horizon)
    next_vs[:-1] = vs[1:]
    next_vs[-1] = bootstrap_value
    next_vs[dones] = 0.0

    advantages = rhos * (rewards + gamma * next_vs - values)
    return VTraceReturns(vs=vs, advantages=advantages, rhos=rhos)
