"""Asynchronous actor-learner training — the alternative the paper rejects.

Section V-A: "Although asynchronous setting can be more efficient than the
synchronous one, the decoupling between data sampling and policy learning
will result in a *policy-lag* between chief and employees, which will
further make the learning process unstable.  Espeholt et al. proposed a
novel off-policy correction method called V-trace ...  However ... we
simply adopt a synchronous structure."

This module implements that rejected alternative so the trade-off can be
measured: an IMPALA-style actor-learner where

* **actors** (employees) roll episodes with *stale* local parameters —
  they re-sync from the learner only every ``sync_every`` episodes, which
  is exactly the policy-lag knob;
* the **learner** (chief) consumes each trajectory as it arrives and
  applies one update immediately — no barrier, no gradient summing;
* the learner's loss is the actor-critic objective with either **no
  off-policy correction** (``correction="none"``, the naive A3C-ish
  setup whose instability the paper warns about) or **V-trace**
  (``correction="vtrace"``).

The update is sequential-deterministic (single process): "asynchrony" here
*is* the policy lag, which is the semantics that matters; thread carriers
add nondeterminism but no new behaviour.

Like the synchronous trainer, the learner **quarantines** poisoned
updates: if any policy or curiosity gradient turns non-finite after the
backward pass (or a :class:`~repro.distributed.faults.FaultInjector`
corrupts it), the optimizer step is skipped, the rejection is tallied in
:attr:`AsyncActorLearner.health`, and training continues on the next
trajectory instead of diverging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .. import nn
from ..agents.base import EpisodeResult
from ..agents.rollout import MiniBatch
from ..env.env import CrowdsensingEnv
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import event as trace_event
from ..obs.trace import span as trace_span
from .faults import FaultInjector
from .trainer import TrainerHealth
from .vtrace import vtrace_targets

_LOG = get_logger(__name__)

__all__ = ["AsyncConfig", "AsyncLog", "AsyncHistory", "AsyncActorLearner"]

CORRECTIONS = ("none", "vtrace")


def _grads_finite(params) -> bool:
    """True iff every present gradient is fully finite."""
    for param in params:
        if param.grad is not None and not np.all(np.isfinite(param.grad)):
            return False
    return True


@dataclass(frozen=True)
class AsyncConfig:
    """Knobs of the asynchronous loop.

    Attributes
    ----------
    num_actors:
        Number of actor replicas with independently lagging parameters.
    episodes:
        Total episodes consumed by the learner (actors contribute
        round-robin).
    sync_every:
        An actor copies the learner's parameters every this many of *its
        own* episodes.  1 = always fresh (minimal lag); larger values
        increase policy-lag.
    correction:
        ``"vtrace"`` or ``"none"``.
    clip_rho, clip_c:
        V-trace truncation levels.
    value_coef, entropy_coef:
        Loss weights of the learner's actor-critic objective.
    seed:
        Master seed.
    """

    num_actors: int = 4
    episodes: int = 100
    sync_every: int = 4
    correction: str = "vtrace"
    clip_rho: float = 1.0
    clip_c: float = 1.0
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_actors < 1:
            raise ValueError(f"need at least one actor, got {self.num_actors}")
        if self.episodes < 1:
            raise ValueError(f"episodes must be >= 1, got {self.episodes}")
        if self.sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {self.sync_every}")
        if self.correction not in CORRECTIONS:
            raise ValueError(
                f"correction must be one of {CORRECTIONS}, got {self.correction!r}"
            )


@dataclass
class AsyncLog:
    """One learner update's record."""

    episode: int
    actor: int
    lag: int
    extrinsic_reward: float
    kappa: float
    rho: float
    rho_mean: float
    value_loss: float
    policy_loss: float
    rejected: bool = False
    """True when this update's gradients were quarantined (step skipped)."""


@dataclass
class AsyncHistory:
    logs: List[AsyncLog] = field(default_factory=list)

    def curve(self, key: str) -> List[float]:
        """Per-update series of one scalar field."""
        return [getattr(log, key) for log in self.logs]


class AsyncActorLearner:
    """IMPALA-style asynchronous trainer over PPOWorkerAgent-like agents.

    Parameters
    ----------
    learner_agent:
        The global agent; its network is the learner's model.
    actor_factory:
        ``f(actor_index) -> agent`` building structurally identical actors.
    env_factory:
        ``f(actor_index) -> CrowdsensingEnv``.
    config:
        Loop configuration.
    fault_injector:
        Optional :class:`~repro.distributed.faults.FaultInjector`; its
        corruption events (keyed by actor index / episode, round 0) poison
        the learner's gradients so the quarantine path is testable.
    """

    def __init__(
        self,
        learner_agent,
        actor_factory: Callable[[int], object],
        env_factory: Callable[[int], CrowdsensingEnv],
        config: Optional[AsyncConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        self.config = config if config is not None else AsyncConfig()
        self.learner = learner_agent
        self.fault_injector = fault_injector
        self.health = TrainerHealth()
        master = np.random.SeedSequence(self.config.seed)
        seeds = master.spawn(self.config.num_actors)
        self.actors = [actor_factory(i) for i in range(self.config.num_actors)]
        self.envs = [env_factory(i) for i in range(self.config.num_actors)]
        self.rngs = [np.random.default_rng(s) for s in seeds]
        self._episodes_per_actor = [0] * self.config.num_actors
        self._updates_at_sync = [0] * self.config.num_actors
        self._update_count = 0
        self.optimizer = nn.Adam(
            self.learner.policy_parameters(), lr=self.learner.ppo.learning_rate
        )
        curiosity_params = self.learner.curiosity_parameters()
        self.curiosity_optimizer = (
            nn.Adam(curiosity_params, lr=self.learner.ppo.effective_curiosity_lr)
            if curiosity_params
            else None
        )
        for actor in self.actors:
            actor.copy_parameters_from(self.learner)

    # ------------------------------------------------------------------
    def train(self, episodes: Optional[int] = None) -> AsyncHistory:
        """Run the asynchronous loop; returns per-update history."""
        episodes = episodes if episodes is not None else self.config.episodes
        config = self.config
        history = AsyncHistory()

        for episode in range(episodes):
            actor_index = episode % config.num_actors
            actor = self.actors[actor_index]
            env = self.envs[actor_index]
            rng = self.rngs[actor_index]

            # Actor re-syncs on its own schedule (policy lag in between).
            if self._episodes_per_actor[actor_index] % config.sync_every == 0:
                actor.copy_parameters_from(self.learner)
                self._updates_at_sync[actor_index] = self._update_count
            self._episodes_per_actor[actor_index] += 1
            lag = self._update_count - self._updates_at_sync[actor_index]

            with trace_span(
                "actor.rollout", actor=actor_index, episode=episode, lag=lag
            ):
                buffer, result = actor.collect_episode(env, rng)
            batch = buffer.full_batch()  # ordered trajectory
            rewards = np.array([tr.reward for tr in buffer._transitions])
            dones = np.array([tr.done for tr in buffer._transitions])

            # Learner-side forward pass with *current* parameters.
            with trace_span("learner.forward", actor=actor_index, episode=episode):
                output = self.learner.network.forward(
                    batch.states,
                    move_mask=batch.move_masks,
                    worker_features=batch.worker_features,
                )
                target_log_probs = output.log_prob(batch.moves, batch.charges)
                values = output.value

            if config.correction == "vtrace":
                trace = vtrace_targets(
                    behaviour_log_probs=batch.log_probs,
                    target_log_probs=target_log_probs.data,
                    rewards=rewards,
                    values=values.data,
                    dones=dones,
                    gamma=self.learner.ppo.gamma,
                    clip_rho=config.clip_rho,
                    clip_c=config.clip_c,
                )
                advantages = trace.advantages
                value_targets = trace.vs
                rho_mean = float(trace.rhos.mean())
            else:
                # Naive uncorrected actor-critic: pretend the trajectory is
                # on-policy (this is the policy-lag failure mode).
                from ..agents.rollout import discounted_returns

                value_targets = discounted_returns(
                    rewards, dones, self.learner.ppo.gamma, 0.0
                )
                advantages = value_targets - values.data
                rho_mean = 1.0

            policy_loss = -(target_log_probs * nn.Tensor(advantages)).mean()
            value_error = values - nn.Tensor(value_targets)
            value_loss = (value_error * value_error).mean()
            entropy = output.entropy().mean()
            loss = (
                policy_loss
                + config.value_coef * value_loss
                - config.entropy_coef * entropy
            )

            params = self.learner.policy_parameters()
            for param in params:
                param.grad = None
            with trace_span("learner.update", actor=actor_index, episode=episode):
                loss.backward()
            if self.fault_injector is not None:
                self.fault_injector.corrupt_arrays(
                    actor_index,
                    episode,
                    0,
                    [p.grad for p in params if p.grad is not None],
                    "policy",
                )
            rejected = not _grads_finite(params)
            if rejected:
                # Quarantine: a poisoned step would corrupt the Adam
                # moments of every parameter it touches.  Skip it.
                self.health.employee(actor_index).rejected_policy_gradients += 1
                get_registry().counter(
                    "repro_gradients_rejected_total",
                    "Gradient contributions quarantined by the chief",
                    labelnames=("kind", "employee"),
                ).labels(kind="policy", employee=actor_index).inc()
                trace_event(
                    "fault.quarantine",
                    employee=actor_index,
                    episode=episode,
                    round=0,
                    kind="policy",
                )
                _LOG.warning(
                    "quarantined policy gradient from actor %d (episode %d)",
                    actor_index,
                    episode,
                )
                for param in params:
                    param.grad = None
            else:
                nn.clip_grad_norm(params, self.learner.ppo.max_grad_norm)
                self.optimizer.step()
                self._update_count += 1

            # The curiosity model (if any) trains on the same trajectory.
            if self.curiosity_optimizer is not None:
                from ..curiosity.base import TransitionBatch

                curiosity_batch = TransitionBatch(
                    positions=batch.positions,
                    next_positions=batch.next_positions,
                    moves=batch.moves,
                    states=batch.states,
                    next_states=batch.next_states,
                )
                curiosity_params = self.learner.curiosity_parameters()
                for param in curiosity_params:
                    param.grad = None
                self.learner.curiosity.loss(curiosity_batch).backward()
                if self.fault_injector is not None:
                    self.fault_injector.corrupt_arrays(
                        actor_index,
                        episode,
                        0,
                        [p.grad for p in curiosity_params if p.grad is not None],
                        "curiosity",
                    )
                if _grads_finite(curiosity_params):
                    self.curiosity_optimizer.step()
                else:
                    self.health.employee(
                        actor_index
                    ).rejected_curiosity_gradients += 1
                    get_registry().counter(
                        "repro_gradients_rejected_total",
                        "Gradient contributions quarantined by the chief",
                        labelnames=("kind", "employee"),
                    ).labels(kind="curiosity", employee=actor_index).inc()
                    trace_event(
                        "fault.quarantine",
                        employee=actor_index,
                        episode=episode,
                        round=0,
                        kind="curiosity",
                    )
                    _LOG.warning(
                        "quarantined curiosity gradient from actor %d (episode %d)",
                        actor_index,
                        episode,
                    )
                    for param in curiosity_params:
                        param.grad = None

            history.logs.append(
                AsyncLog(
                    episode=episode,
                    actor=actor_index,
                    lag=lag,
                    extrinsic_reward=result.extrinsic_reward,
                    kappa=result.metrics.kappa,
                    rho=result.metrics.rho,
                    rho_mean=rho_mean,
                    value_loss=float(value_loss.item()),
                    policy_loss=float(policy_loss.item()),
                    rejected=rejected,
                )
            )
        return history
