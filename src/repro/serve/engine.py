"""The policy engine: checkpoint weights in, bitwise joint actions out.

The engine owns the one numerical contract the whole service is built on:
**a coalesced batch must answer every row bitwise-identically to the
offline single-state** :meth:`~repro.agents.policy.PPOWorkerAgent.act_full`.
Naively stacking states breaks that contract — OpenBLAS picks different
dgemm kernels (different summation orders) for different row counts, so
a ``(B, in)`` Linear matmul does *not* reproduce the ``(1, in)`` rows it
contains.  The convolution im2col matmuls are safe: their row count is
``B × positions`` (hundreds even at B=1), far past the kernel-switch
regime, and each sample occupies a contiguous row block.

The served forward therefore runs the conv trunk batched (where the
batch dimension is nearly free) and the small Linear heads **row by
row**, concatenating the per-row outputs.  Measured on the bench micro
this still beats B independent forwards by >2x at B=8 — the convs are
~80% of the FLOPs — while keeping every row bitwise-equal to ``act_full``.

Sampling mirrors ``act_full`` exactly: each row is re-wrapped as a
batch-of-one :class:`~repro.agents.networks.PolicyOutput` and pushed
through the same distribution code, with a fresh
``np.random.default_rng(seed)`` per sampled request so clients can
reproduce any served action offline.

The forward runs under :class:`repro.nn.no_grad` through a
:class:`repro.nn.ForwardPlanner` (PR 9 executor, forward-only plans) —
one plan per batch-size signature, byte-validated against the tape on
first capture.  Hot reload is ``load_state_dict`` (in-place
``param.data[...] =``), which compiled plans observe automatically
because replay reads parameter ``.data`` per call.
"""

from __future__ import annotations

import json
import os
import zipfile
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..agents.networks import CNNActorCritic, MASKED_LOGIT, PolicyOutput
from ..distributed.checkpoint import (
    CheckpointCorruptError,
    _payload_checksum,
    _resolve_load_path,
)
from ..env.actions import NUM_MOVES
from .protocol import InferError, InferRequest, InferResult, RequestError

__all__ = [
    "PolicyEngine",
    "load_network_state",
    "network_from_state",
]

_NETWORK_PREFIX = "agent.network."


def load_network_state(path: os.PathLike, verify: bool = True) -> Dict[str, np.ndarray]:
    """Read a checkpoint's policy-network arrays without building a trainer.

    ``load_checkpoint`` restores a full :class:`ChiefEmployeeTrainer`
    (optimizer moments, employee RNGs, episode counter); serving needs
    none of that.  This reads the ``agent.network.*`` arrays directly and
    still verifies the archive's SHA-256 payload checksum, so a torn or
    corrupted checkpoint is refused instead of served.
    """
    path = _resolve_load_path(path)
    try:
        archive_ctx = np.load(path)
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise CheckpointCorruptError(f"unreadable checkpoint {path!r}: {error}")
    with archive_ctx as archive:
        try:
            manifest = json.loads(bytes(archive["__manifest__"]).decode())
            arrays = {key: archive[key] for key in archive.files}
        except (KeyError, ValueError, zipfile.BadZipFile, OSError) as error:
            raise CheckpointCorruptError(
                f"checkpoint {path!r} has no readable manifest: {error}"
            )
    if verify and "checksum" in manifest:
        payload = {k: v for k, v in arrays.items() if k != "__manifest__"}
        actual = _payload_checksum(payload)
        if actual != manifest["checksum"]:
            raise CheckpointCorruptError(
                f"checkpoint {path!r} failed checksum validation "
                f"(expected {manifest['checksum'][:12]}…, got {actual[:12]}…)"
            )
    state = {
        key[len(_NETWORK_PREFIX):]: value.copy()
        for key, value in arrays.items()
        if key.startswith(_NETWORK_PREFIX)
    }
    if not state:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} holds no {_NETWORK_PREFIX}* arrays"
        )
    return state


def _conv_stride2_out(size: int) -> int:
    # Conv2d(kernel=3, stride=2, padding=1): out = (size + 2 - 3) // 2 + 1
    return (size - 1) // 2 + 1


def _state_geometry(state: Dict[str, np.ndarray]) -> Dict[str, int]:
    """The architecture facts recoverable from a saved state dict alone.

    Channels come from ``conv1.weight`` (out, in, kH, kW), the feature
    width from ``fc.weight`` (out, in), the worker count from
    ``charge_head.weight``, and layer norm from the presence of ``norm1``
    keys.  The *grid* is NOT recoverable: the two stride-2 convs floor-
    divide it, so several grids share one ``fc`` input width (e.g. grids
    5–8 all flatten to 64) — it must come from the first request's state.
    """
    try:
        return {
            "channels": int(state["conv1.weight"].shape[1]),
            "feature_dim": int(state["fc.weight"].shape[0]),
            "flat": int(state["fc.weight"].shape[1]),
            "num_workers": int(state["charge_head.weight"].shape[0]),
            "layer_norm": int("norm1.weight" in state),
        }
    except KeyError as error:
        raise CheckpointCorruptError(f"network state missing {error}")


def network_from_state(state: Dict[str, np.ndarray], grid: int) -> CNNActorCritic:
    """Rebuild the policy network a state dict was saved from.

    ``grid`` must be supplied (see :func:`_state_geometry`); a grid whose
    conv arithmetic contradicts ``fc.weight``'s input width is refused.
    """
    geometry = _state_geometry(state)
    half = _conv_stride2_out(_conv_stride2_out(int(grid)))
    if 16 * half * half != geometry["flat"]:
        raise CheckpointCorruptError(
            f"grid {grid} flattens to {16 * half * half} features; the "
            f"checkpoint's fc layer expects {geometry['flat']}"
        )
    network = CNNActorCritic(
        channels=geometry["channels"],
        grid=int(grid),
        num_workers=geometry["num_workers"],
        feature_dim=geometry["feature_dim"],
        rng=np.random.default_rng(0),
        layer_norm=bool(geometry["layer_norm"]),
    )
    network.load_state_dict(state)
    return network


def _rowwise(layer: nn.Linear, x: nn.Tensor) -> nn.Tensor:
    """Apply a Linear layer one row at a time (bitwise row parity).

    OpenBLAS dgemm output depends on the row count M for small M, so a
    stacked ``(B, in)`` matmul differs from its ``(1, in)`` rows in the
    last bits.  Row-at-a-time application pins M=1 for every row.
    """
    if x.shape[0] == 1:
        return layer(x)
    return nn.concat([layer(x[i : i + 1]) for i in range(x.shape[0])], axis=0)


class PolicyEngine:
    """Batched, bitwise-exact inference over one policy network.

    Parameters
    ----------
    state:
        Network state dict (from :func:`load_network_state`).
    generation:
        Monotonic checkpoint-generation stamp attached to every result.
    use_plans:
        Capture forward-only execution plans (one per batch-size
        signature); falls back to the tape whenever
        ``fast_path_allowed(forward_only=True)`` refuses.
    """

    def __init__(
        self,
        state: Dict[str, np.ndarray],
        generation: int = 0,
        use_plans: bool = True,
        max_plans: int = 32,
        grid: Optional[int] = None,
    ):
        self._geometry = _state_geometry(state)
        # The grid is ambiguous from the state dict alone (see
        # _state_geometry), so the network is built lazily from the first
        # request's state shape unless a grid is given up front.
        self.network: Optional[CNNActorCritic] = (
            network_from_state(state, grid) if grid is not None else None
        )
        self._pending_state: Optional[Dict[str, np.ndarray]] = (
            None if grid is not None else state
        )
        self.generation = int(generation)
        self._planner: Optional[nn.ForwardPlanner] = None
        self._use_plans = bool(use_plans)
        self._max_plans = int(max_plans)
        if self.network is not None:
            self._attach_planner()
        self.batches = 0
        self.rows = 0

    def _attach_planner(self) -> None:
        if self._use_plans:
            self._planner = nn.ForwardPlanner(
                self._program, name="serve", max_plans=self._max_plans
            )

    # ------------------------------------------------------------------
    # The served forward
    # ------------------------------------------------------------------
    def _program(self, inputs: Dict[str, np.ndarray]) -> Dict[str, nn.Tensor]:
        net = self.network
        x = nn.Tensor(inputs["states"])
        x = net.conv1(x)
        if net.use_layer_norm:
            x = net.norm1(x)
        x = x.relu()
        x = net.conv2(x)
        if net.use_layer_norm:
            x = net.norm2(x)
        x = x.relu()
        x = net.conv3(x)
        if net.use_layer_norm:
            x = net.norm3(x)
        x = x.relu()
        batch = x.shape[0]
        x = x.reshape(batch, -1)
        phi = _rowwise(net.fc, x).relu()
        flat = nn.Tensor(inputs["worker_features_flat"])
        head = _rowwise(net.head_trunk, nn.concat([phi, flat], axis=1)).relu()
        move_logits = _rowwise(net.move_head, head).reshape(
            batch, net.num_workers, NUM_MOVES
        ) + nn.Tensor(inputs["mask_penalty"])
        charge_logits = _rowwise(net.charge_head, head)
        value = _rowwise(net.value_head, head).reshape(batch)
        return {
            "move_logits": move_logits,
            "charge_logits": charge_logits,
            "value": value,
        }

    def _forward(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        with nn.no_grad():
            if self._planner is not None:
                return self._planner.step(inputs)
            return {
                name: tensor.data
                for name, tensor in self._program(inputs).items()
            }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def _ensure_network(self, request: InferRequest) -> None:
        """Build the network from the first request's state geometry."""
        if self.network is not None:
            return
        grid = int(request.state.shape[1])
        try:
            self.network = network_from_state(self._pending_state, grid)
        except CheckpointCorruptError as error:
            raise RequestError(str(error))
        self._pending_state = None
        self._attach_planner()

    def _check_geometry(self, request: InferRequest) -> None:
        net = self.network
        expected_state = (net.channels, net.grid, net.grid)
        if request.state.shape != expected_state:
            raise RequestError(
                f"state shape {request.state.shape} does not match the "
                f"checkpoint's {expected_state}"
            )
        if request.move_mask.shape[0] != net.num_workers:
            raise RequestError(
                f"request has {request.move_mask.shape[0]} workers; the "
                f"checkpoint serves {net.num_workers}"
            )

    def infer_batch(self, requests: Sequence[InferRequest]) -> List[object]:
        """Answer a coalesced batch; each row bitwise-equals ``act_full``.

        Validation is per row: a stray-geometry request yields an
        :class:`InferError` marker in its slot instead of failing the
        whole batch — its co-batched neighbours (other clients' valid
        requests) are forwarded and answered normally.
        """
        if not requests:
            return []
        outcomes: List[object] = [None] * len(requests)
        good: List[int] = []
        for i, request in enumerate(requests):
            try:
                # The network is built lazily from the first row whose
                # geometry yields a valid grid; rows that can't build or
                # match it fail alone.
                self._ensure_network(request)
                self._check_geometry(request)
            except RequestError as error:
                outcomes[i] = InferError(str(error))
            else:
                good.append(i)
        if good:
            results = self._infer_rows([requests[i] for i in good])
            for i, result in zip(good, results):
                outcomes[i] = result
        return outcomes

    def _infer_rows(self, requests: Sequence[InferRequest]) -> List[InferResult]:
        """The stacked forward over geometry-validated rows."""
        states = np.stack([r.state for r in requests])
        penalty = np.stack(
            [np.where(r.move_mask, 0.0, MASKED_LOGIT) for r in requests]
        )
        features = np.ascontiguousarray(
            np.stack([r.worker_features for r in requests]).reshape(
                len(requests), -1
            )
        )
        outputs = self._forward(
            {
                "states": states,
                "mask_penalty": penalty,
                "worker_features_flat": features,
            }
        )
        generation = self.generation
        results = []
        with nn.no_grad():
            for i, request in enumerate(requests):
                # A batch-of-one view of row i: bitwise-identical inputs to
                # act_full's forward, pushed through the same sampling code.
                output = PolicyOutput(
                    move_logits=nn.Tensor(outputs["move_logits"][i : i + 1]),
                    charge_logits=nn.Tensor(outputs["charge_logits"][i : i + 1]),
                    value=nn.Tensor(outputs["value"][i : i + 1]),
                )
                move_dist = output.move_distribution()
                charge_dist = output.charge_distribution()
                if request.greedy:
                    moves = move_dist.mode()[0]
                    charges = charge_dist.mode()[0]
                else:
                    rng = np.random.default_rng(request.seed)
                    moves = move_dist.sample(rng)[0]
                    charges = charge_dist.sample(rng)[0]
                log_prob = float(output.log_prob(moves[None], charges[None]).item())
                value = float(output.value.item())
                results.append(
                    InferResult(
                        moves=np.asarray(moves, dtype=np.int64),
                        charges=np.asarray(charges, dtype=np.int64),
                        log_prob=log_prob,
                        value=value,
                        generation=generation,
                        cached=False,
                        batch_size=len(requests),
                    )
                )
        self.batches += 1
        self.rows += len(requests)
        return results

    def reload(self, state: Dict[str, np.ndarray], generation: int) -> None:
        """Swap in new weights (in place — compiled plans stay valid)."""
        if int(generation) <= self.generation:
            raise ValueError(
                f"generation must advance ({generation} <= {self.generation})"
            )
        if self.network is None:
            # Callers (the pool worker's OP_RELOAD) may pass zero-copy
            # slab views; with no network yet the arrays sit in
            # _pending_state until the first request, by which time the
            # parent may have rewritten the slab — copy them now.
            state = {key: np.array(value) for key, value in state.items()}
            self._geometry = _state_geometry(state)
            self._pending_state = state
        else:
            self.network.load_state_dict(state)
        self.generation = int(generation)

    def info(self) -> Dict[str, int]:
        """Served-model facts for the ``info`` protocol message."""
        info = dict(self._geometry)
        info.pop("flat", None)
        info["generation"] = self.generation
        info["grid"] = -1 if self.network is None else self.network.grid
        info["plans"] = int(self._planner is not None)
        return info

    def stats(self) -> Dict[str, int]:
        stats = {"batches": self.batches, "rows": self.rows}
        if self._planner is not None:
            stats.update(self._planner.stats)
        return stats
