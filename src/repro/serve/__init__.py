"""Policy-inference serving: the trained scheduler as a network service.

``repro serve`` loads a :class:`~repro.distributed.checkpoint.CheckpointManager`
checkpoint and answers "fleet state → joint actions" over the framed-TCP
codec (plus a JSON/HTTP front door).  The layer stack, bottom up:

==========================  ============================================
:mod:`repro.serve.engine`   bitwise-exact batched forward + sampling
:mod:`repro.serve.pool`     fork workers, zero-copy slab weight broadcast
:mod:`repro.serve.cache`    generation-aware LRU of served actions
:mod:`repro.serve.batcher`  max-batch/max-delay coalescing + admission
:mod:`repro.serve.server`   asyncio TCP + HTTP front doors, hot reload
:mod:`repro.serve.protocol` request/result wire + JSON encodings
==========================  ============================================

The invariant everything above the engine inherits: a served action is
bitwise-identical to offline
:meth:`~repro.agents.policy.PPOWorkerAgent.act_full` on the same state,
whatever batch it was coalesced into, whether it was a cache hit, and
across hot-reload boundaries (old-generation answers are tagged).
"""

from .batcher import MicroBatcher
from .cache import ActionCache
from .engine import PolicyEngine, load_network_state, network_from_state
from .pool import InlinePool, ServeWorkerPool, WorkerCrashed
from .protocol import (
    InferError,
    InferRequest,
    InferResult,
    Overloaded,
    RequestError,
)
from .server import InferenceServer, ServeClient

__all__ = [
    "ActionCache",
    "InferenceServer",
    "InferError",
    "InferRequest",
    "InferResult",
    "InlinePool",
    "MicroBatcher",
    "Overloaded",
    "PolicyEngine",
    "RequestError",
    "ServeClient",
    "ServeWorkerPool",
    "WorkerCrashed",
    "load_network_state",
    "network_from_state",
]
