"""Dynamic micro-batching: coalesce concurrent requests into one forward.

The batch dimension of the conv trunk is nearly free in the numpy
kernels, so the cheapest way to serve N concurrent requests is one
stacked ``(N, C, G, G)`` forward instead of N sequential ones.  The
coalescing policy is the classic **max-batch / max-delay** pair:

* a request never waits more than ``max_delay`` seconds for company
  (the latency floor a lone request pays at low load), and
* a batch never exceeds ``max_batch`` rows (bounding per-batch latency
  and keeping the plan-signature set small at high load).

At saturation batches fill instantly and the delay timer never fires —
throughput approaches ``max_batch × forward_rate`` while the timer only
shapes the low-load tail.

Admission control is a hard bound on *queued + in-flight* rows: past
``max_pending`` the submit raises :class:`Overloaded` (surfaced as a
503-style reject with a ``retry_after`` hint) instead of growing an
unbounded queue — shedding load early keeps the latency of accepted
requests bounded, and the PR 1-style client folds the hint into its
retry backoff.

The batcher is pure asyncio bookkeeping; the actual forward (a blocking
worker-pool round-trip) runs on executor threads via
``loop.run_in_executor``, never on the event loop (lint rule RPL019).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, List, Optional, Sequence, Tuple

from .protocol import InferError, InferRequest, InferResult, Overloaded, RequestError

__all__ = ["MicroBatcher"]

Dispatch = Callable[[Sequence[InferRequest]], List[object]]


class MicroBatcher:
    """Coalesce ``submit()`` calls into ``dispatch()`` batches.

    Parameters
    ----------
    dispatch:
        Blocking callable mapping a request batch to its results; runs
        on ``executor`` threads (one thread per pool worker gives full
        worker parallelism).
    on_batch:
        Optional hook called with each dispatched batch size (metrics).
    """

    def __init__(
        self,
        dispatch: Dispatch,
        executor,
        max_batch: int = 8,
        max_delay: float = 0.002,
        max_pending: int = 64,
        on_batch: Optional[Callable[[int], None]] = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self._dispatch = dispatch
        self._executor = executor
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.max_pending = int(max_pending)
        self._on_batch = on_batch
        self._pending: List[Tuple[InferRequest, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._inflight = 0
        self._tasks: set = set()
        self._closed = False
        self.submitted = 0
        self.rejected = 0
        self.batches = 0

    @property
    def depth(self) -> int:
        """Rows admitted but not yet answered (queued + in-flight)."""
        return len(self._pending) + self._inflight

    def submit(self, request: InferRequest) -> "Awaitable[InferResult]":
        """Queue one request; resolves with its result (event loop only)."""
        if self._closed:
            raise Overloaded(self.depth, retry_after=1.0)
        if self.depth >= self.max_pending:
            self.rejected += 1
            # A full queue drains one batch per forward; suggest waiting
            # roughly one coalescing window before retrying.
            raise Overloaded(self.depth, retry_after=max(self.max_delay, 0.01))
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future))
        self.submitted += 1
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self._flush)
        return future

    def _flush(self) -> None:
        """Dispatch everything pending, in max_batch-sized chunks."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        while self._pending:
            chunk = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            self._inflight += len(chunk)
            self.batches += 1
            if self._on_batch is not None:
                self._on_batch(len(chunk))
            task = asyncio.get_running_loop().create_task(self._run(chunk))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run(self, chunk: List[Tuple[InferRequest, asyncio.Future]]) -> None:
        loop = asyncio.get_running_loop()
        requests = [request for request, __ in chunk]
        try:
            results = await loop.run_in_executor(
                self._executor, self._dispatch, requests
            )
            for (__, future), result in zip(chunk, results):
                if future.done():
                    continue
                if isinstance(result, InferError):
                    # A bad row fails alone; its chunk-mates got results.
                    future.set_exception(RequestError(result.error))
                else:
                    future.set_result(result)
        except Exception as error:
            for __, future in chunk:
                if not future.done():
                    future.set_exception(error)
        finally:
            self._inflight -= len(chunk)

    async def drain(self) -> None:
        """Wait for every admitted request to finish (shutdown path)."""
        self._flush()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def close(self) -> None:
        """Stop admitting, then drain what was already accepted."""
        self._closed = True
        await self.drain()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def stats(self) -> dict:
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "batches": self.batches,
            "depth": self.depth,
        }
