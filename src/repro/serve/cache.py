"""Generation-aware LRU cache for served joint actions.

Keys are SHA-256 digests of the encoded request
(:func:`repro.serve.protocol.request_digest`).  A digest lookup alone is
not proof of identity — the cache stores the request's full key material
next to the result and byte-compares it on every hit, so even an
engineered digest collision degrades to a miss instead of serving a
wrong action.

Entries are stamped with the checkpoint generation that produced them.
Bumping the cache's generation (hot reload) invalidates every older
entry lazily: stale entries are dropped on lookup rather than eagerly
swept, keeping reload O(1) on the serving path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from .protocol import InferRequest, InferResult, request_digest

__all__ = ["ActionCache"]


class ActionCache:
    """A bounded, thread-safe LRU of ``digest -> InferResult``."""

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        # digest -> (key_material, result, generation)
        self._entries: "OrderedDict[bytes, Tuple[Tuple, InferResult, int]]" = (
            OrderedDict()
        )
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.collisions = 0
        self.invalidations = 0

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def bump_generation(self, generation: Optional[int] = None) -> int:
        """Advance the live generation, logically invalidating old entries."""
        with self._lock:
            if generation is None:
                self._generation += 1
            else:
                generation = int(generation)
                if generation < self._generation:
                    raise ValueError(
                        f"generation must not go backwards "
                        f"({generation} < {self._generation})"
                    )
                self._generation = generation
            return self._generation

    def get(self, request: InferRequest) -> Optional[InferResult]:
        """Return the cached result for ``request``, or ``None``.

        Hits are re-tagged ``cached=True`` with the entry's original
        generation preserved, so callers can still see which weights
        produced the action.
        """
        digest = request_digest(request)
        material = request.key_material()
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            stored_material, result, generation = entry
            if generation != self._generation:
                # Stale weights: drop lazily and treat as a miss.
                del self._entries[digest]
                self.invalidations += 1
                self.misses += 1
                return None
            if stored_material != material:
                # Digest collision — never serve someone else's action.
                self.collisions += 1
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return InferResult(
                moves=result.moves,
                charges=result.charges,
                log_prob=result.log_prob,
                value=result.value,
                generation=result.generation,
                cached=True,
                batch_size=result.batch_size,
            )

    def put(self, request: InferRequest, result: InferResult) -> None:
        """Insert ``request -> result`` if it was computed by the live weights."""
        digest = request_digest(request)
        material = request.key_material()
        with self._lock:
            if self.capacity == 0:
                return
            if result.generation != self._generation:
                # Computed by a checkpoint that has since been replaced
                # (in-flight batch finishing on old weights) — caching it
                # would resurrect stale actions.
                self.invalidations += 1
                return
            self._entries[digest] = (material, result, result.generation)
            self._entries.move_to_end(digest)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "generation": self._generation,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "collisions": self.collisions,
                "invalidations": self.invalidations,
            }
