"""The asyncio inference server and its framed-TCP / JSON clients.

Front doors
-----------
* **Framed TCP** (primary): the PR 6 codec, one ``T_CONTROL`` frame per
  message (see :mod:`repro.serve.protocol`).  Connections are
  pipelined — every request frame becomes its own task, so one
  connection's requests coalesce into batches like independent clients.
* **JSON/HTTP** (thin): a ``ThreadingHTTPServer`` on a daemon thread in
  the :mod:`repro.obs.server` style.  ``POST /infer`` bridges into the
  event loop with ``run_coroutine_threadsafe``; ``GET /metrics`` exposes
  the Prometheus registry; ``POST /-/reload`` hot-swaps the checkpoint.

Request path: LRU cache (pure in-loop CPU, no await) → micro-batcher
(admission control; raises :class:`Overloaded` → 503 reject) → worker
pool on executor threads.  Every blocking call is off-loaded — the event
loop never waits on a socket, a worker pipe, or checkpoint IO (lint rule
RPL019 enforces this).

Hot reload bumps the cache generation *first*, then broadcasts weights:
batches already in flight finish on the old weights, answer with their
old generation tag, and are refused by the cache — a stale action can be
*returned* (honestly labelled) but never *replayed*.

:class:`ServeClient` is the synchronous client; it folds the server's
503 ``retry_after`` hint into the PR 1-style ``max_retries`` /
``retry_backoff`` schedule the distributed trainer already uses.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import numpy as np

from ..distributed.transport.framing import (
    FrameAssembler,
    FrameError,
    T_CONTROL,
)
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.server import PROMETHEUS_CONTENT_TYPE
from .batcher import MicroBatcher
from .cache import ActionCache
from .engine import load_network_state
from .protocol import (
    InferRequest,
    InferResult,
    Overloaded,
    RequestError,
    decode_message,
    encode_error,
    encode_infer,
    encode_info,
    encode_reject,
    encode_result,
    encode_served,
    request_from_json,
    result_from_payload,
    result_to_json,
    K_ERROR,
    K_INFER,
    K_INFO,
    K_REJECT,
    K_RESULT,
    K_SERVED,
)

_LOG = get_logger(__name__)

__all__ = ["InferenceServer", "ServeClient"]

_BATCH_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)


class InferenceServer:
    """Serve one checkpoint's policy over framed TCP + JSON/HTTP.

    Parameters
    ----------
    pool:
        An :class:`~repro.serve.pool.InlinePool` or
        :class:`~repro.serve.pool.ServeWorkerPool` holding the weights.
    http_port:
        ``None`` disables the HTTP front door; ``0`` auto-assigns.
    """

    def __init__(
        self,
        pool,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: Optional[int] = 0,
        http_host: str = "127.0.0.1",
        max_batch: int = 8,
        max_delay: float = 0.002,
        max_pending: int = 64,
        cache_size: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._pool = pool
        self._host = host
        self._port_requested = int(port)
        self._http_requested = None if http_port is None else (http_host, int(http_port))
        self.generation = int(pool.generation)
        self.cache = ActionCache(capacity=cache_size)
        self.cache.bump_generation(self.generation)
        # One dispatch thread per pool worker saturates the pool; inline
        # mode shares its single thread with reloads so weight swaps
        # serialize behind in-flight batches (the engine is not
        # thread-safe), while pooled mode reloads on a separate thread
        # and relies on worker leasing for the same ordering.
        self._dispatch_executor = ThreadPoolExecutor(
            max_workers=max(pool.size, 1),
            thread_name_prefix="repro-serve-dispatch",
        )
        if pool.size == 0:
            self._control_executor = self._dispatch_executor
        else:
            self._control_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-control"
            )
        self._batcher = MicroBatcher(
            pool.infer,
            self._dispatch_executor,
            max_batch=max_batch,
            max_delay=max_delay,
            max_pending=max_pending,
            on_batch=self._observe_batch,
        )
        self._geometry: Optional[Tuple[Tuple[int, ...], int]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conn_tasks: set = set()
        self._reload_lock = asyncio.Lock()

        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._m_requests = registry.counter(
            "repro_serve_requests_total",
            "Served inference requests by outcome",
            labelnames=("outcome",),
        )
        self._m_latency = registry.histogram(
            "repro_serve_latency_seconds",
            "Request latency from admission to answer",
        )
        self._m_batch = registry.histogram(
            "repro_serve_batch_rows",
            "Rows per dispatched forward batch",
            buckets=_BATCH_BUCKETS,
        )
        self._m_cache = registry.counter(
            "repro_serve_cache_total",
            "Action-cache lookups by result",
            labelnames=("event",),
        )
        self._m_generation = registry.gauge(
            "repro_serve_generation",
            "Checkpoint generation currently being served",
        )
        self._m_depth = registry.gauge(
            "repro_serve_queue_depth",
            "Requests admitted but not yet answered",
        )
        self._m_generation.set(self.generation)

    def _observe_batch(self, size: int) -> None:
        self._m_batch.observe(float(size))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "InferenceServer":
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_conn, self._host, self._port_requested
        )
        if self._http_requested is not None:
            httpd = ThreadingHTTPServer(self._http_requested, _HttpHandler)
            httpd.daemon_threads = True
            httpd.serve_server = self  # type: ignore[attr-defined]
            thread = threading.Thread(
                target=httpd.serve_forever, name="repro-serve-http", daemon=True
            )
            thread.start()
            self._httpd = httpd
            self._http_thread = thread
        _LOG.info(
            "serving on tcp://%s:%d%s (generation %d, %s)",
            self._host,
            self.port,
            f" + http://{self.http_address}" if self._httpd else "",
            self.generation,
            f"{self._pool.size} workers" if self._pool.size else "inline",
        )
        return self

    @property
    def port(self) -> int:
        if self._server is None:
            return self._port_requested
        return self._server.sockets[0].getsockname()[1]

    @property
    def http_address(self) -> Optional[str]:
        if self._httpd is None:
            return None
        host, port = self._httpd.server_address[:2]
        return f"{host}:{port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: drain accepted work, then release everything."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self._batcher.close()
        httpd, thread = self._httpd, self._http_thread
        self._httpd = None
        self._http_thread = None
        if httpd is not None:
            # shutdown() blocks until the serve loop exits: off-loop.
            await asyncio.get_running_loop().run_in_executor(
                None, httpd.shutdown
            )
            httpd.server_close()
        if thread is not None:
            # join() can wait the full timeout for a wedged handler
            # thread: another loop-blocker to keep on an executor.
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: thread.join(timeout=5.0)
            )
        await asyncio.get_running_loop().run_in_executor(
            None, self._pool.shutdown
        )
        self._dispatch_executor.shutdown(wait=False)
        if self._control_executor is not self._dispatch_executor:
            self._control_executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _check_geometry(self, request: InferRequest) -> None:
        """Reject shape strays before they poison a coalesced batch."""
        if self._geometry is None:
            return
        shape, workers = self._geometry
        if request.state.shape != shape or request.move_mask.shape[0] != workers:
            raise RequestError(
                f"request geometry (state {request.state.shape}, "
                f"{request.move_mask.shape[0]} workers) does not match the "
                f"served policy (state {shape}, {workers} workers)"
            )

    async def answer(self, request: InferRequest) -> InferResult:
        """Cache → batcher → pool; raises Overloaded / RequestError."""
        start = time.monotonic()
        self._check_geometry(request)
        cached = self.cache.get(request)
        if cached is not None:
            self._m_cache.labels(event="hit").inc()
            self._m_requests.labels(outcome="cached").inc()
            self._m_latency.observe(time.monotonic() - start)
            return cached
        self._m_cache.labels(event="miss").inc()
        try:
            result = await self._batcher.submit(request)
        except Overloaded:
            self._m_requests.labels(outcome="rejected").inc()
            raise
        finally:
            self._m_depth.set(self._batcher.depth)
        if self._geometry is None:
            self._geometry = (request.state.shape, request.move_mask.shape[0])
        self.cache.put(request, result)
        self._m_requests.labels(outcome="ok").inc()
        self._m_latency.observe(time.monotonic() - start)
        return result

    async def reload_checkpoint(self, path: str) -> int:
        """Hot-swap to the checkpoint at ``path``; returns the new generation."""
        loop = asyncio.get_running_loop()
        state = await loop.run_in_executor(
            self._control_executor, load_network_state, path
        )
        generation = await self.reload_state(state)
        _LOG.info("hot-reloaded %s as generation %d", path, generation)
        return generation

    async def reload_state(self, state: Dict[str, np.ndarray]) -> int:
        """Hot-swap to an in-memory network state dict (trainer push path)."""
        loop = asyncio.get_running_loop()
        async with self._reload_lock:
            generation = self.generation + 1
            # Invalidate first: old-generation results still in flight
            # must not repopulate the cache.
            self.cache.bump_generation(generation)
            await loop.run_in_executor(
                self._control_executor, self._pool.reload, state, generation
            )
            self.generation = generation
            self._m_generation.set(generation)
            return generation

    def info(self) -> Dict:
        return {
            "generation": self.generation,
            "workers": self._pool.size,
            "max_batch": self._batcher.max_batch,
            "max_delay": self._batcher.max_delay,
            "max_pending": self._batcher.max_pending,
            "cache": self.cache.stats(),
            "batcher": self._batcher.stats(),
        }

    # ------------------------------------------------------------------
    # Framed-TCP front door
    # ------------------------------------------------------------------
    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        assembler = FrameAssembler()
        write_lock = asyncio.Lock()
        frame_tasks: set = set()
        try:
            while True:
                data = await reader.read(1 << 16)
                if not data:
                    break
                try:
                    assembler.feed(data)
                    frames = list(assembler.iter_frames())
                except FrameError as error:
                    _LOG.warning("desynced serve connection: %s", error)
                    break
                for ftype, __, payload in frames:
                    if ftype != T_CONTROL:
                        continue
                    frame_task = asyncio.get_running_loop().create_task(
                        self._handle_frame(payload, writer, write_lock)
                    )
                    frame_tasks.add(frame_task)
                    frame_task.add_done_callback(frame_tasks.discard)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            if frame_tasks:
                await asyncio.gather(*frame_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass
            self._conn_tasks.discard(task)

    async def _handle_frame(
        self,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        seq = -1
        try:
            kind, seq, message = decode_message(payload)
            if kind == K_INFER:
                result = await self.answer(message)
                reply = encode_result(result, seq)
            elif kind == K_INFO:
                reply = encode_served(seq, self.info())
            else:
                reply = encode_error(seq, f"unexpected message kind {kind!r}")
        except Overloaded as error:
            reply = encode_reject(seq, error.queue_depth, error.retry_after)
        except RequestError as error:
            reply = encode_error(seq, str(error))
        except Exception as error:
            _LOG.warning("serve request failed", exc_info=True)
            self._m_requests.labels(outcome="error").inc()
            reply = encode_error(seq, f"internal error: {error}")
        async with write_lock:
            try:
                writer.write(reply)
                await writer.drain()
            except (ConnectionResetError, OSError):
                pass


class _HttpHandler(BaseHTTPRequestHandler):
    """The JSON front door (runs on HTTP server threads, not the loop)."""

    server_version = "repro-serve/1"

    def _send(self, status: int, content_type: str, body: str,
              headers: Optional[Dict[str, str]] = None) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(
        self, status: int, obj, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self._send(status, "application/json", json.dumps(obj), headers)

    @property
    def _serve(self) -> InferenceServer:
        return self.server.serve_server  # type: ignore[attr-defined]

    def _run(self, coroutine, timeout: float = 60.0):
        """Bridge a coroutine into the event loop from this thread."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self._serve._loop)
        return future.result(timeout=timeout)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send(
                200,
                PROMETHEUS_CONTENT_TYPE,
                self._serve._registry.render_prometheus(),
            )
        elif path == "/healthz":
            self._send_json(
                200, {"status": "ok", "generation": self._serve.generation}
            )
        elif path == "/info":
            self._send_json(200, self._serve.info())
        else:
            self._send_json(404, {"error": "not found"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, OSError) as error:
            self._send_json(400, {"error": f"bad request body: {error}"})
            return
        if path == "/infer":
            try:
                request = request_from_json(body)
                result = self._run(self._serve.answer(request))
            except RequestError as error:
                self._send_json(400, {"error": str(error)})
            except Overloaded as error:
                self._send_json(
                    503,
                    {
                        "error": "overloaded",
                        "queue_depth": error.queue_depth,
                        "retry_after": error.retry_after,
                    },
                    headers={"Retry-After": f"{error.retry_after:.3f}"},
                )
            else:
                self._send_json(200, result_to_json(result))
        elif path == "/-/reload":
            try:
                checkpoint = body["checkpoint"]
                generation = self._run(
                    self._serve.reload_checkpoint(checkpoint), timeout=300.0
                )
            except KeyError:
                self._send_json(400, {"error": "body must carry 'checkpoint'"})
            except Exception as error:
                self._send_json(500, {"error": str(error)})
            else:
                self._send_json(200, {"generation": generation})
        else:
            self._send_json(404, {"error": "not found"})

    def log_message(self, format: str, *args) -> None:
        """Silence the default stderr access log (CLI output stays clean)."""
        return None


class ServeClient:
    """Synchronous framed-TCP client with PR 1-style retry bookkeeping.

    ``timeout`` bounds each socket wait (the trainer's
    ``employee_timeout`` analogue); 503 rejects are retried up to
    ``max_retries`` times, sleeping the larger of the server's
    ``retry_after`` hint and the exponential ``retry_backoff * 2**n``
    schedule the chief uses for employee round-trips.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        max_retries: int = 3,
        retry_backoff: float = 0.05,
    ):
        import socket as _socket

        self._address = (host, int(port))
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self._sock = _socket.create_connection(self._address, timeout=self.timeout)
        self._assembler = FrameAssembler()
        self._seq = 0
        self.retries = 0

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _round_trip(self, frame: bytes, seq: int):
        # The bytes on this socket ARE framed (encode_frame/CRC via the
        # PR 6 codec); the client is deliberately transport-free so it
        # can live in notebooks without chief/worker machinery.
        self._sock.sendall(frame)  # reprolint: disable=RPL012
        while True:
            for ftype, __, payload in self._assembler.iter_frames():
                if ftype != T_CONTROL:
                    continue
                kind, reply_seq, body = decode_message(payload)
                if reply_seq != seq:
                    continue  # a pipelined sibling's answer
                return kind, body
            data = self._sock.recv(1 << 16)  # reprolint: disable=RPL012
            if not data:
                raise ConnectionError("serve connection closed mid-request")
            self._assembler.feed(data)

    def infer(
        self,
        state: np.ndarray,
        move_mask: np.ndarray,
        worker_features: np.ndarray,
        greedy: bool = True,
        seed: Optional[int] = None,
    ) -> InferResult:
        request = InferRequest(
            state=np.ascontiguousarray(state, dtype=np.float64),
            move_mask=np.ascontiguousarray(move_mask, dtype=bool),
            worker_features=np.ascontiguousarray(worker_features, dtype=np.float64),
            greedy=greedy,
            seed=seed,
        ).validate()
        return self.infer_request(request)

    def infer_request(self, request: InferRequest) -> InferResult:
        last: Optional[Overloaded] = None
        for attempt in range(self.max_retries + 1):
            self._seq += 1
            kind, body = self._round_trip(
                encode_infer(request, self._seq), self._seq
            )
            if kind == K_RESULT:
                return result_from_payload(body)
            if kind == K_ERROR:
                raise RequestError(body.get("error", "request refused"))
            if kind == K_REJECT:
                last = Overloaded(
                    body.get("queue_depth", -1), body.get("retry_after", 0.0)
                )
                if attempt < self.max_retries:
                    self.retries += 1
                    time.sleep(
                        max(
                            last.retry_after,
                            self.retry_backoff * (2 ** attempt),
                        )
                    )
                continue
            raise ConnectionError(f"unexpected reply kind {kind!r}")
        raise last if last is not None else ConnectionError("no reply")

    def info(self) -> Dict:
        self._seq += 1
        kind, body = self._round_trip(encode_info(self._seq), self._seq)
        if kind != K_SERVED:
            raise ConnectionError(f"unexpected info reply kind {kind!r}")
        return body
