"""Multi-process inference workers with zero-copy weight broadcast.

Reuses the PR 5 shared-memory machinery: worker processes are
``fork``-started (the initial weights ride the fork for free) and hot
reloads broadcast new weights through one :class:`TensorSlab` — the
parent writes every parameter array once, stamps the slab header with
the new checkpoint generation, and each worker copies the arrays into
its network in place.  N workers see one write, not N pickled copies.

Reload ordering gives the "in-flight batches finish on the old weights"
guarantee structurally: a worker is leased out of a free queue for the
duration of each batch, and :meth:`ServeWorkerPool.reload` leases **all
N workers and holds them** before sending any reload command — a reload
can only reach a worker *between* batches, never under one, and the
free-queue FIFO can never hand the same (already-reloaded) worker out
twice while a busy one is skipped.  Workers read the slab with
``expected_seq == generation``, so a torn or stale slab raises
:class:`SlabStale` instead of loading garbage weights, and a repeated
reload command for a worker's current generation is an idempotent no-op
so a partially-failed reload can simply be retried.

:class:`InlinePool` is the degenerate single-process variant (no slab,
no forks) behind the same interface; the server treats both uniformly
and off-loads their blocking calls to executor threads.
"""

from __future__ import annotations

import atexit
import multiprocessing
import queue
import threading
import traceback
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.lockwatch import reset_after_fork as _lockwatch_reset_after_fork
from ..distributed.shm import TensorSlab, slab_name
from ..obs.flight import reset_after_fork as _flight_reset_after_fork
from ..obs.log import get_logger
from ..obs.trace import reset_after_fork as _trace_reset_after_fork
from .engine import PolicyEngine
from .protocol import InferRequest, RequestError

_LOG = get_logger(__name__)

__all__ = ["InlinePool", "ServeWorkerPool", "WorkerCrashed"]

OP_INFER = "infer"
OP_RELOAD = "reload"
OP_PING = "ping"
OP_SHUTDOWN = "shutdown"


class WorkerCrashed(RuntimeError):
    """A pool worker died or misbehaved mid-request."""


class InlinePool:
    """Single-process engine behind the pool interface (workers=0)."""

    def __init__(self, state: Dict[str, np.ndarray], generation: int = 1,
                 use_plans: bool = True):
        self._engine = PolicyEngine(state, generation=generation,
                                    use_plans=use_plans)
        self.size = 0

    @property
    def generation(self) -> int:
        return self._engine.generation

    def infer(self, requests: Sequence[InferRequest]) -> List[object]:
        """Per-row results; bad rows are InferError markers (see engine)."""
        return self._engine.infer_batch(requests)

    def reload(self, state: Dict[str, np.ndarray], generation: int) -> None:
        self._engine.reload(state, generation)

    def info(self) -> Dict[str, int]:
        return self._engine.info()

    def stats(self) -> Dict[str, int]:
        return self._engine.stats()

    def ping(self) -> int:
        return 0

    def slab_names(self) -> List[str]:
        return []

    def pids(self) -> List[int]:
        return []

    def shutdown(self, timeout: float = 5.0) -> None:
        pass


@dataclass
class _WorkerSpec:
    """Everything a forked serve worker needs, passed explicitly (RPL011)."""

    index: int
    state: Dict[str, np.ndarray]
    generation: int
    use_plans: bool
    slab: str
    shapes: Tuple[Tuple[int, ...], ...]
    keys: Tuple[str, ...]


def _serve_worker_main(spec: _WorkerSpec, conn) -> None:
    """Forked worker entrypoint: answer pipe commands until shutdown."""
    _trace_reset_after_fork()
    _lockwatch_reset_after_fork()
    _flight_reset_after_fork()
    engine = PolicyEngine(
        spec.state, generation=spec.generation, use_plans=spec.use_plans
    )
    slab = TensorSlab.attach(spec.slab, spec.shapes)
    try:
        while True:
            op, seq, payload = conn.recv()
            if op == OP_SHUTDOWN:
                conn.send((seq, "ok", None))
                return
            try:
                if op == OP_INFER:
                    results = engine.infer_batch(payload)
                    conn.send((seq, "result", results))
                elif op == OP_RELOAD:
                    generation = int(payload)
                    if generation != engine.generation:
                        arrays = slab.read(expected_seq=generation, copy=False)
                        engine.reload(dict(zip(spec.keys, arrays)), generation)
                    # generation == current: idempotent no-op so the parent
                    # can retry a reload that failed on some other worker.
                    conn.send((seq, "ok", engine.generation))
                elif op == OP_PING:
                    conn.send((seq, "ok", engine.stats()))
                else:
                    conn.send((seq, "error", f"unknown op {op!r}"))
            except RequestError as error:
                conn.send((seq, "request_error", str(error)))
            except Exception:
                conn.send((seq, "error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        slab.close()


class _Handle:
    """Parent-side bookkeeping for one worker."""

    __slots__ = ("index", "process", "conn", "seq")

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.seq = 0

    def call(self, op: str, payload) -> object:
        """One synchronous command round-trip (executor threads only)."""
        self.seq += 1
        seq = self.seq
        try:
            self.conn.send((op, seq, payload))
            reply_seq, status, reply = self.conn.recv()
        except (EOFError, OSError) as error:
            raise WorkerCrashed(
                f"serve worker {self.index} (pid {self.process.pid}) "
                f"died mid-{op}: {error}"
            )
        if reply_seq != seq:
            raise WorkerCrashed(
                f"serve worker {self.index} answered seq {reply_seq} "
                f"to command seq {seq}"
            )
        if status == "request_error":
            raise RequestError(str(reply))
        if status != "ok" and status != "result":
            raise WorkerCrashed(f"serve worker {self.index} failed {op}: {reply}")
        return reply


class ServeWorkerPool:
    """Fork-started inference workers leased per batch from a free queue."""

    def __init__(
        self,
        state: Dict[str, np.ndarray],
        num_workers: int,
        generation: int = 1,
        use_plans: bool = True,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        ctx = multiprocessing.get_context("fork")
        self.size = int(num_workers)
        self.generation = int(generation)
        self._closed = False
        keys = tuple(sorted(state))
        arrays = [np.ascontiguousarray(state[k], dtype=np.float64) for k in keys]
        self._keys = keys
        shapes = tuple(a.shape for a in arrays)
        self._slab = TensorSlab.create(slab_name(0, "serve"), shapes)
        spec_state = dict(zip(keys, arrays))
        self._workers: List[_Handle] = []
        self._free: "queue.Queue[_Handle]" = queue.Queue()
        # Pool-wide sweeps (reload/stats/ping) hold every handle at once;
        # the lock keeps two sweeps from deadlocking over partial handle
        # sets, and the gate pauses new infer leases so a sweep can't be
        # starved by hot traffic re-snatching each released handle
        # (queue.Queue does not reserve items for its longest waiter).
        self._sweep_lock = threading.Lock()
        self._gate = threading.Event()
        self._gate.set()
        for index in range(num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            spec = _WorkerSpec(
                index=index,
                state=spec_state,
                generation=self.generation,
                use_plans=use_plans,
                slab=self._slab.name,
                shapes=shapes,
                keys=keys,
            )
            process = ctx.Process(
                target=_serve_worker_main,
                args=(spec, child_conn),
                name=f"repro-serve-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            handle = _Handle(index, process, parent_conn)
            self._workers.append(handle)
            self._free.put(handle)
        atexit.register(self._atexit_shutdown)

    # ------------------------------------------------------------------
    def _lease(self) -> _Handle:
        if self._closed:
            raise WorkerCrashed("serve worker pool is shut down")
        self._gate.wait()
        return self._free.get()

    def _release(self, handle: _Handle) -> None:
        self._free.put(handle)

    def _lease_all(self) -> List[_Handle]:
        """Lease every worker and hold them (pool-wide sweeps).

        Each handle sits in the free queue at most once, so draining it
        ``size`` times while *holding* the leases yields each worker
        exactly once — releasing between leases would let concurrent
        infer traffic put a just-polled worker back in front of a busy
        one, double-visiting the former and skipping the latter.

        Closing the gate first bounds the sweep's wait to the in-flight
        batches: leases already past the gate finish and release, new
        ones block until :meth:`_release_all` reopens it.  Pair every
        call with ``_release_all`` (it also releases ``_sweep_lock``).
        """
        self._sweep_lock.acquire()
        self._gate.clear()
        held: List[_Handle] = []
        try:
            if self._closed:
                raise WorkerCrashed("serve worker pool is shut down")
            for __ in range(self.size):
                held.append(self._free.get())
        except BaseException:
            self._release_all(held)
            raise
        return held

    def _release_all(self, held: List[_Handle]) -> None:
        for handle in held:
            self._release(handle)
        self._gate.set()
        self._sweep_lock.release()

    def infer(self, requests: Sequence[InferRequest]) -> List[object]:
        """Run one batch on the next free worker (blocks; executor threads)."""
        handle = self._lease()
        try:
            return handle.call(OP_INFER, list(requests))
        finally:
            self._release(handle)

    def reload(self, state: Dict[str, np.ndarray], generation: int) -> None:
        """Broadcast new weights: one slab write, then a command per worker.

        All workers are leased (and held) before the first reload
        command goes out: leasing serializes the reload behind each
        worker's in-flight batch, and holding guarantees every worker is
        visited exactly once — concurrent infer traffic can otherwise
        recycle a just-reloaded worker through the free queue while a
        busy one is never reloaded.  Batches dispatched before the sweep
        finish on the old weights and say so via their generation tag.
        If a worker fails mid-sweep the pool generation stays put and
        the retry is safe: already-reloaded workers treat the repeated
        generation as a no-op.
        """
        generation = int(generation)
        if generation <= self.generation:
            raise ValueError(
                f"generation must advance ({generation} <= {self.generation})"
            )
        arrays = [
            np.ascontiguousarray(state[k], dtype=np.float64) for k in self._keys
        ]
        self._slab.write(arrays, seq=generation)
        held = self._lease_all()
        try:
            for handle in held:
                handle.call(OP_RELOAD, generation)
            self.generation = generation
        finally:
            self._release_all(held)

    def info(self) -> Dict[str, int]:
        handle = self._lease()
        try:
            handle.call(OP_PING, None)
        finally:
            self._release(handle)
        return {"generation": self.generation, "workers": self.size}

    def stats(self) -> Dict[str, int]:
        """Summed engine stats across workers (blocks; executor threads)."""
        totals: Dict[str, int] = {}
        held = self._lease_all()
        try:
            for handle in held:
                stats = handle.call(OP_PING, None)
                for key, value in stats.items():
                    totals[key] = totals.get(key, 0) + int(value)
        finally:
            self._release_all(held)
        return totals

    def ping(self) -> int:
        """Round-trip every worker; returns the number alive."""
        alive = 0
        held = self._lease_all()
        try:
            for handle in held:
                try:
                    handle.call(OP_PING, None)
                    alive += 1
                except WorkerCrashed:
                    pass
        finally:
            self._release_all(held)
        return alive

    def slab_names(self) -> List[str]:
        return [self._slab.name]

    def pids(self) -> List[int]:
        return [h.process.pid for h in self._workers if h.process.pid]

    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker and unlink the slab (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self._atexit_shutdown)
        for handle in self._workers:
            try:
                handle.conn.send((OP_SHUTDOWN, handle.seq + 1, None))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=timeout)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._slab.unlink()

    def _atexit_shutdown(self) -> None:
        try:
            self.shutdown(timeout=1.0)
        except Exception:
            _LOG.warning("serve pool atexit shutdown failed", exc_info=True)

    def __enter__(self) -> "ServeWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
