"""Wire protocol for the inference service.

Requests and responses ride the PR 6 framed-TCP codec unchanged: every
message is one ``T_CONTROL`` frame whose pickled payload is the usual
``(kind, seq, payload)`` control tuple.  ``seq`` is the client-chosen
request id, echoed verbatim on the response so a pipelining client can
match answers to questions regardless of completion order (coalesced
batches finish together; cache hits finish early).

Message kinds::

    infer   client -> server   {state, move_mask, worker_features, greedy, seed}
    result  server -> client   {moves, charges, log_prob, value,
                                generation, cached, batch_size}
    reject  server -> client   {code: 503, error, queue_depth, retry_after}
    error   server -> client   {code: 400, error}
    info    client -> server   {}
    served  server -> client   {generation, workers, max_batch, ...}

The JSON front door (:mod:`repro.serve.server`) converts the same
request/result shapes to and from nested lists; Python's ``repr``-based
float serialization round-trips IEEE-754 doubles exactly, so the bitwise
response contract survives the JSON hop too.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..distributed.transport.framing import (
    T_CONTROL,
    decode_control,
    encode_control,
    encode_frame,
)
from ..env.actions import NUM_MOVES

__all__ = [
    "InferError",
    "InferRequest",
    "InferResult",
    "Overloaded",
    "RequestError",
    "decode_message",
    "encode_error",
    "encode_info",
    "encode_infer",
    "encode_reject",
    "encode_result",
    "encode_served",
    "request_digest",
    "request_from_json",
    "request_to_json",
    "result_from_payload",
    "result_to_json",
]

K_INFER = "infer"
K_RESULT = "result"
K_REJECT = "reject"
K_ERROR = "error"
K_INFO = "info"
K_SERVED = "served"


class RequestError(ValueError):
    """A structurally invalid inference request (answered with 400)."""


class Overloaded(RuntimeError):
    """Admission control rejected the request (answered with 503)."""

    def __init__(self, queue_depth: int, retry_after: float):
        super().__init__(
            f"server overloaded ({queue_depth} request(s) pending); "
            f"retry after {retry_after:.3f}s"
        )
        self.queue_depth = queue_depth
        self.retry_after = retry_after


@dataclass(frozen=True)
class InferRequest:
    """One fleet state asking for one joint action.

    ``greedy`` requests the argmax action; otherwise ``seed`` (required)
    seeds a fresh ``np.random.default_rng`` so the sampled action is
    bitwise-reproducible offline with the same seed.
    """

    state: np.ndarray  # (C, G, G) float64
    move_mask: np.ndarray  # (W, NUM_MOVES) bool
    worker_features: np.ndarray  # (W, 3) float64
    greedy: bool = True
    seed: Optional[int] = None

    def validate(self) -> "InferRequest":
        if self.state.ndim != 3 or self.state.shape[1] != self.state.shape[2]:
            raise RequestError(
                f"state must be (C, G, G), got shape {self.state.shape}"
            )
        workers = self.move_mask.shape[0] if self.move_mask.ndim == 2 else -1
        if self.move_mask.shape != (workers, NUM_MOVES):
            raise RequestError(
                f"move_mask must be (W, {NUM_MOVES}), got {self.move_mask.shape}"
            )
        if self.worker_features.shape != (workers, 3):
            raise RequestError(
                f"worker_features must be ({workers}, 3), "
                f"got {self.worker_features.shape}"
            )
        if not self.greedy and self.seed is None:
            raise RequestError("sampled requests must carry a seed")
        if self.seed is not None and self.seed < 0:
            # np.random.default_rng refuses negative seeds; catch it here
            # as a 400 instead of a mid-batch crash inside a worker.
            raise RequestError(f"seed must be >= 0, got {self.seed}")
        return self

    def key_material(self) -> Tuple:
        """The full, collision-safe identity of this request."""
        return (
            self.state.shape,
            self.state.tobytes(),
            self.move_mask.tobytes(),
            self.worker_features.tobytes(),
            bool(self.greedy),
            None if self.seed is None else int(self.seed),
        )


@dataclass(frozen=True)
class InferError:
    """Per-row failure marker inside a batch's result list.

    A coalesced batch must not fail wholesale because one co-batched
    request is bad: the engine answers offending rows with this marker
    (picklable, so it survives the worker pipe) and the batcher turns it
    into a :class:`RequestError` on that row's future only — chunk-mates
    still get their results.
    """

    error: str


@dataclass(frozen=True)
class InferResult:
    """The joint action for one request, tagged with its provenance."""

    moves: np.ndarray  # (W,) int64
    charges: np.ndarray  # (W,) int64
    log_prob: float
    value: float
    generation: int  # checkpoint generation that served the forward
    cached: bool = False
    batch_size: int = 1


def _as_request(payload: Dict) -> InferRequest:
    try:
        seed = payload.get("seed")
        return InferRequest(
            state=np.ascontiguousarray(payload["state"], dtype=np.float64),
            move_mask=np.ascontiguousarray(payload["move_mask"], dtype=bool),
            worker_features=np.ascontiguousarray(
                payload["worker_features"], dtype=np.float64
            ),
            greedy=bool(payload.get("greedy", True)),
            seed=None if seed is None else int(seed),
        ).validate()
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, RequestError):
            raise
        raise RequestError(f"malformed infer payload: {error}")


def request_digest(request: InferRequest) -> bytes:
    """SHA-256 digest of the encoded request (the cache key).

    The digest covers the raw array bytes *and* their shapes (two
    different geometries must never collide trivially) plus the
    greedy/seed mode — a sampled request can never hit a greedy entry.
    """
    h = hashlib.sha256(b"repro-serve-v1")
    h.update(repr(request.state.shape).encode())
    h.update(request.state.tobytes())
    h.update(repr(request.move_mask.shape).encode())
    h.update(request.move_mask.tobytes())
    h.update(request.worker_features.tobytes())
    h.update(b"G" if request.greedy else b"S%d" % (request.seed or 0))
    return h.digest()


# ----------------------------------------------------------------------
# Frame encoding (one control frame per message)
# ----------------------------------------------------------------------
def _control_frame(kind: str, seq: int, payload: Dict) -> bytes:
    return encode_frame(T_CONTROL, encode_control(kind, seq, payload))


def encode_infer(request: InferRequest, seq: int) -> bytes:
    return _control_frame(
        K_INFER,
        seq,
        {
            "state": request.state,
            "move_mask": request.move_mask,
            "worker_features": request.worker_features,
            "greedy": request.greedy,
            "seed": request.seed,
        },
    )


def encode_result(result: InferResult, seq: int) -> bytes:
    return _control_frame(
        K_RESULT,
        seq,
        {
            "moves": result.moves,
            "charges": result.charges,
            "log_prob": result.log_prob,
            "value": result.value,
            "generation": result.generation,
            "cached": result.cached,
            "batch_size": result.batch_size,
        },
    )


def encode_reject(seq: int, queue_depth: int, retry_after: float) -> bytes:
    return _control_frame(
        K_REJECT,
        seq,
        {
            "code": 503,
            "error": "overloaded",
            "queue_depth": int(queue_depth),
            "retry_after": float(retry_after),
        },
    )


def encode_error(seq: int, message: str) -> bytes:
    return _control_frame(K_ERROR, seq, {"code": 400, "error": str(message)})


def encode_info(seq: int) -> bytes:
    return _control_frame(K_INFO, seq, {})


def encode_served(seq: int, info: Dict) -> bytes:
    return _control_frame(K_SERVED, seq, dict(info))


def decode_message(frame_payload: bytes) -> Tuple[str, int, object]:
    """Decode one control frame payload into ``(kind, seq, payload)``.

    ``infer`` payloads come back as a validated :class:`InferRequest`;
    every other kind keeps its plain dict payload.
    """
    kind, seq, payload = decode_control(frame_payload)
    if kind == K_INFER:
        return kind, seq, _as_request(payload)
    return kind, seq, payload


def result_from_payload(payload: Dict) -> InferResult:
    return InferResult(
        moves=np.asarray(payload["moves"], dtype=np.int64),
        charges=np.asarray(payload["charges"], dtype=np.int64),
        log_prob=float(payload["log_prob"]),
        value=float(payload["value"]),
        generation=int(payload["generation"]),
        cached=bool(payload.get("cached", False)),
        batch_size=int(payload.get("batch_size", 1)),
    )


# ----------------------------------------------------------------------
# JSON front-door conversions
# ----------------------------------------------------------------------
def request_from_json(body: Dict) -> InferRequest:
    """Build a request from a decoded JSON body (nested lists)."""
    if not isinstance(body, dict):
        raise RequestError("JSON body must be an object")
    return _as_request(body)


def request_to_json(request: InferRequest) -> Dict:
    return {
        "state": request.state.tolist(),
        "move_mask": request.move_mask.tolist(),
        "worker_features": request.worker_features.tolist(),
        "greedy": request.greedy,
        "seed": request.seed,
    }


def result_to_json(result: InferResult) -> Dict:
    return {
        "moves": result.moves.tolist(),
        "charges": result.charges.tolist(),
        "log_prob": result.log_prob,
        "value": result.value,
        "generation": result.generation,
        "cached": result.cached,
        "batch_size": result.batch_size,
    }
