"""When and where to charge: the energy trade-off (Section III's challenge).

"Replenishing battery will increase the future chance of task completion,
but it takes time that workers cannot collect data at the current time
slots."  This example makes the trade-off sharp: a tight energy budget on
a long horizon, so finishing the task *requires* recharging, while every
charging slot is a slot not spent collecting.

It trains DRL-CEWS, then contrasts three behaviours on the same map:

* the trained policy (learned charge decisions),
* a never-charging Greedy (runs dry),
* an always-eager-charging Greedy (wastes slots at the pump).

Run:
    python examples/charging_tradeoff.py [--episodes N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    CrowdsensingEnv,
    GreedyAgent,
    PPOConfig,
    TrainConfig,
    build_trainer,
    run_episode,
)
from repro.env import ScenarioConfig


def charging_stats(env: CrowdsensingEnv) -> tuple[float, float]:
    """(total energy charged, final mean battery fraction)."""
    charged = float(env.workers.charged_total.sum())
    battery = float((env.workers.energy / env.workers.capacity).mean())
    return charged, battery


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=80)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    # Budget 6 on an 80-slot horizon: without recharging a worker can pay
    # for at most ~6 units of collection; the map holds ~30.
    config = ScenarioConfig(
        size=10.0,
        grid=10,
        num_workers=2,
        num_pois=60,
        num_stations=2,
        horizon=80,
        energy_budget=6.0,
        charge_per_slot=3.0,
        corner_room=False,
        seed=args.seed,
    )
    total_data = None

    trainer = build_trainer(
        "cews",
        config,
        train=TrainConfig(num_employees=4, episodes=args.episodes, k_updates=4,
                          seed=args.seed),
        ppo=PPOConfig(batch_size=80, epochs=1, learning_rate=1e-3),
    )
    print(f"Training DRL-CEWS for {args.episodes} episodes "
          f"(budget {config.energy_budget}, horizon {config.horizon}) ...")
    trainer.train()
    trainer.close()
    cews = trainer.global_agent

    rng = np.random.default_rng(args.seed)
    arms = [
        ("DRL-CEWS (learned)", cews, "sparse"),
        ("Greedy, never charge", GreedyAgent(charge_threshold=0.0), "dense"),
        ("Greedy, eager charge", GreedyAgent(charge_threshold=1.0), "dense"),
    ]
    print(f"\n{'policy':22s} {'kappa':>7s} {'rho':>7s} {'charged':>8s} {'battery':>8s}")
    for name, agent, mode in arms:
        env = CrowdsensingEnv(config, reward_mode=mode, scenario=cews.scenario)
        result = run_episode(agent, env, rng, greedy=False)
        if total_data is None:
            total_data = env.pois.total_initial
        charged, battery = charging_stats(env)
        print(f"{name:22s} {result.metrics.kappa:7.3f} {result.metrics.rho:7.3f} "
              f"{charged:8.1f} {battery:8.2f}")

    print(f"\nTotal data on map: {total_data:.1f} units; "
          f"collecting it all costs ~{total_data:.0f} energy vs "
          f"{config.num_workers * config.energy_budget:.0f} initial fleet budget — "
          "recharging is mandatory.")


if __name__ == "__main__":
    main()
