"""Why the paper chose synchronous training (Section V-A), measured.

Trains DRL-CEWS three ways with equal episode budgets:

1. the paper's synchronous chief–employee architecture,
2. an IMPALA-style asynchronous actor-learner with V-trace correction,
3. the same asynchronous loop with NO correction — actors act on
   parameters up to several updates stale (policy-lag).

The uncorrected arm's value loss degrades with lag; V-trace repairs most
of it; the synchronous loop avoids the problem by construction.

Run:
    python examples/async_vs_sync.py [--episodes N] [--lag K]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import PPOConfig, TrainConfig, build_trainer, smoke_config
from repro.distributed import AsyncConfig, build_async_trainer


def tail_mean(series, fraction=0.25):
    tail = max(int(len(series) * fraction), 1)
    return float(np.mean(series[-tail:]))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=60)
    parser.add_argument("--actors", type=int, default=4)
    parser.add_argument("--lag", type=int, default=6,
                        help="episodes between async actor parameter syncs")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = smoke_config(seed=args.seed)
    ppo = PPOConfig(batch_size=40, epochs=1, learning_rate=1e-3)
    print(f"Budget: {args.episodes} episodes, {args.actors} actors/employees, "
          f"async lag {args.lag}\n")

    rows = []

    trainer = build_trainer(
        "cews",
        config,
        train=TrainConfig(num_employees=args.actors, episodes=args.episodes,
                          k_updates=4, seed=args.seed),
        ppo=ppo,
    )
    history = trainer.train()
    trainer.close()
    rows.append(("sync (paper)", tail_mean(history.curve("kappa")),
                 tail_mean(history.curve("value_loss"))))

    for name, correction in (("async + vtrace", "vtrace"),
                             ("async uncorrected", "none")):
        async_trainer = build_async_trainer(
            "cews",
            config,
            async_config=AsyncConfig(
                num_actors=args.actors,
                episodes=args.episodes,
                sync_every=args.lag,
                correction=correction,
                seed=args.seed,
            ),
            ppo=ppo,
        )
        history = async_trainer.train()
        rows.append((name, tail_mean(history.curve("kappa")),
                     tail_mean(history.curve("value_loss"))))

    print(f"{'arm':20s} {'tail kappa':>11s} {'tail value loss':>16s}")
    for name, kappa, value_loss in rows:
        print(f"{name:20s} {kappa:11.3f} {value_loss:16.3f}")


if __name__ == "__main__":
    main()
