"""Heterogeneous fleets: per-worker sensing ranges (Definition 2's g^w).

The paper's worker definition allows each worker its own sensing
capability ("shooting range or facing direction of a camera").  This
example builds a fleet of one wide-angle scout (g = 1.6) and one
narrow-sensor collector (g = 0.5), compares it against a uniform fleet
with the same *total* coverage area, and saves the hand-tuned scenario to
JSON for reuse.

Run:
    python examples/heterogeneous_fleet.py [--episodes N]
"""

from __future__ import annotations

import argparse
import math
import tempfile
from pathlib import Path

import numpy as np

from repro import CrowdsensingEnv, GreedyAgent, evaluate_policy
from repro.env import ScenarioConfig, generate_scenario, load_scenario, save_scenario


def equivalent_uniform_range(ranges) -> float:
    """The single g giving the same total covered area as the mixed fleet."""
    total_area = sum(math.pi * g * g for g in ranges)
    return math.sqrt(total_area / (math.pi * len(ranges)))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=5)
    parser.add_argument("--seed", type=int, default=4)
    args = parser.parse_args()

    mixed_ranges = (1.6, 0.5)
    uniform_range = equivalent_uniform_range(mixed_ranges)
    base = dict(
        size=10.0,
        grid=10,
        num_workers=2,
        num_pois=70,
        num_stations=2,
        horizon=50,
        energy_budget=10.0,
        seed=args.seed,
    )
    fleets = {
        f"mixed g={mixed_ranges}": ScenarioConfig(
            worker_sensing_ranges=mixed_ranges, **base
        ),
        f"uniform g={uniform_range:.2f}": ScenarioConfig(
            sensing_range=uniform_range, **base
        ),
    }

    rng = np.random.default_rng(args.seed)
    print(f"{'fleet':24s} {'kappa':>7s} {'xi':>7s} {'rho':>7s}")
    for name, config in fleets.items():
        env = CrowdsensingEnv(config, reward_mode="dense")
        metrics = evaluate_policy(
            GreedyAgent(), env, rng, episodes=args.episodes
        )
        print(f"{name:24s} {metrics.kappa:7.3f} {metrics.xi:7.3f} {metrics.rho:7.3f}")

    # Persist the mixed-fleet world for later runs / hand editing.
    mixed_config = fleets[f"mixed g={mixed_ranges}"]
    scenario = generate_scenario(mixed_config)
    path = Path(tempfile.gettempdir()) / "mixed_fleet_scenario.json"
    save_scenario(scenario, path)
    reloaded = load_scenario(path)
    assert reloaded.config.worker_sensing_ranges == mixed_ranges
    print(f"\nScenario saved to {path} and reloaded successfully "
          f"(per-worker ranges preserved: {reloaded.config.worker_sensing_ranges}).")


if __name__ == "__main__":
    main()
