"""Post-earthquake rescue: the paper's motivating scenario (Section VII-A).

A crowdsensing space with a *hard-exploration corner room* — a walled
subarea at the bottom-right, reachable only through a narrow passageway,
holding a share of the sensors (audio life detectors behind collapsed
buildings).  Lookahead baselines rarely discover the room; curiosity-driven
exploration does.

This example trains DRL-CEWS on such a map, then reports how much of the
*corner-room data specifically* each method recovered, alongside the
global metrics, and prints the ASCII map with the trained trajectories.

Run:
    python examples/earthquake_rescue.py [--episodes N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    CrowdsensingEnv,
    DnCAgent,
    GreedyAgent,
    PPOConfig,
    TrainConfig,
    build_trainer,
    run_episode,
)
from repro.env import ScenarioConfig, corner_room_bounds
from repro.experiments.visualize import render_trajectories


def corner_room_recovery(env: CrowdsensingEnv) -> float:
    """Fraction of the corner room's initial data that has been collected."""
    row0, row1, col0, col1 = corner_room_bounds(env.config)
    rows, cols = env.space.cell_of(env.pois.positions)
    inside = (rows >= row0) & (rows < row1) & (cols >= col0) & (cols < col1)
    if not np.any(inside):
        return float("nan")
    initial = env.pois.initial_values[inside].sum()
    remaining = env.pois.values[inside].sum()
    return float((initial - remaining) / initial)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=80)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    # A rescue map: pronounced corner room holding 25% of the sensors.
    config = ScenarioConfig(
        size=10.0,
        grid=10,
        num_workers=2,
        num_pois=60,
        num_stations=2,
        horizon=60,
        energy_budget=10.0,
        corner_room=True,
        corner_room_fraction=0.25,
        seed=args.seed,
    )
    print("Post-earthquake rescue map "
          f"({config.corner_room_fraction:.0%} of sensors in the corner room)")

    trainer = build_trainer(
        "cews",
        config,
        train=TrainConfig(num_employees=4, episodes=args.episodes, k_updates=4,
                          seed=args.seed),
        ppo=PPOConfig(batch_size=60, epochs=1, learning_rate=1e-3),
    )
    print(f"Training DRL-CEWS for {args.episodes} episodes ...")
    trainer.train()
    trainer.close()
    cews = trainer.global_agent

    rng = np.random.default_rng(args.seed)
    print(f"\n{'method':10s} {'kappa':>7s} {'rho':>7s} {'corner-room recovery':>22s}")
    results = {}
    for agent, mode in ((cews, "sparse"), (GreedyAgent(), "dense"), (DnCAgent(), "dense")):
        env = CrowdsensingEnv(config, reward_mode=mode, scenario=cews.scenario)
        result = run_episode(agent, env, rng, greedy=False, record_trajectory=True)
        recovery = corner_room_recovery(env)
        results[agent.name] = result
        print(f"{agent.name:10s} {result.metrics.kappa:7.3f} "
              f"{result.metrics.rho:7.3f} {recovery:22.3f}")

    print("\nDRL-CEWS trajectories (digits = workers, C = station, # = obstacle):")
    steps = np.stack(results["DRL-CEWS"].trajectory)
    paths = [steps[:, w] for w in range(config.num_workers)]
    print(render_trajectories(cews.scenario, paths))


if __name__ == "__main__":
    main()
