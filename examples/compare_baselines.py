"""Head-to-head: all five methods of Section VII-B on one scenario.

Trains the three learned methods (DRL-CEWS, DPPO, Edics) under identical
budgets and evaluates them together with the scripted D&C and Greedy
baselines, reproducing one column of the Figs. 6-8 comparison.

Run:
    python examples/compare_baselines.py [--episodes N] [--scale smoke|short]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.experiments import (
    evaluate_method,
    get_scale,
    method_display_name,
)
from repro.experiments.training import ALL_METHODS
from repro.utils import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "short"), default="smoke")
    parser.add_argument("--episodes", type=int, default=None,
                        help="override the scale's training episodes")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scale = get_scale(args.scale)
    if args.episodes is not None:
        scale = scale.with_overrides(episodes=args.episodes)
    config = scale.scenario()
    print(f"Scenario: {config.grid}x{config.grid}, P={config.num_pois}, "
          f"W={config.num_workers}, stations={config.num_stations}, "
          f"T={config.horizon}; training {scale.episodes} episodes per method\n")

    rows = []
    for method in ALL_METHODS:
        start = time.perf_counter()
        kwargs = {"episodes": args.episodes} if (
            args.episodes is not None and method in ("cews", "dppo", "edics")
        ) else {}
        metrics = evaluate_method(method, config, scale, seed=args.seed, **kwargs)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                method_display_name(method),
                metrics["kappa"],
                metrics["xi"],
                metrics["rho"],
                f"{elapsed:.1f}s",
            ]
        )
        print(f"  {method_display_name(method):10s} done in {elapsed:.1f}s")

    print()
    print(
        format_table(
            ["method", "kappa", "xi", "rho", "time"],
            rows,
            title="All methods, one scenario (paper order: DRL-CEWS should lead)",
        )
    )


if __name__ == "__main__":
    main()
