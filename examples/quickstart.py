"""Quickstart: train a small DRL-CEWS agent and inspect the result.

Builds the paper's default scenario family at a laptop-friendly size,
trains DRL-CEWS for a few dozen episodes under the synchronous
chief–employee architecture, and prints the learning curve plus the final
κ / ξ / ρ metrics next to the Greedy baseline.

Run:
    python examples/quickstart.py [--episodes N] [--employees M]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    CrowdsensingEnv,
    GreedyAgent,
    PPOConfig,
    TrainConfig,
    build_trainer,
    evaluate_policy,
    smoke_config,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=60)
    parser.add_argument("--employees", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = smoke_config(seed=args.seed)
    print(f"Scenario: {config.grid}x{config.grid} cells, "
          f"{config.num_pois} PoIs, {config.num_workers} workers, "
          f"{config.num_stations} charging stations, T={config.horizon}")

    trainer = build_trainer(
        "cews",
        config,
        train=TrainConfig(
            num_employees=args.employees,
            episodes=args.episodes,
            k_updates=4,
            seed=args.seed,
        ),
        ppo=PPOConfig(batch_size=40, epochs=1, learning_rate=1e-3),
    )
    print(f"\nTraining DRL-CEWS: {args.episodes} episodes, "
          f"{args.employees} employees ...")
    history = trainer.train()
    trainer.close()

    print("\nepisode   kappa     rho    intrinsic")
    step = max(args.episodes // 10, 1)
    for log in history.logs[::step]:
        print(f"{log.episode:7d}  {log.kappa:6.3f}  {log.rho:6.3f}  "
              f"{log.intrinsic_reward:9.2f}")

    agent = trainer.global_agent
    env = CrowdsensingEnv(config, reward_mode="sparse", scenario=agent.scenario)
    rng = np.random.default_rng(args.seed)
    cews_metrics = evaluate_policy(agent, env, rng, episodes=3)

    greedy_env = CrowdsensingEnv(config, reward_mode="dense", scenario=agent.scenario)
    greedy_metrics = evaluate_policy(GreedyAgent(), greedy_env, rng, episodes=3)

    print("\nFinal evaluation (3 episodes each):")
    print(f"{'method':10s} {'kappa':>7s} {'xi':>7s} {'rho':>7s}")
    for name, metrics in (("DRL-CEWS", cews_metrics), ("Greedy", greedy_metrics)):
        print(f"{name:10s} {metrics.kappa:7.3f} {metrics.xi:7.3f} {metrics.rho:7.3f}")
    print(f"\nTotal wall time: {history.total_wall_time:.1f}s")


if __name__ == "__main__":
    main()
