"""Setuptools entry point.

Kept alongside pyproject.toml so `python setup.py develop` works in offline
environments that lack the `wheel` package required by PEP 660 editable
installs (`pip install -e .` falls back to this path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'Curiosity-Driven Energy-Efficient Worker Scheduling "
        "in Vehicular Crowdsourcing' (ICDE 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
