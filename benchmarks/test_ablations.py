"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate (a) the curiosity scale η,
(b) GAE vs Monte-Carlo advantages, and (c) the CNN trunk's layer norm.
"""

import numpy as np
import pytest

from repro.experiments.ablations import (
    ETA_VALUES,
    run_eta_ablation,
    run_layernorm_ablation,
    run_returns_ablation,
)
from repro.utils import format_table


def test_eta_ablation(benchmark, scale, report):
    result = benchmark.pedantic(
        lambda: run_eta_ablation(scale=scale, seed=0), rounds=1, iterations=1
    )
    rows = [
        [eta] + [result["arms"][str(eta)][m] for m in ("kappa", "xi", "rho", "intrinsic")]
        for eta in result["etas"]
    ]
    report(
        "ablation-eta",
        format_table(
            ["eta", "kappa", "xi", "rho", "intrinsic"],
            rows,
            title="Ablation: curiosity scale eta",
        ),
    )
    # η = 0 must yield exactly zero intrinsic reward.
    assert result["arms"]["0.0"]["intrinsic"] == 0.0
    # Larger η yields more intrinsic reward during training.
    assert result["arms"]["1.0"]["intrinsic"] > result["arms"]["0.1"]["intrinsic"]


def test_returns_ablation(benchmark, scale, report):
    result = benchmark.pedantic(
        lambda: run_returns_ablation(scale=scale, seed=0), rounds=1, iterations=1
    )
    rows = [
        [arm] + [values[m] for m in ("kappa", "xi", "rho")]
        for arm, values in result["arms"].items()
    ]
    report(
        "ablation-returns",
        format_table(
            ["advantage estimator", "kappa", "xi", "rho"],
            rows,
            title="Ablation: GAE vs Monte-Carlo advantages",
        ),
    )
    for values in result["arms"].values():
        assert np.isfinite(values["rho"])


def test_layernorm_ablation(benchmark, scale, report):
    result = benchmark.pedantic(
        lambda: run_layernorm_ablation(scale=scale, seed=0), rounds=1, iterations=1
    )
    rows = [
        [arm] + [values[m] for m in ("kappa", "xi", "rho")]
        for arm, values in result["arms"].items()
    ]
    report(
        "ablation-layernorm",
        format_table(
            ["trunk", "kappa", "xi", "rho"],
            rows,
            title="Ablation: layer normalization in the CNN trunk",
        ),
    )
    for values in result["arms"].values():
        assert 0.0 <= values["kappa"] <= 1.0
