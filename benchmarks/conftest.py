"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
scale selected by ``REPRO_SCALE`` (default ``smoke``; see
``repro.experiments.scales``).  The rendered paper-format output is written
to ``results/<experiment>.txt`` and echoed to the terminal, so running

    pytest benchmarks/ --benchmark-only -s

produces the whole evaluation section in one pass.  Training results are
cached under ``results/`` — figures sharing a sweep (6/7/8) train once.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make ``repro`` importable under a plain ``pytest benchmarks
# --benchmark-only`` with no PYTHONPATH set.  conftest.py loads before any
# benchmark module is collected, so this single bootstrap covers every
# module in the directory — individual benchmarks must NOT repeat it.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np
import pytest

from repro.experiments.cache import result_cache_dir
from repro.experiments.scales import current_scale


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    directory = result_cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    return directory


@pytest.fixture
def report(artifact_dir, request):
    """Write an experiment's rendered output to results/ and echo it."""

    def write(experiment_id: str, text: str) -> None:
        path = artifact_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        # Flag the session so sessionfinish knows a paper artifact changed.
        request.config._repro_artifacts_written = True
        print(f"\n{text}\n[written to {path}]")

    return write


def pytest_sessionfinish(session, exitstatus):
    """Stitch all artifacts into results/REPORT.md after a bench run.

    Only runs when the session actually (re)generated a paper artifact
    through the ``report`` fixture.  Microbenchmark-only invocations — e.g.
    ``pytest benchmarks/test_substrate_micro.py --benchmark-json=...`` as
    used by the CI perf job — must leave ``results/REPORT.md`` untouched so
    the working tree stays clean and the emitted JSON is the run's only
    output.
    """
    if not getattr(session.config, "_repro_artifacts_written", False):
        return
    from repro.experiments.export import write_report

    try:
        write_report()
    except OSError:
        pass  # read-only results dir: artifacts still exist individually
