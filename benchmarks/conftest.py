"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
scale selected by ``REPRO_SCALE`` (default ``smoke``; see
``repro.experiments.scales``).  The rendered paper-format output is written
to ``results/<experiment>.txt`` and echoed to the terminal, so running

    pytest benchmarks/ --benchmark-only -s

produces the whole evaluation section in one pass.  Training results are
cached under ``results/`` — figures sharing a sweep (6/7/8) train once.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.experiments.cache import result_cache_dir
from repro.experiments.scales import current_scale


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    directory = result_cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    return directory


@pytest.fixture
def report(artifact_dir):
    """Write an experiment's rendered output to results/ and echo it."""

    def write(experiment_id: str, text: str) -> None:
        path = artifact_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return write


def pytest_sessionfinish(session, exitstatus):
    """Stitch all artifacts into results/REPORT.md after a bench run."""
    from repro.experiments.export import write_report

    try:
        write_report()
    except OSError:
        pass  # read-only results dir: artifacts still exist individually
