"""Fig. 4 — feature selection for the curiosity model.

Paper reference (W=2, P=200): the embedding feature beats the direct
feature (κ +25-27% at episode 2,500), the shared structure converges
faster than independent, and RND underperforms the spatial designs.
"""

import numpy as np

from repro.experiments.fig4 import run_fig4
from repro.experiments.report import print_fig4


def test_fig4_feature_selection(benchmark, scale, report):
    result = benchmark.pedantic(
        lambda: run_fig4(scale=scale, seed=0), rounds=1, iterations=1
    )
    report("fig4", print_fig4(result))

    curves = result["curves"]
    assert set(curves) == {
        "shared embedding",
        "shared direct",
        "independent embedding",
        "independent direct",
        "RND",
        "ICM",  # this repo's extra arm: the full Pathak et al. module
    }
    for variant, series in curves.items():
        assert all(np.isfinite(v) for v in series["kappa"])
    # The spatial variants' intrinsic reward decays as the forward model
    # learns (first quarter vs last quarter of training).
    intrinsic = curves["shared embedding"]["intrinsic"]
    quarter = max(len(intrinsic) // 4, 1)
    assert np.mean(intrinsic[-quarter:]) <= np.mean(intrinsic[:quarter])
