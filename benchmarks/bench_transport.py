#!/usr/bin/env python
"""Transport benchmark: pipe vs loopback-TCP throughput, f64 vs f32 wire.

What the CI ``transport`` job runs (and what produced the committed
``BENCH_6.json``)::

    python benchmarks/bench_transport.py --episodes 2 --json transport.json

Two measurements:

* **Training throughput** per transport — the same seeded smoke-scale
  CEWS run over the process backend (pipes + shared-memory slabs) and
  the socket backend (framed loopback TCP).  Both must land on the same
  final kappa to the bit; the gap in episodes/sec is the honest price of
  framing + CRC + TCP on one host, which multi-host deployments pay for
  the ability to exist at all.
* **Wire bytes** per full parameter round-trip (weight broadcast +
  gradient return) under the float64 and float32 encodings — f32 halves
  the tensor payload; the header/CRC overhead is measured, not assumed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # direct ``python benchmarks/bench_transport.py`` run
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.agents import PPOConfig  # noqa: E402
from repro.distributed import TrainConfig, build_trainer  # noqa: E402
from repro.distributed.transport import encode_frame, encode_tensors  # noqa: E402
from repro.distributed.transport.framing import T_TENSORS  # noqa: E402
from repro.env import smoke_config  # noqa: E402

BACKENDS = ("process", "socket")


def bench_backend(backend: str, episodes: int, seed: int) -> dict:
    trainer = build_trainer(
        "cews",
        smoke_config(seed=5, horizon=10, num_pois=15),
        train=TrainConfig(
            num_employees=3,
            episodes=episodes,
            k_updates=2,
            seed=seed,
            backend=backend,
        ),
        ppo=PPOConfig(batch_size=10, epochs=1),
    )
    start = time.perf_counter()
    history = trainer.train()
    wall = time.perf_counter() - start
    shapes = [tuple(p.data.shape) for p in trainer._param_tensors]
    trainer.close()
    assert len(history.logs) == episodes
    return {
        "wall_s": wall,
        "episodes_per_s": episodes / wall,
        "final_kappa": history.logs[-1].kappa,
        "_shapes": shapes,
    }


def bench_wire(shapes) -> dict:
    """Framed bytes for one weight broadcast + gradient return."""
    import numpy as np

    rng = np.random.default_rng(0)
    arrays = [rng.standard_normal(shape) for shape in shapes]
    out = {}
    for wire_dtype in ("float64", "float32"):
        payload = encode_tensors(arrays, seq=1, wire_dtype=wire_dtype)
        framed = encode_frame(T_TENSORS, payload)
        out[wire_dtype] = {
            "tensor_payload_bytes": len(payload),
            "framed_bytes": len(framed),
            "round_trip_bytes": 2 * len(framed),  # broadcast + gradients
        }
    out["f32_over_f64"] = (
        out["float32"]["framed_bytes"] / out["float64"]["framed_bytes"]
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--episodes", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=None, help="write results here")
    args = parser.parse_args(argv)

    results = {
        "schema": 1,
        "machine": {
            "cores": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "transports": {},
    }
    shapes = None
    for backend in BACKENDS:
        cell = bench_backend(backend, args.episodes, args.seed)
        shapes = cell.pop("_shapes")
        results["transports"][backend] = cell
        print(
            f"{backend:>8s}: {cell['wall_s']:.2f}s "
            f"({cell['episodes_per_s']:.2f} ep/s, kappa {cell['final_kappa']:.6f})"
        )

    kappas = {
        b: cell["final_kappa"] for b, cell in results["transports"].items()
    }
    assert len(set(kappas.values())) == 1, f"transports diverged: {kappas}"
    print("final kappa bitwise-consistent across pipe and loopback TCP")

    results["wire"] = bench_wire(shapes)
    for name in ("float64", "float32"):
        wire = results["wire"][name]
        print(
            f"{name}: {wire['tensor_payload_bytes']} payload bytes, "
            f"{wire['framed_bytes']} framed"
        )
    print(f"f32/f64 framed ratio: {results['wire']['f32_over_f64']:.4f}")

    if args.json is not None:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
