"""Fig. 9 — curiosity-value heat maps over training, DRL-CEWS vs DPPO.

Paper reference: brightness (curiosity) decays as the policy stabilizes;
DRL-CEWS's bright area is larger than DPPO's because the intrinsic reward
drives exploration — including into the corner room.
"""

import numpy as np

from repro.experiments.fig9 import run_fig9
from repro.experiments.report import print_fig9


def visited_fraction(grid) -> float:
    grid = np.asarray(grid)
    return float((grid > 0).mean())


def test_fig9_curiosity_heatmaps(benchmark, scale, report):
    result = benchmark.pedantic(
        lambda: run_fig9(scale=scale, seed=0), rounds=1, iterations=1
    )
    report("fig9", print_fig9(result))

    cews_grids = result["heatmaps"]["DRL-CEWS"]
    dppo_grids = result["heatmaps"]["DPPO"]
    assert len(cews_grids) == len(dppo_grids) == 5

    # Shape: averaged over checkpoints, the curiosity-driven agent covers
    # at least as much of the map as DPPO (weak form for smoke scale).
    cews_coverage = np.mean([visited_fraction(g) for g in cews_grids])
    dppo_coverage = np.mean([visited_fraction(g) for g in dppo_grids])
    assert cews_coverage >= dppo_coverage - 0.1
