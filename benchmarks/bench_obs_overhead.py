#!/usr/bin/env python
"""Observability overhead: the price of the full fleet telemetry stack.

What the CI ``obs-fleet`` job runs (and what produced the committed
``BENCH_8.json``)::

    python benchmarks/bench_obs_overhead.py --json obs.json
    python benchmarks/check_perf_regression.py --obs obs.json

Each layer runs the same seeded 2-employee / 2-episode CEWS smoke run on
the process backend and reports mean wall time over ``--repeats``:

* ``plain``         — federation off, nothing installed (the baseline);
* ``trace``         — chief tracer installed, so workers ship spans
                      piggy-backed on every reply;
* ``federation``    — metric deltas folded under worker/host labels;
* ``server_scrape`` — federation plus a live HTTP endpoint being
                      scraped concurrently for the whole run;
* ``full``          — tracer + federation + server + flight recorder.

The acceptance gate is ``full_over_plain <= 1.5``: fleet telemetry may
cost at most half again the plain run at smoke scale, where fixed
per-reply costs are maximally visible (real runs amortize them over far
more per-episode compute).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # direct ``python benchmarks/bench_obs_overhead.py`` run
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.agents import PPOConfig  # noqa: E402
from repro.distributed import TrainConfig, build_trainer  # noqa: E402
from repro.env import smoke_config  # noqa: E402
from repro.obs import MetricsRegistry, Tracer, set_registry, trace_path_for  # noqa: E402
from repro.obs.flight import FlightRecorder  # noqa: E402
from repro.obs.server import ObsServer  # noqa: E402

LAYERS = ("plain", "trace", "federation", "server_scrape", "full")


def one_run(seed: int, federate: bool) -> float:
    trainer = build_trainer(
        "cews",
        smoke_config(seed=5, horizon=10, num_pois=15),
        train=TrainConfig(
            num_employees=2,
            episodes=2,
            k_updates=1,
            seed=seed,
            backend="process",
            federate=federate,
        ),
        ppo=PPOConfig(batch_size=10, epochs=1),
    )
    start = time.perf_counter()
    trainer.train()
    wall = time.perf_counter() - start
    trainer.close()
    return wall


class _Scraper:
    """Hit /metrics in a tight-ish loop while the run is in flight."""

    def __init__(self, address: str):
        self._url = address + "/metrics"
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self.scrapes = 0

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                with urllib.request.urlopen(self._url, timeout=2.0) as response:
                    response.read()
                self.scrapes += 1
            except OSError:
                pass
            self._stop.wait(0.05)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_layer(layer: str, seed: int, workdir: Path) -> float:
    """One timed run with exactly this layer's instrumentation installed."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        if layer == "plain":
            return one_run(seed, federate=False)
        if layer == "trace":
            with Tracer(trace_path_for(str(workdir / "trace"))):
                return one_run(seed, federate=False)
        if layer == "federation":
            return one_run(seed, federate=True)
        if layer == "server_scrape":
            with ObsServer(port=0, registry=registry) as server:
                with _Scraper(server.address):
                    return one_run(seed, federate=True)
        if layer == "full":
            recorder = FlightRecorder(directory=str(workdir / "flight")).install()
            try:
                with Tracer(trace_path_for(str(workdir / "full"))):
                    with ObsServer(port=0, registry=registry) as server:
                        with _Scraper(server.address):
                            return one_run(seed, federate=True)
            finally:
                recorder.uninstall()
        raise ValueError(f"unknown layer {layer!r}")
    finally:
        set_registry(previous)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=None, help="write results here")
    args = parser.parse_args(argv)

    layers = {}
    for layer in LAYERS:
        walls = []
        for repeat in range(args.repeats):
            with tempfile.TemporaryDirectory() as tmp:
                walls.append(run_layer(layer, args.seed, Path(tmp)))
        mean = sum(walls) / len(walls)
        layers[layer] = {"mean_s": mean, "runs_s": walls}
        print(f"{layer:>13s}: {mean * 1e3:8.1f}ms mean over {args.repeats} run(s)")

    plain = layers["plain"]["mean_s"]
    overhead_pct = {
        name: (cell["mean_s"] / plain - 1.0) * 100.0
        for name, cell in layers.items()
        if name != "plain"
    }
    full_over_plain = layers["full"]["mean_s"] / plain
    for name, pct in overhead_pct.items():
        print(f"{name:>13s}: {pct:+6.1f}% over plain")
    print(f"full/plain ratio: {full_over_plain:.3f}")

    results = {
        "schema": 1,
        "machine": {
            "cores": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "obs_overhead": {
            "layers": layers,
            "overhead_pct": overhead_pct,
            "full_over_plain": full_over_plain,
        },
    }
    if args.json is not None:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
