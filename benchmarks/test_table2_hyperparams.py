"""Table II — κ/ξ/ρ over the #employees x batch-size grid.

Paper reference values (16x16 space, P=300, 2,500 episodes): performance
improves with more employees, saturating around 8; batch 250 is best
(ρ = 0.452 at 8 employees / batch 250 vs 0.100 at 1 employee / batch 50).
"""

from repro.experiments.report import print_table2
from repro.experiments.table2 import run_table2


def test_table2_hyperparameter_grid(benchmark, scale, report):
    result = benchmark.pedantic(
        lambda: run_table2(scale=scale, seed=0), rounds=1, iterations=1
    )
    report("table2", print_table2(result))

    # Shape check mirroring the paper's conclusion: within the largest
    # batch row, more employees should not hurt ρ by a large margin (at
    # smoke scale we only require the grid to be complete and finite).
    for batch_row in result["cells"].values():
        for cell in batch_row.values():
            assert 0.0 <= cell["kappa"] <= 1.0
            assert cell["train_time"] > 0
