#!/usr/bin/env python
"""Compare a fresh pytest-benchmark run against the committed baseline.

Usage (what the CI ``perf`` job runs)::

    pytest benchmarks/test_substrate_micro.py --benchmark-only \
        --benchmark-json=bench.json -q
    python benchmarks/check_perf_regression.py bench.json

A benchmark regresses when its fresh mean exceeds ``threshold`` times the
baseline mean (default 1.5x — generous on purpose: shared CI runners are
noisy, and the point of the gate is catching the order-of-magnitude
regressions that re-introduce per-call index construction or tape
allocation, not 10% jitter).  Benchmarks present on only one side are
reported but never fail the run, so adding a microbenchmark does not
require regenerating the baseline in the same change.

Exit status: 0 when every shared benchmark is within threshold, 1
otherwise.  A fresh run made up *entirely* of new benchmarks (nothing
shared with the baseline) passes — that is what the first run of a new
bench file looks like — but an empty run is still an error.  Pass
``--update`` to fold the fresh means into the baseline file (new
benchmarks are added, existing ``mean_s`` entries are refreshed, extra
per-benchmark fields are preserved); do that only alongside a change
whose slowdown is understood and accepted.  The baseline also records
the pre-PR-4 means so the optimization trajectory stays auditable.

``--obs`` switches to the observability-overhead gate: the positional
argument is then a ``bench_obs_overhead.py --json`` dump and the check
fails when its ``full_over_plain`` ratio exceeds the threshold — i.e.
when the full fleet telemetry stack (tracer + federation + HTTP server
+ flight recorder) costs more than ``threshold``x the uninstrumented
run at smoke scale.

``--minibatch`` switches to the execution-plan gate: the positional
argument is then a ``bench_minibatch_scaling.py --json`` dump and the
check fails when the planned update (arena + fusion) is not at least
2x faster than the *recorded PR-4 tape mean* in ``BENCH_4.json``,
modulo the same noise ``threshold`` every other gate gets.  The shard
fan-out cells are reported but never gated — they are honest
measurements of whatever core count ran them (``machine.cores`` in the
dump); BENCH_9.json records the reference numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_4.json"


def load_baseline(path: Path) -> dict:
    payload = json.loads(path.read_text())
    if "benchmarks" not in payload or not isinstance(payload["benchmarks"], dict):
        raise SystemExit(f"{path}: not a baseline file (missing 'benchmarks' map)")
    return payload["benchmarks"]


def load_current(path: Path) -> dict:
    """Means from a raw ``--benchmark-json`` dump, keyed by test name."""
    payload = json.loads(path.read_text())
    benches = payload.get("benchmarks")
    if not isinstance(benches, list):
        raise SystemExit(f"{path}: not a pytest-benchmark JSON dump")
    return {b["name"]: float(b["stats"]["mean"]) for b in benches}


def update_baseline(path: Path, current: dict) -> None:
    """Fold fresh means into the baseline file (added or refreshed).

    New benchmarks gain a minimal ``{"mean_s": ...}`` entry; existing
    entries keep their extra fields (median, rounds, pre-PR-4 columns)
    and only have ``mean_s`` replaced.
    """
    payload = json.loads(path.read_text())
    benches = payload.setdefault("benchmarks", {})
    for name, mean in sorted(current.items()):
        benches.setdefault(name, {})["mean_s"] = mean
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def check_obs_overhead(path: Path, threshold: float) -> int:
    """Gate the fleet-telemetry overhead measured by bench_obs_overhead.py."""
    payload = json.loads(path.read_text())
    overhead = payload.get("obs_overhead")
    if not isinstance(overhead, dict) or "full_over_plain" not in overhead:
        raise SystemExit(f"{path}: not a bench_obs_overhead.py dump")
    layers = overhead.get("layers", {})
    width = max((len(name) for name in layers), default=4)
    print(f"obs overhead check vs plain (threshold {threshold:g}x)")
    plain = float(layers.get("plain", {}).get("mean_s", 0.0)) or None
    for name, cell in layers.items():
        mean = float(cell["mean_s"])
        ratio = f"  x{mean / plain:5.2f}" if plain else ""
        print(f"  {name:<{width}}  {mean * 1e3:8.1f}ms{ratio}")
    ratio = float(overhead["full_over_plain"])
    if ratio > threshold:
        print(
            f"obs overhead check: full stack is x{ratio:.2f} the plain run, "
            f"over the {threshold:g}x budget — profile the obs hot path "
            "before shipping (span emission, delta collection, fold).",
            file=sys.stderr,
        )
        return 1
    print(f"obs overhead check: full/plain x{ratio:.2f} within {threshold:g}x")
    return 0


#: The taped PPO minibatch update as recorded before the executor landed;
#: the tentpole contract is "planned update >= 2x faster than this".
TAPE_BASELINE_BENCH = "test_ppo_minibatch_loss_and_backward"


def check_minibatch(path: Path, baseline_path: Path, threshold: float) -> int:
    """Gate the execution-plan speedup measured by bench_minibatch_scaling.py."""
    payload = json.loads(path.read_text())
    micro = payload.get("micro")
    if not isinstance(micro, dict) or "plan" not in micro:
        raise SystemExit(f"{path}: not a bench_minibatch_scaling.py dump")
    baseline = load_baseline(baseline_path)
    if TAPE_BASELINE_BENCH not in baseline:
        raise SystemExit(
            f"{baseline_path}: missing {TAPE_BASELINE_BENCH} (pass the "
            "BENCH_4-style baseline that records the pre-executor tape mean)"
        )
    cell = baseline[TAPE_BASELINE_BENCH]
    # pre_pr9_mean_s is the frozen pre-executor tape mean; mean_s keeps
    # moving as the baseline is regenerated, and must not move this goalpost.
    tape_base = float(cell.get("pre_pr9_mean_s", cell["mean_s"]))
    width = max(len(name) for name in micro)
    print(f"minibatch plan check vs {baseline_path.name} (threshold {threshold:g}x)")
    for name, cell in sorted(micro.items()):
        mean = float(cell["mean_s"])
        print(
            f"  {name:<{width}}  {mean * 1e3:8.3f}ms"
            f"  x{tape_base / mean:5.2f} vs recorded tape"
        )
    cores = payload.get("machine", {}).get("cores")
    for shards, cell in sorted(payload.get("shard_scaling", {}).items()):
        print(
            f"  shard {shards}-way on {cores} core(s)  "
            f"{float(cell['mean_s']) * 1e3:8.3f}ms"
            f"  x{float(cell['speedup_vs_1shard']):5.2f} vs 1-way (not gated)"
        )
    plan_mean = float(micro["plan"]["mean_s"])
    # The 2x contract, with the usual noise allowance for slower runners.
    if plan_mean * 2.0 > tape_base * threshold:
        print(
            f"minibatch plan check: planned update {plan_mean * 1e3:.3f}ms is "
            f"only x{tape_base / plan_mean:.2f} the recorded tape mean "
            f"({tape_base * 1e3:.3f}ms) — below the 2x contract (threshold-"
            f"adjusted); the fast path has rotted or fell back to the tape.",
            file=sys.stderr,
        )
        return 1
    print(
        f"minibatch plan check: planned update is x{tape_base / plan_mean:.2f} "
        f"the recorded tape mean (2x contract holds)"
    )
    return 0


def check_serve(path: Path, threshold: float) -> int:
    """Gate the serving-path contracts measured by bench_serve.py.

    Two machine-relative contracts (meaningful on any box):

    * micro-batching sustains >= 2x the RPS of the singles-forced server
      at the highest offered concurrency, and
    * the forward-only execution plan beats the tape on the stacked
      policy forward.

    Both get the usual noise ``threshold`` allowance for slow shared
    runners.  Cache and worker-scaling cells are reported, never gated —
    they are honest measurements of the workload mix and core count that
    ran them.
    """
    payload = json.loads(path.read_text())
    serve = payload.get("serve")
    micro = payload.get("micro")
    if not isinstance(serve, dict) or not isinstance(micro, dict):
        raise SystemExit(f"{path}: not a bench_serve.py dump")

    failures = 0
    print(f"serve check (threshold {threshold:g}x)")
    for concurrency, cell in sorted(
        serve.get("sweep", {}).items(), key=lambda kv: int(kv[0])
    ):
        print(
            f"  load c={concurrency:>2}  {float(cell['rps']):8.1f} rps"
            f"  p50 {float(cell['p50_ms']):6.2f}ms"
            f"  p99 {float(cell['p99_ms']):6.2f}ms"
        )

    batched = float(serve["batched"]["rps"])
    unbatched = float(serve["unbatched"]["rps"])
    concurrency = serve["batched"]["concurrency"]
    ratio = batched / unbatched
    # The 2x contract, with the usual noise allowance for slower runners.
    if batched * threshold < unbatched * 2.0:
        print(
            f"serve check: batched server sustains only x{ratio:.2f} the "
            f"unbatched RPS at concurrency {concurrency} ({batched:.1f} vs "
            f"{unbatched:.1f}) — below the 2x contract (threshold-adjusted); "
            "micro-batching has stopped coalescing or the stacked forward "
            "has rotted.",
            file=sys.stderr,
        )
        failures += 1
    else:
        print(
            f"serve check: batched x{ratio:.2f} unbatched at concurrency "
            f"{concurrency} (2x contract holds)"
        )

    plan = float(micro["plan_forward"]["mean_s"])
    tape = float(micro["tape_forward"]["mean_s"])
    if plan > tape * threshold:
        print(
            f"serve check: planned policy forward {plan * 1e3:.3f}ms is "
            f"slower than the tape {tape * 1e3:.3f}ms (threshold-adjusted) — "
            "the forward-only fast path has rotted or fell back to the tape.",
            file=sys.stderr,
        )
        failures += 1
    else:
        print(
            f"serve check: planned forward x{tape / plan:.2f} the tape "
            f"({plan * 1e3:.3f}ms vs {tape * 1e3:.3f}ms)"
        )

    cache = payload.get("cache", {})
    if "speedup_cache_on" in cache:
        print(
            f"  cache on/off x{float(cache['speedup_cache_on']):.2f} "
            "(not gated)"
        )
    cores = payload.get("machine", {}).get("cores")
    for name, cell in sorted(payload.get("worker_scaling", {}).items()):
        extra = (
            f"  x{float(cell['speedup_vs_inline']):5.2f} vs inline"
            if "speedup_vs_inline" in cell
            else ""
        )
        print(
            f"  workers {name} on {cores} core(s)  "
            f"{float(cell['mean_s']) * 1e3:8.3f}ms{extra} (not gated)"
        )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh --benchmark-json output")
    parser.add_argument(
        "--obs", action="store_true",
        help="treat the positional argument as a bench_obs_overhead.py dump "
        "and gate its full_over_plain ratio against the threshold",
    )
    parser.add_argument(
        "--minibatch", action="store_true",
        help="treat the positional argument as a bench_minibatch_scaling.py "
        "dump and gate the planned update's 2x-vs-recorded-tape contract",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="treat the positional argument as a bench_serve.py dump and "
        "gate the batched-vs-unbatched 2x RPS contract plus the "
        "forward-plan-beats-tape micro",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="fail when current mean > threshold * baseline mean (default 1.5)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the fresh means into the baseline file and exit 0 "
        "(use only alongside an understood, accepted slowdown)",
    )
    args = parser.parse_args(argv)

    if args.obs:
        return check_obs_overhead(args.current, args.threshold)
    if args.minibatch:
        return check_minibatch(args.current, args.baseline, args.threshold)
    if args.serve:
        return check_serve(args.current, args.threshold)

    baseline = load_baseline(args.baseline)
    current = load_current(args.current)

    if not current:
        print(
            f"perf check: {args.current} contains no benchmarks — "
            "did the bench run fail?",
            file=sys.stderr,
        )
        return 1

    if args.update:
        update_baseline(args.baseline, current)
        print(
            f"perf check: wrote {len(current)} benchmark mean(s) into "
            f"{args.baseline.name}"
        )
        return 0

    shared = sorted(set(baseline) & set(current))
    new = sorted(set(current) - set(baseline))
    gone = sorted(set(baseline) - set(current))

    failures = []
    width = max(len(name) for name in set(current) | set(baseline))
    print(f"perf check vs {args.baseline.name} (threshold {args.threshold:g}x)")
    for name in shared:
        base_mean = float(baseline[name]["mean_s"])
        cur_mean = current[name]
        ratio = cur_mean / base_mean
        flag = "OK" if ratio <= args.threshold else "REGRESSED"
        if flag != "OK":
            failures.append(name)
        print(
            f"  {name:<{width}}  baseline {base_mean * 1e3:8.3f}ms"
            f"  current {cur_mean * 1e3:8.3f}ms  x{ratio:5.2f}  {flag}"
        )
    for name in new:
        print(
            f"  {name:<{width}}  current {current[name] * 1e3:8.3f}ms"
            "  new (no baseline)"
        )
    for name in gone:
        print(f"  {name:<{width}}  (in baseline but not measured this run)")

    if failures:
        print(
            f"perf check: {len(failures)} benchmark(s) regressed beyond "
            f"{args.threshold:g}x: {', '.join(failures)}\n"
            "If the slowdown is understood and accepted, regenerate the "
            "baseline with the same pytest flags and re-run this script "
            f"with --update --baseline {args.baseline.name}.",
            file=sys.stderr,
        )
        return 1
    if not shared:
        print(
            f"perf check: all {len(new)} benchmark(s) are new (no baseline); "
            "record them with --update once their numbers settle"
        )
        return 0
    print(f"perf check: {len(shared)} benchmark(s) within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
