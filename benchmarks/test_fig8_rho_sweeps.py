"""Fig. 8(a-d) — energy efficiency ρ across the four sweeps.

Paper reference shapes: DRL-CEWS achieves the highest ρ everywhere (at
P=500: 0.60, +24% over DPPO, +56% over Edics, +123% over D&C, +371% over
Greedy); ρ peaks around W=4-5 and *decreases* for large worker counts
(W=25 gives 0.12 vs 0.49 at W=5) because surplus workers burn energy
searching for leftovers.
"""

import pytest

from repro.experiments.comparison import run_sweep
from repro.experiments.report import print_comparison_figure

PANELS = ("pois", "workers", "budget", "stations")


@pytest.mark.parametrize("sweep", PANELS)
def test_fig8_rho(benchmark, scale, report, sweep):
    result = benchmark.pedantic(
        lambda: run_sweep(sweep, scale=scale, seed=0), rounds=1, iterations=1
    )
    panel = "abcd"[PANELS.index(sweep)]
    report(f"fig8{panel}", print_comparison_figure(result, "rho"))

    for method, series in result["results"].items():
        assert all(v >= 0.0 for v in series["rho"]), method
