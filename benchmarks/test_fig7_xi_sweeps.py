"""Fig. 7(a-d) — average remaining data ratio ξ across the four sweeps.

Paper reference shapes: ξ mirrors κ inversely — DRL-CEWS leaves the least
data behind (ξ = 0.07 at P=100 vs Edics 0.43 and Greedy 0.74); ξ grows
with P and shrinks with workers / budget / stations.
"""

import numpy as np
import pytest

from repro.experiments.comparison import run_sweep
from repro.experiments.report import print_comparison_figure

PANELS = ("pois", "workers", "budget", "stations")


@pytest.mark.parametrize("sweep", PANELS)
def test_fig7_xi(benchmark, scale, report, sweep):
    result = benchmark.pedantic(
        lambda: run_sweep(sweep, scale=scale, seed=0), rounds=1, iterations=1
    )
    panel = "abcd"[PANELS.index(sweep)]
    report(f"fig7{panel}", print_comparison_figure(result, "xi"))

    for method, series in result["results"].items():
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in series["xi"]), method
        # ξ and κ move in opposite directions by construction.
        correlation = np.corrcoef(series["xi"], series["kappa"])[0, 1]
        if np.isfinite(correlation) and len(series["xi"]) > 2:
            assert correlation < 0.5, method
