"""Fig. 6(a-d) — average data collection ratio κ across the four sweeps.

Paper reference shapes: κ decreases with more PoIs (6a; fixed fleet, more
data), increases with more workers (6b), increases with energy budget
(6c), and increases with stations until ~6 then saturates (6d).  DRL-CEWS
attains the highest κ throughout (e.g. κ = 0.71 at budget 20, +22% over
DPPO, +41% over Edics, +48% over D&C, +53% over Greedy).
"""

import numpy as np
import pytest

from repro.experiments.comparison import run_sweep
from repro.experiments.report import print_comparison_figure

PANELS = ("pois", "workers", "budget", "stations")


@pytest.mark.parametrize("sweep", PANELS)
def test_fig6_kappa(benchmark, scale, report, sweep):
    result = benchmark.pedantic(
        lambda: run_sweep(sweep, scale=scale, seed=0), rounds=1, iterations=1
    )
    panel = "abcd"[PANELS.index(sweep)]
    report(f"fig6{panel}", print_comparison_figure(result, "kappa"))

    for method, series in result["results"].items():
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in series["kappa"]), method

    if sweep == "workers":
        # Shape: more workers collect at least as much data (weak form).
        for method, series in result["results"].items():
            assert series["kappa"][-1] >= series["kappa"][0] - 0.1, method
