"""Fig. 5 — dense/sparse extrinsic reward with and without curiosity.

Paper reference (W=2, P=300): "sparse + curiosity" is best everywhere
(ρ = 0.48, +4.35% over dense-only and +77.8% over sparse-only); sparse
reward *alone* fails; curiosity adds little on top of the dense reward
beyond faster early training.
"""

import numpy as np

from repro.experiments.fig5 import run_fig5
from repro.experiments.report import print_fig5


def test_fig5_reward_mechanisms(benchmark, scale, report):
    result = benchmark.pedantic(
        lambda: run_fig5(scale=scale, seed=0), rounds=1, iterations=1
    )
    report("fig5", print_fig5(result))

    curves = result["curves"]
    assert set(curves) == {
        "sparse + curiosity",
        "sparse only",
        "dense + curiosity",
        "dense only",
    }

    def late_mean(arm, metric):
        series = curves[arm][metric]
        tail = max(len(series) // 4, 1)
        return float(np.mean(series[-tail:]))

    # The paper's headline shape: curiosity rescues the sparse reward.
    # At smoke scale noise is large, so assert the weak form — sparse +
    # curiosity is not dominated by sparse-only.
    assert late_mean("sparse + curiosity", "kappa") >= late_mean(
        "sparse only", "kappa"
    ) - 0.15
