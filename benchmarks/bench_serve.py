#!/usr/bin/env python
"""Serving-path benchmark: micro-batching, plans, cache, worker scaling.

What produced the committed ``BENCH_10.json`` (and what the CI ``perf``
job re-runs as a machine-relative gate)::

    python benchmarks/bench_serve.py --json serve.json
    python benchmarks/check_perf_regression.py serve.json --serve

Sections:

**micro** — one ``PolicyEngine.infer_batch`` forward (batch of 8) with
forward-only execution plans against the plain tape.  The plan cell
asserts every measured call replayed a validated plan, so the number can
never silently describe a tape fallback.  The gate: the plan beats the
tape (machine-relative, meaningful on any box).

**load_sweep** — a closed-loop load generator against a live
:class:`~repro.serve.InferenceServer` over the framed-TCP front door at
offered concurrency 1/2/4/8: requests-per-second, p50/p99 latency, and
the server's dispatched batch-size histogram.  The cache is disabled so
the numbers measure the forward path, not memoization.  The gate:
micro-batching (max_batch 8) sustains >= 2x the RPS of the same server
forced to singles (max_batch 1) at concurrency 8 — coalescing is the
whole point of the subsystem.

**cache** — the same server under a duplicate-heavy stream (4 distinct
fleet states) with the LRU on vs off.  Reported, not gated: the hit-path
speedup is workload-dependent by nature.

**worker_scaling** — batched throughput on the in-process engine vs the
fork pool at 1 and 2 workers.  Honest measurements of whatever machine
ran them (``machine.cores`` recorded alongside): with one core the fork
pool can only add IPC overhead; the >1x claim applies to multi-core
boxes where worker forwards genuinely overlap.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # direct ``python benchmarks/bench_serve.py`` run
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.agents.policy import PPOWorkerAgent  # noqa: E402
from repro.env import CrowdsensingEnv, smoke_config  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.serve import (  # noqa: E402
    InferRequest,
    InferenceServer,
    InlinePool,
    PolicyEngine,
    ServeClient,
    ServeWorkerPool,
)


def make_fixture(num_states: int = 32):
    """An agent plus ``num_states`` distinct captured fleet states."""
    config = smoke_config(seed=3, horizon=max(num_states + 2, 12))
    agent = PPOWorkerAgent(config, seed=5)
    env = CrowdsensingEnv(config)
    env.reset()
    requests = []
    for __ in range(num_states):
        state = env._state()
        request = InferRequest(
            state=np.ascontiguousarray(state, dtype=np.float64),
            move_mask=np.ascontiguousarray(env.valid_moves(), dtype=bool),
            worker_features=np.ascontiguousarray(
                agent.worker_features_of(env), dtype=np.float64
            ),
        ).validate()
        requests.append(request)
        action, __lp, __v, __m, __f = agent.act_full(
            env, np.random.default_rng(0), greedy=True, state=state
        )
        env.step(action)
    return agent, requests


def bench_micro(agent, requests, repeats: int, batch: int = 8) -> dict:
    """Plan vs tape on the stacked policy forward (batch of ``batch``)."""
    state = agent.network.state_dict()
    chunk = requests[:batch]
    cells: dict = {}
    for name, use_plans in (("tape_forward", False), ("plan_forward", True)):
        engine = PolicyEngine(state, use_plans=use_plans)
        for __ in range(3):  # warm: builds + byte-validates the plan
            engine.infer_batch(chunk)
        before = engine.stats().get("plan_runs", 0)
        start = time.perf_counter()
        for __ in range(repeats):
            engine.infer_batch(chunk)
        mean = (time.perf_counter() - start) / repeats
        if use_plans:
            replayed = engine.stats()["plan_runs"] - before
            assert replayed == repeats, (
                f"{repeats - replayed} of {repeats} measured forwards fell "
                f"back to the tape ({engine.stats()})"
            )
        cells[name] = {"mean_s": mean, "batch": batch}
    cells["plan_forward"]["speedup_vs_tape"] = (
        cells["tape_forward"]["mean_s"] / cells["plan_forward"]["mean_s"]
    )
    return cells


class _ServerHarness:
    """An InferenceServer on a private event-loop thread."""

    def __init__(self, pool, **kwargs):
        import asyncio

        self._asyncio = asyncio
        kwargs.setdefault("registry", MetricsRegistry())
        kwargs.setdefault("port", 0)
        kwargs.setdefault("http_port", None)
        self._kwargs = kwargs
        self._pool = pool
        self._ready = threading.Event()
        self.server = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self):
        self._asyncio.run(self._amain())

    async def _amain(self):
        self.server = InferenceServer(self._pool, **self._kwargs)
        await self.server.start()
        self._loop = self._asyncio.get_running_loop()
        self._stop = self._asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=60), "server failed to start"
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)


def drive(harness, requests, concurrency: int, per_thread: int) -> dict:
    """Closed-loop: ``concurrency`` clients, each ``per_thread`` requests."""
    latencies: list = []
    errors: list = []
    lock = threading.Lock()

    def pump(thread_index: int):
        mine = []
        try:
            with ServeClient("127.0.0.1", harness.server.port) as client:
                for i in range(per_thread):
                    request = requests[(thread_index + i * 7) % len(requests)]
                    start = time.perf_counter()
                    client.infer_request(request)
                    mine.append(time.perf_counter() - start)
        except Exception as error:  # pragma: no cover
            errors.append(error)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=pump, args=(k,)) for k in range(concurrency)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]
    lat = np.sort(np.asarray(latencies))
    return {
        "concurrency": concurrency,
        "requests": len(latencies),
        "rps": len(latencies) / wall,
        "p50_ms": float(lat[len(lat) // 2]) * 1e3,
        "p99_ms": float(lat[min(len(lat) - 1, int(len(lat) * 0.99))]) * 1e3,
    }


def batch_histogram(server) -> dict:
    """Dispatched batch-size counts from the server's metrics registry."""
    metric = server._registry.snapshot().get("repro_serve_batch_rows")
    if not metric:
        return {}
    series = next(iter(metric.get("series", {}).values()), {})
    return {
        "count": series.get("count"),
        "rows": series.get("sum"),
        "buckets": series.get("buckets", {}),
    }


def bench_load(agent, requests, concurrencies, per_thread: int) -> dict:
    """RPS + latency percentiles vs offered load, batched and unbatched."""
    state = agent.network.state_dict()
    out: dict = {"sweep": {}, "unbatched": None, "batched": None}
    for label, max_batch in (("batched", 8), ("unbatched", 1)):
        pool = InlinePool(state, generation=1)
        with _ServerHarness(
            pool, max_batch=max_batch, max_delay=0.002, cache_size=0,
            max_pending=256,
        ) as harness:
            drive(harness, requests, 2, 8)  # warm plans and connections
            if label == "batched":
                for concurrency in concurrencies:
                    out["sweep"][str(concurrency)] = drive(
                        harness, requests, concurrency, per_thread
                    )
                out[label] = out["sweep"][str(max(concurrencies))]
                out["batch_histogram"] = batch_histogram(harness.server)
            else:
                out[label] = drive(
                    harness, requests, max(concurrencies), per_thread
                )
    out["speedup_batched_vs_unbatched"] = (
        out["batched"]["rps"] / out["unbatched"]["rps"]
    )
    return out


def bench_cache(agent, requests, per_thread: int) -> dict:
    """Duplicate-heavy stream with the LRU on vs off (reported, not gated)."""
    state = agent.network.state_dict()
    hot = requests[:4]  # 4 distinct states, everything else duplicates
    cells: dict = {}
    for label, cache_size in (("cache_on", 1024), ("cache_off", 0)):
        pool = InlinePool(state, generation=1)
        with _ServerHarness(
            pool, max_batch=8, max_delay=0.002, cache_size=cache_size,
            max_pending=256,
        ) as harness:
            drive(harness, hot, 2, 4)  # warm
            cell = drive(harness, hot, 4, per_thread)
            cell["cache"] = harness.server.cache.stats()
            cells[label] = cell
    cells["speedup_cache_on"] = (
        cells["cache_on"]["rps"] / cells["cache_off"]["rps"]
    )
    return cells


def bench_workers(agent, requests, worker_counts, repeats: int) -> dict:
    """Batched pool.infer throughput: inline engine vs fork workers."""
    state = agent.network.state_dict()
    chunk = requests[:8]
    cells: dict = {}

    def measure(pool) -> float:
        for __ in range(2):
            pool.infer(chunk)
        start = time.perf_counter()
        for __ in range(repeats):
            pool.infer(chunk)
        return (time.perf_counter() - start) / repeats

    cells["inline"] = {"mean_s": measure(InlinePool(state, generation=1))}
    for workers in worker_counts:
        pool = ServeWorkerPool(state, num_workers=workers, generation=1)
        try:
            cells[f"fork_{workers}"] = {"mean_s": measure(pool)}
        finally:
            pool.shutdown()
    inline = cells["inline"]["mean_s"]
    for name, cell in cells.items():
        if name != "inline":
            cell["speedup_vs_inline"] = inline / cell["mean_s"]
    return cells


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=50)
    parser.add_argument(
        "--per-thread", type=int, default=25,
        help="requests each closed-loop client sends per measurement",
    )
    parser.add_argument(
        "--concurrencies", type=int, nargs="+", default=[1, 2, 4, 8]
    )
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--json", type=Path, default=None, help="write results here")
    args = parser.parse_args(argv)

    agent, requests = make_fixture()
    results = {
        "schema": 1,
        "machine": {
            "cores": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "micro": bench_micro(agent, requests, args.repeats),
        "serve": bench_load(
            agent, requests, args.concurrencies, args.per_thread
        ),
        "cache": bench_cache(agent, requests, args.per_thread),
        "worker_scaling": bench_workers(
            agent, requests, args.workers, max(args.repeats // 2, 10)
        ),
    }

    micro = results["micro"]
    print(
        f"micro: plan {micro['plan_forward']['mean_s'] * 1e3:.3f}ms vs tape "
        f"{micro['tape_forward']['mean_s'] * 1e3:.3f}ms "
        f"(x{micro['plan_forward']['speedup_vs_tape']:.2f})"
    )
    for concurrency, cell in sorted(
        results["serve"]["sweep"].items(), key=lambda kv: int(kv[0])
    ):
        print(
            f"load c={concurrency:>2}: {cell['rps']:8.1f} rps  "
            f"p50 {cell['p50_ms']:6.2f}ms  p99 {cell['p99_ms']:6.2f}ms"
        )
    print(
        f"batched vs unbatched at c={max(args.concurrencies)}: "
        f"x{results['serve']['speedup_batched_vs_unbatched']:.2f}"
    )
    print(f"cache on/off: x{results['cache']['speedup_cache_on']:.2f}")
    for name, cell in results["worker_scaling"].items():
        extra = (
            f"  x{cell['speedup_vs_inline']:.2f} vs inline"
            if "speedup_vs_inline" in cell
            else ""
        )
        print(f"workers {name}: {cell['mean_s'] * 1e3:8.3f}ms{extra}")

    if args.json is not None:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
