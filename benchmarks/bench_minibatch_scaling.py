#!/usr/bin/env python
"""Minibatch-update ablation: execution-plan layers and shard fan-out.

What produced the committed ``BENCH_9.json`` (and what the CI ``perf``
job re-runs as a machine-relative gate)::

    python benchmarks/bench_minibatch_scaling.py --json minibatch.json
    python benchmarks/check_perf_regression.py minibatch.json --minibatch

Two sections:

**micro** — the taped PPO minibatch update (identical workload to
``test_ppo_minibatch_loss_and_backward`` in ``test_substrate_micro.py``)
under four substrate variants: the raw autograd tape, the full execution
plan (arena + fusion), the plan with the arena disabled, and the plan
with elementwise fusion disabled.  The plan variants assert that every
*measured* call replayed a validated plan (``planner.stats``), so the
numbers can never silently describe a tape fallback.  This is
machine-relative: the ``speedup_vs_tape`` ratios are meaningful on any
box, which is what the CI gate checks.

**shard_scaling** — one PPO minibatch sharded across the PR 5
``ProcessEmployeePool`` workers via ``OP_SHARD`` (the tentpole's
intra-minibatch data parallelism), at 1/2/4-way splits over a 4-worker
pool.  Every repetition's combined gradient pack is byte-compared
against the first, so the measured path is the deterministic one.  The
numbers are honest measurements of the machine that ran them —
``machine.cores`` is recorded alongside because the scaling story is
meaningless without it: with one core the shard fan-out can only add
IPC overhead, exactly like BENCH_5's employee-scaling table; the >1x
claim applies to >=4-core machines where the B/S-row shard computes run
genuinely concurrently.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # direct ``python benchmarks/bench_minibatch_scaling.py`` run
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.agents import CEWSAgent, PPOConfig  # noqa: E402
from repro.agents.ppo import make_ppo_planner, ppo_step  # noqa: E402
from repro.agents.sharding import (  # noqa: E402
    combine_shard_packs,
    normalize_minibatch,
    split_minibatch,
)
from repro.distributed import TrainConfig, build_trainer  # noqa: E402
from repro.distributed.procpool import OP_SHARD  # noqa: E402
from repro.env import CrowdsensingEnv, smoke_config  # noqa: E402

#: Plan-layer ablation variants: name -> (arena, fuse); None = tape.
MICRO_VARIANTS = {
    "tape": None,
    "plan": (True, True),
    "plan_noarena": (False, True),
    "plan_nofusion": (True, False),
}


def _micro_fixture(batch_size: int):
    """The exact workload of ``test_ppo_minibatch_loss_and_backward``."""
    config = smoke_config(seed=3, horizon=40)
    agent = CEWSAgent(config, ppo=PPOConfig(batch_size=batch_size, epochs=1), seed=0)
    env = CrowdsensingEnv(config, reward_mode="sparse", scenario=agent.scenario)
    buffer, __ = agent.collect_episode(env, np.random.default_rng(0))
    batch = next(iter(buffer.minibatches(batch_size, np.random.default_rng(0))))
    return agent, batch


def bench_micro(repeats: int, batch_size: int) -> dict:
    agent, batch = _micro_fixture(batch_size)
    cells: dict = {}
    for name, toggles in MICRO_VARIANTS.items():
        planner = None
        if toggles is not None:
            arena, fuse = toggles
            planner = make_ppo_planner(agent.network, agent.ppo, arena=arena, fuse=fuse)
        for __ in range(3):  # warm: first call builds + byte-validates the plan
            agent.network.zero_grad()
            ppo_step(agent.network, batch, agent.ppo, planner=planner)
        before = dict(planner.stats) if planner is not None else None
        start = time.perf_counter()
        for __ in range(repeats):
            agent.network.zero_grad()
            ppo_step(agent.network, batch, agent.ppo, planner=planner)
        mean = (time.perf_counter() - start) / repeats
        cell = {"mean_s": mean}
        if planner is not None:
            replayed = planner.stats["plan_runs"] - before["plan_runs"]
            assert replayed == repeats, (
                f"{name}: {repeats - replayed} of {repeats} measured calls fell "
                f"back to the tape ({planner.stats})"
            )
            cell["plan_records"] = plan_record_count(planner)
        cells[name] = cell
    tape = cells["tape"]["mean_s"]
    for name, cell in cells.items():
        if name != "tape":
            cell["speedup_vs_tape"] = tape / cell["mean_s"]
    return cells


def plan_record_count(planner) -> int:
    plans = [p for p in planner.plans.values() if p is not None]
    return len(plans[0].records) if plans else 0


def _pack_bytes(pack) -> bytes:
    return b"".join(np.ascontiguousarray(g).tobytes() for g in pack.policy) + b"".join(
        np.ascontiguousarray(g).tobytes() for g in pack.curiosity
    )


def bench_shards(
    shard_counts: list, workers: int, repeats: int, batch_size: int, horizon: int
) -> dict:
    """Fan one normalized minibatch over the process pool, 1/2/4-way.

    The batch is deliberately large (compute-dominated) so the shard
    wall time measures the B/S-row gradient computes, not the per-shard
    pickle/IPC constant.
    """
    config = smoke_config(seed=3, horizon=horizon)
    trainer = build_trainer(
        "cews",
        config,
        train=TrainConfig(
            num_employees=workers, episodes=1, k_updates=1, seed=0, backend="process"
        ),
        ppo=PPOConfig(batch_size=batch_size, epochs=1),
    )
    try:
        trainer.train()  # forks the pool, syncs worker params
        pool = trainer._proc_pool
        agent = trainer.global_agent
        env = CrowdsensingEnv(config, reward_mode="sparse", scenario=agent.scenario)
        buffer, __ = agent.collect_episode(env, np.random.default_rng(0))
        batch = next(iter(buffer.minibatches(batch_size, np.random.default_rng(0))))
        normalized = normalize_minibatch(batch, agent.ppo)

        cells: dict = {}
        for num_shards in shard_counts:
            shards = split_minibatch(normalized, num_shards)
            sizes = [len(shard) for shard in shards]
            reference = None
            start = time.perf_counter()
            for __ in range(repeats):
                for worker, shard in enumerate(shards):
                    pool.submit(worker, OP_SHARD, 0, 0, shard=shard)
                packs = [
                    pool.wait(worker, None, "gradients")[0]
                    for worker in range(len(shards))
                ]
                combined = combine_shard_packs(packs, sizes)
                digest = _pack_bytes(combined)
                if reference is None:
                    reference = digest
                assert digest == reference, (
                    f"{num_shards}-way shard combine is not deterministic"
                )
            mean = (time.perf_counter() - start) / repeats
            cells[str(num_shards)] = {"mean_s": mean, "shard_rows": sizes}
        one = cells[str(shard_counts[0])]["mean_s"]
        for cell in cells.values():
            cell["speedup_vs_1shard"] = one / cell["mean_s"]
        return cells
    finally:
        trainer.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=50)
    parser.add_argument(
        "--micro-batch-size", type=int, default=16,
        help="minibatch rows for the micro section (16 = the BENCH_4 workload)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=128,
        help="minibatch rows for the shard fan-out section (large on purpose "
        "so shard compute dominates the per-shard IPC constant)",
    )
    parser.add_argument(
        "--shard-horizon", type=int, default=160,
        help="episode horizon for the shard fixture (must be >= --batch-size)",
    )
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--json", type=Path, default=None, help="write results here")
    args = parser.parse_args(argv)

    results = {
        "schema": 1,
        "machine": {
            "cores": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": {
            "repeats": args.repeats,
            "micro_batch_size": args.micro_batch_size,
            "shard_batch_size": args.batch_size,
            "shard_horizon": args.shard_horizon,
            "workers": args.workers,
            "scale": "smoke",
        },
    }
    print(f"minibatch substrate ablation on {results['machine']['cores']} core(s)")

    results["micro"] = bench_micro(args.repeats, args.micro_batch_size)
    tape = results["micro"]["tape"]["mean_s"]
    for name, cell in results["micro"].items():
        ratio = f"  x{tape / cell['mean_s']:5.2f} vs tape" if name != "tape" else ""
        print(f"  micro {name:<13}  {cell['mean_s'] * 1e3:8.3f}ms{ratio}")

    results["shard_scaling"] = bench_shards(
        args.shards, args.workers, args.repeats, args.batch_size, args.shard_horizon
    )
    for num_shards, cell in results["shard_scaling"].items():
        print(
            f"  shard {num_shards}-way        {cell['mean_s'] * 1e3:8.3f}ms"
            f"  x{cell['speedup_vs_1shard']:5.2f} vs 1-way"
        )

    if args.json is not None:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
