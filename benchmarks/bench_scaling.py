#!/usr/bin/env python
"""Employee-scaling benchmark: episodes/sec per backend and worker count.

What the CI ``perf`` job runs (and what produced the committed
``BENCH_5.json``)::

    python benchmarks/bench_scaling.py --employees 1 2 4 \
        --backends serial thread process --episodes 2 --json scaling.json

Each cell trains a fresh seeded smoke-scale DRL-CEWS trainer and reports
wall time and episodes/sec.  The numbers are *honest measurements of the
machine that ran them* — the committed baseline records the core count
alongside, because the scaling story is meaningless without it: with one
core, thread and process backends can only add overhead (the GIL never
was the bottleneck there); the process backend's speedup claim applies
to >= 4-core machines where the per-employee autograd work actually runs
concurrently.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # direct ``python benchmarks/bench_scaling.py`` run
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.agents import PPOConfig  # noqa: E402
from repro.distributed import TrainConfig, build_trainer  # noqa: E402
from repro.env import smoke_config  # noqa: E402

BACKENDS = ("serial", "thread", "process")


def bench_cell(backend: str, num_employees: int, episodes: int, seed: int) -> dict:
    trainer = build_trainer(
        "cews",
        smoke_config(seed=5, horizon=10, num_pois=15),
        train=TrainConfig(
            num_employees=num_employees,
            episodes=episodes,
            k_updates=1,
            seed=seed,
            backend=backend,
        ),
        ppo=PPOConfig(batch_size=10, epochs=1),
    )
    start = time.perf_counter()
    history = trainer.train()
    wall = time.perf_counter() - start
    trainer.close()
    assert len(history.logs) == episodes
    return {
        "wall_s": wall,
        "episodes_per_s": episodes / wall,
        "final_kappa": history.logs[-1].kappa,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--employees", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument(
        "--backends", nargs="+", default=list(BACKENDS), choices=BACKENDS
    )
    parser.add_argument("--episodes", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=Path, default=None, help="write results here")
    args = parser.parse_args(argv)

    results = {
        "schema": 1,
        "machine": {
            "cores": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": {"episodes": args.episodes, "scale": "smoke", "seed": args.seed},
        "scaling": {},
    }
    print(
        f"employee scaling on {results['machine']['cores']} core(s), "
        f"{args.episodes} episode(s) per cell"
    )
    for backend in args.backends:
        results["scaling"][backend] = {}
        for n in args.employees:
            cell = bench_cell(backend, n, args.episodes, args.seed)
            results["scaling"][backend][str(n)] = cell
            print(
                f"  {backend:<8} employees={n}  wall {cell['wall_s']:6.2f}s"
                f"  {cell['episodes_per_s']:6.3f} ep/s"
            )
    if args.json is not None:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
