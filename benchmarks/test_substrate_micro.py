"""Microbenchmarks of the substrates (true repeated-timing benchmarks).

These are not paper artifacts; they track the cost of the hot paths the
training loop is built from: the CNN forward/backward, one environment
step, one PPO minibatch update and one curiosity loss.
"""

import numpy as np
import pytest

from repro import nn
from repro.agents import CEWSAgent, PPOConfig
from repro.agents.ppo import ppo_loss
from repro.curiosity import SpatialCuriosity, TransitionBatch
from repro.env import Action, CrowdsensingEnv, smoke_config
from repro.nn import functional as F

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def config():
    return smoke_config(seed=3, horizon=40)


def test_conv2d_forward(benchmark, rng):
    x = nn.Tensor(rng.normal(size=(8, 3, 16, 16)))
    w = nn.Tensor(rng.normal(size=(16, 3, 3, 3)))
    b = nn.Tensor(rng.normal(size=16))
    benchmark(lambda: F.conv2d(x, w, b, stride=1, padding=1))


def test_conv2d_forward_cached_plan(benchmark, rng):
    """Strided conv2d (the CNN's downsampling shape class) with a hot plan.

    The first call populates the kernel-plan cache; the benchmark then
    measures steady-state forwards, which is what the training loop sees —
    one plan per (shape, kernel, stride) for the whole run.
    """
    x = nn.Tensor(rng.normal(size=(8, 8, 16, 16)))
    w = nn.Tensor(rng.normal(size=(16, 8, 3, 3)))
    b = nn.Tensor(rng.normal(size=16))
    F.conv2d(x, w, b, stride=2, padding=1)  # warm the plan cache
    benchmark(lambda: F.conv2d(x, w, b, stride=2, padding=1))


def test_conv2d_backward(benchmark, rng):
    x = nn.Tensor(rng.normal(size=(8, 3, 16, 16)), requires_grad=True)
    w = nn.Tensor(rng.normal(size=(16, 3, 3, 3)), requires_grad=True)

    def run():
        x.grad = None
        w.grad = None
        F.conv2d(x, w, stride=1, padding=1).sum().backward()

    benchmark(run)


def test_env_step(benchmark, config):
    env = CrowdsensingEnv(config, reward_mode="sparse")
    env.reset()
    action = Action.stay(config.num_workers)

    def run():
        if env._needs_reset:
            env.reset()
        env.step(action)

    benchmark(run)


def test_env_step_active_sensing(benchmark, config, rng):
    """One env slot with workers actually moving and collecting.

    ``test_env_step`` measures the all-stay slot (move validation and
    bookkeeping only); this one drives random moves so the vectorized
    worker-PoI distance matrix and the competitive collection loop are on
    the measured path.
    """
    env = CrowdsensingEnv(config, reward_mode="sparse")
    env.reset()
    action_rng = np.random.default_rng(7)
    actions = [
        Action(
            charge=action_rng.integers(0, 2, config.num_workers),
            move=action_rng.integers(0, 9, config.num_workers),
        )
        for _ in range(64)
    ]
    index = {"i": 0}

    def run():
        if env._needs_reset:
            env.reset()
        index["i"] = (index["i"] + 1) % len(actions)
        env.step(actions[index["i"]])

    benchmark(run)


def test_policy_forward(benchmark, config, rng):
    agent = CEWSAgent(config, ppo=PPOConfig(batch_size=16, epochs=1), seed=0)
    states = rng.normal(size=(16, 3, config.grid, config.grid))
    benchmark(lambda: agent.network.forward(states))


def test_policy_forward_no_grad(benchmark, config, rng):
    """The rollout-path forward: same batch, autograd tape elided.

    This is what every acting step pays after the ``no_grad`` wiring —
    compare against ``test_policy_forward`` (the taped training-path
    forward) for the tape's share of the cost.
    """
    agent = CEWSAgent(config, ppo=PPOConfig(batch_size=16, epochs=1), seed=0)
    states = rng.normal(size=(16, 3, config.grid, config.grid))

    def run():
        with nn.no_grad():
            agent.network.forward(states)

    benchmark(run)


def test_ppo_minibatch_loss_and_backward(benchmark, config, rng):
    agent = CEWSAgent(config, ppo=PPOConfig(batch_size=16, epochs=1), seed=0)
    env = CrowdsensingEnv(config, reward_mode="sparse", scenario=agent.scenario)
    buffer, __ = agent.collect_episode(env, np.random.default_rng(0))
    batch = next(iter(buffer.minibatches(16, np.random.default_rng(0))))

    def run():
        agent.network.zero_grad()
        loss, __ = ppo_loss(agent.network, batch, agent.ppo)
        loss.backward()

    benchmark(run)


def test_curiosity_loss(benchmark, config, rng):
    agent = CEWSAgent(config, seed=0)
    positions = rng.uniform(0.5, config.size - 0.5, size=(64, 2, 2))
    moves = rng.integers(0, 9, size=(64, 2))
    batch = TransitionBatch(
        positions=positions,
        next_positions=np.clip(positions + rng.normal(0, 0.5, positions.shape), 0.1, config.size - 0.1),
        moves=moves,
    )
    benchmark(lambda: agent.curiosity.loss(batch).item())
