"""Fig. 3 — training wall time versus number of employees.

Paper reference: time grows with the employee count; 16 employees cost
45.5% more time than 8 for only +1.7% ρ, motivating the choice of 8.
"""

from repro.experiments.fig3 import run_fig3
from repro.experiments.report import print_fig3


def test_fig3_training_time(benchmark, scale, report):
    result = benchmark.pedantic(
        lambda: run_fig3(scale=scale, seed=0), rounds=1, iterations=1
    )
    report("fig3", print_fig3(result))

    times = result["train_time"]
    employees = result["employees"]
    # Shape: training time increases with employee count end to end.
    assert times[-1] > times[0]
    assert employees == sorted(employees)
