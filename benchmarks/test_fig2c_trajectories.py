"""Fig. 2(c) — trajectories attained by trained workers.

Paper reference: two drones partition the space, weaving between the four
charging stations and covering distinct subareas.
"""

import numpy as np

from repro.experiments.fig2c import run_fig2c
from repro.experiments.report import print_fig2c


def test_fig2c_trajectories(benchmark, scale, report):
    result = benchmark.pedantic(
        lambda: run_fig2c(scale=scale, seed=0), rounds=1, iterations=1
    )
    report("fig2c", print_fig2c(result))

    trajectories = [np.asarray(path) for path in result["trajectories"]]
    assert len(trajectories) == scale.num_workers
    for path in trajectories:
        # Paths stay inside the space.
        assert np.all(path > 0.0) and np.all(path < scale.size)
