"""Extension bench: synchronous vs asynchronous (V-trace / uncorrected).

Quantifies Section V-A's architectural argument; not a paper figure.
"""

import numpy as np

from repro.experiments.async_study import run_async_study
from repro.utils import format_table


def test_sync_vs_async(benchmark, scale, report):
    result = benchmark.pedantic(
        lambda: run_async_study(scale=scale, seed=0), rounds=1, iterations=1
    )
    rows = [
        [arm, values["kappa"], values["rho"], values["value_loss_tail"]]
        for arm, values in result["arms"].items()
    ]
    report(
        "async-study",
        format_table(
            ["arm", "kappa", "rho", "tail value loss"],
            rows,
            title=f"Sync vs async (actor lag {result['lag']} episodes)",
        ),
    )
    for values in result["arms"].values():
        assert np.isfinite(values["kappa"])
